//! Readiness-driven TCP front end: one reactor thread multiplexes
//! every connection over epoll (see [`crate::sys`]), so a box holds
//! tens of thousands of idle connections with **zero** threads parked
//! per connection — the only threads are the reactor and the engine's
//! own workers.
//!
//! Two listeners share the reactor and the engine:
//!
//! * the **binary** port (always on) speaks the length-prefixed frame
//!   protocol of [`crate::wire`] with request pipelining — many
//!   in-flight request ids per connection, responses completing out
//!   of order as the batched engine finishes them;
//! * an optional **text** port ([`ServerConfig::text_port`]) keeps the
//!   newline-delimited debug protocol of [`crate::protocol`] alive,
//!   one request at a time per connection.
//!
//! Requests are submitted through [`crate::Engine::submit`]: the
//! completion hook pushes the finished result onto a queue and wakes
//! the reactor's `eventfd`, so no thread ever blocks on a response.
//! Connection state machines buffer partial frames across reads
//! (frames may arrive one byte at a time) and partial responses
//! across writes; per-connection buffers are hard-capped and in-flight
//! requests per connection are bounded — beyond the bound the reactor
//! simply stops reading that socket, pushing backpressure into TCP.
//!
//! **Multi-tenancy.** One reactor serves every tenant of a
//! [`TenantRegistry`] ([`Server::start_tenants`]): tenant-form
//! requests (`tcomplete`/`tstats`, opcodes 0x05/0x06) route to their
//! tenant's own engine, queue, caches, and quota, while the legacy
//! tenant-less forms address [`TenantId::DEFAULT`]. Isolation is
//! structural — tenants share nothing but the reactor thread and the
//! listeners, so one tenant's open breakers or exhausted quota cannot
//! alter another tenant's responses. [`Server::start`] remains the
//! single-tenant path: it adopts the engine as the default tenant and
//! stays byte-compatible with pre-tenancy builds.

use crate::engine::{Completion, CompletionHook, Engine};
use crate::protocol::{self, Request};
use crate::sys::{Poller, Waker};
use crate::tenant::{Tenant, TenantId, TenantRegistry};
use crate::wire::{self, Opcode};
use crate::{failsite, ServeError};
use gcwc_linalg::Matrix;
use std::collections::HashMap;
use std::io::{ErrorKind, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Largest request line accepted on the text port (the biggest
/// admissible wire matrix plus room for the command head).
const MAX_LINE_BYTES: usize = protocol::MAX_WIRE_ELEMS * protocol::WIRE_ELEM_BYTES + 128;

/// Receive-buffer hard cap per binary connection: one maximal frame
/// plus a read burst. A peer that pushes more unparseable bytes than
/// this (slowloris-style) is disconnected with a typed error.
const BIN_RBUF_CAP: usize = wire::HEADER_LEN + wire::MAX_FRAME_PAYLOAD + (1 << 20);

/// Receive-buffer hard cap per text connection.
const TEXT_RBUF_CAP: usize = MAX_LINE_BYTES + (1 << 16);

/// Send-buffer hard cap: a peer that stops reading while responses
/// accumulate past this is disconnected (slow-reader protection).
const WBUF_CAP: usize = 64 << 20;

/// Reads drained per readiness event before yielding to other
/// connections; leftovers are re-delivered (level-triggered).
const MAX_READS_PER_EVENT: usize = 16;

/// Spare matrices kept for reuse across requests.
const POOL_CAP: usize = 64;

const TOKEN_WAKER: u64 = u64::MAX;
const TOKEN_BIN_LISTENER: u64 = u64::MAX - 1;
const TOKEN_TEXT_LISTENER: u64 = u64::MAX - 2;

/// Front-end tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// When set, also serve the newline-delimited text protocol on
    /// this port (on the same IP as the binary listener; `0` picks an
    /// ephemeral port — see [`Server::text_addr`]). `None` (the
    /// default) serves the binary protocol only.
    pub text_port: Option<u16>,
    /// Maximum concurrent connections; beyond it fresh accepts are
    /// dropped (the peer sees EOF and may retry).
    pub max_conns: usize,
    /// Maximum pipelined in-flight requests per connection; beyond it
    /// the reactor stops reading that socket until responses drain.
    pub max_inflight_per_conn: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self { text_port: None, max_conns: 16_384, max_inflight_per_conn: 1_024 }
    }
}

/// A finished request travelling from an engine worker back to the
/// reactor.
struct Done {
    token: usize,
    gen: u64,
    request_id: u64,
    /// Index into the reactor's tenant table (owns the buffer pools
    /// the completion's matrices return to).
    tenant: usize,
    /// `Some(tenant id)` when the request arrived in tenant form and
    /// must be answered in tenant form (carrying the tenant's graph
    /// generation); `None` keeps the legacy reply byte-identical.
    treply: Option<u64>,
    result: Result<Completion, ServeError>,
}

/// State shared between the reactor thread, engine workers (through
/// completion hooks), and the [`Server`] handle.
struct Shared {
    running: AtomicBool,
    done: Mutex<Vec<Done>>,
    waker: Waker,
    open_conns: AtomicUsize,
}

/// A running TCP front end over an [`Engine`].
pub struct Server {
    addr: SocketAddr,
    text_addr: Option<SocketAddr>,
    shared: Arc<Shared>,
    reactor: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the binary front end against `engine` with the default
    /// [`ServerConfig`].
    pub fn start<A: ToSocketAddrs>(engine: Arc<Engine>, addr: A) -> std::io::Result<Self> {
        Self::start_with(engine, addr, ServerConfig::default())
    }

    /// Like [`Server::start`], with explicit tuning — notably
    /// [`ServerConfig::text_port`] for the debug text protocol. The
    /// engine is adopted as [`TenantId::DEFAULT`] with no quota, so
    /// legacy tenant-less traffic is served exactly as before
    /// multi-tenancy existed.
    pub fn start_with<A: ToSocketAddrs>(
        engine: Arc<Engine>,
        addr: A,
        cfg: ServerConfig,
    ) -> std::io::Result<Self> {
        let tenants = TenantRegistry::new();
        tenants.adopt(TenantId::DEFAULT, engine, None);
        Self::start_tenants(&Arc::new(tenants), addr, cfg)
    }

    /// Starts the front end over every tenant registered in `tenants`
    /// — the multi-city entry point. The tenant set is snapshotted at
    /// start: tenants registered later answer
    /// [`ServeError::UnknownTenant`] until a new front end is started.
    /// Legacy tenant-less requests are served by the
    /// [`TenantId::DEFAULT`] tenant when one is registered.
    pub fn start_tenants<A: ToSocketAddrs>(
        tenants: &Arc<TenantRegistry>,
        addr: A,
        cfg: ServerConfig,
    ) -> std::io::Result<Self> {
        let states: Vec<TenantState> =
            tenants.tenants().into_iter().map(TenantState::new).collect();
        assert!(!states.is_empty(), "the front end needs at least one registered tenant");
        for s in &states {
            assert!(
                s.tenant.engine().worker_count() > 0,
                "tenant {}: the reactor front end needs engine workers to serve completions",
                s.tenant.id()
            );
        }
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let text_listener = match cfg.text_port {
            Some(port) => {
                let l = TcpListener::bind((addr.ip(), port))?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        let text_addr = text_listener.as_ref().map(|l| l.local_addr()).transpose()?;

        let poller = Poller::new()?;
        let waker = Waker::new()?;
        poller.add(waker.fd(), TOKEN_WAKER, true, false)?;
        poller.add(listener.as_raw_fd(), TOKEN_BIN_LISTENER, true, false)?;
        if let Some(l) = &text_listener {
            poller.add(l.as_raw_fd(), TOKEN_TEXT_LISTENER, true, false)?;
        }

        let shared = Arc::new(Shared {
            running: AtomicBool::new(true),
            done: Mutex::new(Vec::new()),
            waker,
            open_conns: AtomicUsize::new(0),
        });
        let by_id: HashMap<u64, usize> =
            states.iter().enumerate().map(|(i, s)| (s.tenant.id().0, i)).collect();
        let default_idx = by_id.get(&TenantId::DEFAULT.0).copied();
        let mut reactor = Reactor {
            shared: Arc::clone(&shared),
            poller,
            listener,
            text_listener,
            cfg,
            slots: Vec::new(),
            free: Vec::new(),
            tenants: states,
            by_id,
            default_idx,
            scratch: vec![0u8; 64 << 10],
            text_buf: String::new(),
        };
        let handle = std::thread::Builder::new()
            .name("gcwc-serve-reactor".into())
            .spawn(move || reactor.run())
            .expect("spawn reactor");

        Ok(Self { addr, text_addr, shared, reactor: Some(handle) })
    }

    /// The bound binary-protocol address (useful with ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound text-protocol address, when
    /// [`ServerConfig::text_port`] was set.
    pub fn text_addr(&self) -> Option<SocketAddr> {
        self.text_addr
    }

    /// Connections currently held by the reactor (both protocols).
    pub fn open_connections(&self) -> usize {
        self.shared.open_conns.load(Ordering::Acquire)
    }

    /// Stops the reactor, closing every connection, and joins it.
    /// Does **not** shut the engine down — call
    /// [`crate::Engine::shutdown`] after this for a full drain.
    pub fn stop(&mut self) {
        self.shared.running.store(false, Ordering::Release);
        self.shared.waker.wake();
        if let Some(handle) = self.reactor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    /// True for connections accepted on the text listener.
    text: bool,
    rbuf: Vec<u8>,
    /// Consumed prefix of `rbuf` (compacted after each process pass).
    rstart: usize,
    wbuf: Vec<u8>,
    /// Written prefix of `wbuf`.
    wstart: usize,
    /// Requests submitted to the engine and not yet answered.
    in_flight: usize,
    /// Read interest withdrawn (in-flight cap reached).
    gated: bool,
    /// Write interest registered (partial response pending).
    want_write: bool,
    /// No further requests are parsed (peer EOF or `quit`); close
    /// once in-flight responses are delivered and flushed.
    draining: bool,
    /// Framing is broken; close as soon as `wbuf` flushes, without
    /// waiting for in-flight responses.
    fatal: bool,
    /// Tear down now (I/O error, failpoint, slow reader).
    dead: bool,
    /// Text connections serve strictly in order: a submitted
    /// `complete` blocks parsing of further lines until answered.
    text_waiting: bool,
}

impl Conn {
    fn new(stream: TcpStream, text: bool) -> Self {
        Self {
            stream,
            text,
            rbuf: Vec::new(),
            rstart: 0,
            wbuf: Vec::new(),
            wstart: 0,
            in_flight: 0,
            gated: false,
            want_write: false,
            draining: false,
            fatal: false,
            dead: false,
            text_waiting: false,
        }
    }

    fn flushed(&self) -> bool {
        self.wstart >= self.wbuf.len()
    }

    fn rbuf_cap(&self) -> usize {
        if self.text {
            TEXT_RBUF_CAP
        } else {
            BIN_RBUF_CAP
        }
    }
}

/// Slab entry: the generation guards completions against fd/token
/// reuse — a response for a closed connection whose slot was handed
/// to a newcomer must be dropped, not delivered.
struct Slot {
    gen: u64,
    conn: Option<Conn>,
}

/// Per-tenant reactor state: the tenant handle plus that tenant's
/// matrix pools (pooling is per tenant because every tenant's graph —
/// and therefore its request/response shapes — differs).
struct TenantState {
    tenant: Arc<Tenant>,
    in_shape: (usize, usize),
    out_shape: (usize, usize),
    spare_inputs: Vec<Matrix>,
    spare_outputs: Vec<Matrix>,
}

impl TenantState {
    fn new(tenant: Arc<Tenant>) -> Self {
        let (in_shape, out_shape) = (tenant.engine().input_shape(), tenant.engine().output_shape());
        Self { tenant, in_shape, out_shape, spare_inputs: Vec::new(), spare_outputs: Vec::new() }
    }

    /// Re-reads the engine's shapes after a topology swap so the warm
    /// path goes back to pooled (allocation-free) buffers on the new
    /// shape; stale-shaped spares are dropped.
    fn refresh_shapes(&mut self) {
        let cur = self.tenant.engine().input_shape();
        if cur != self.in_shape {
            self.in_shape = cur;
            self.out_shape = self.tenant.engine().output_shape();
            self.spare_inputs.clear();
            self.spare_outputs.clear();
        }
    }
}

struct Reactor {
    shared: Arc<Shared>,
    poller: Poller,
    listener: TcpListener,
    text_listener: Option<TcpListener>,
    cfg: ServerConfig,
    slots: Vec<Slot>,
    free: Vec<usize>,
    /// Snapshot of the registered tenants at server start.
    tenants: Vec<TenantState>,
    /// Tenant id → index into `tenants`.
    by_id: HashMap<u64, usize>,
    /// Index of the default tenant (serves legacy tenant-less forms).
    default_idx: Option<usize>,
    scratch: Vec<u8>,
    text_buf: String,
}

/// Builds the hook an engine worker runs when a reactor-submitted
/// request finishes: enqueue the result, wake the event loop.
fn completion_hook(
    shared: &Arc<Shared>,
    token: usize,
    gen: u64,
    request_id: u64,
    tenant: usize,
    treply: Option<u64>,
) -> CompletionHook {
    let shared = Arc::clone(shared);
    Box::new(move |result| {
        let mut done = shared.done.lock().unwrap_or_else(PoisonError::into_inner);
        done.push(Done { token, gen, request_id, tenant, treply, result });
        drop(done);
        shared.waker.wake();
    })
}

/// Shared submission tail of the binary `complete`/`tcomplete` forms:
/// pooled buffers, input hardening, engine submit, inline error frame
/// on refusal. Takes the connection's fields individually because the
/// decoded request still borrows its receive buffer.
#[allow(clippy::too_many_arguments)]
fn submit_decoded(
    state: &mut TenantState,
    state_idx: usize,
    in_flight: &mut usize,
    wbuf: &mut Vec<u8>,
    shared: &Arc<Shared>,
    idx: usize,
    gen: u64,
    request_id: u64,
    treply: Option<u64>,
    req: &wire::CompleteRequest<'_>,
) {
    if (req.rows, req.cols) != state.in_shape {
        state.refresh_shapes();
    }
    let mut input = if (req.rows, req.cols) == state.in_shape {
        state.spare_inputs.pop().unwrap_or_else(|| Matrix::zeros(req.rows, req.cols))
    } else {
        // Wrong shape for the served model: let the
        // engine answer the typed BadRequest.
        Matrix::zeros(req.rows, req.cols)
    };
    match wire::fill_matrix(req, &mut input) {
        Ok(()) => {
            let out_buf = state
                .spare_outputs
                .pop()
                .unwrap_or_else(|| Matrix::zeros(state.out_shape.0, state.out_shape.1));
            let hook = completion_hook(shared, idx, gen, request_id, state_idx, treply);
            match state.tenant.engine().submit(
                input,
                out_buf,
                req.time_of_day,
                req.day_of_week,
                None,
                hook,
            ) {
                Ok(()) => *in_flight += 1,
                Err(refused) => {
                    // Backpressure (or shutdown):
                    // answer inline, reuse buffers.
                    recycle(&mut state.spare_inputs, refused.input, state.in_shape);
                    recycle(&mut state.spare_outputs, refused.out_buf, state.out_shape);
                    wire::encode_err(wbuf, request_id, &refused.error);
                }
            }
        }
        Err(e) => {
            recycle(&mut state.spare_inputs, input, state.in_shape);
            wire::encode_err(wbuf, request_id, &e.into());
        }
    }
}

/// Shared submission tail of the text `complete`/`tcomplete` forms.
#[allow(clippy::too_many_arguments)]
fn submit_text(
    state: &mut TenantState,
    state_idx: usize,
    conn: &mut Conn,
    shared: &Arc<Shared>,
    idx: usize,
    gen: u64,
    treply: Option<u64>,
    time_of_day: usize,
    day_of_week: usize,
    input: Matrix,
    text_buf: &mut String,
) {
    if input.shape() != state.in_shape {
        state.refresh_shapes();
    }
    let out_buf = state
        .spare_outputs
        .pop()
        .unwrap_or_else(|| Matrix::zeros(state.out_shape.0, state.out_shape.1));
    let hook = completion_hook(shared, idx, gen, 0, state_idx, treply);
    match state.tenant.engine().submit(input, out_buf, time_of_day, day_of_week, None, hook) {
        Ok(()) => {
            conn.in_flight += 1;
            conn.text_waiting = true;
        }
        Err(refused) => {
            recycle(&mut state.spare_outputs, refused.out_buf, state.out_shape);
            protocol::write_err(text_buf, &refused.error);
        }
    }
}

impl Reactor {
    fn run(&mut self) {
        let mut events = Vec::new();
        while self.shared.running.load(Ordering::Acquire) {
            if self.poller.wait(&mut events, -1).is_err() {
                break;
            }
            // Failpoint: a triggered (or panicking) tick drops this
            // batch of events. Registration is level-triggered, so
            // every skipped readiness — including the waker, which
            // stays readable until drained — is re-delivered by the
            // next wait: a lost tick delays work, never loses it.
            let tick = catch_unwind(AssertUnwindSafe(|| {
                gcwc_failpoint::triggered(failsite::REACTOR_TICK)
            }));
            if !matches!(tick, Ok(false)) {
                continue;
            }
            for i in 0..events.len() {
                let ev = events[i];
                match ev.token {
                    TOKEN_WAKER => {
                        self.shared.waker.drain();
                        self.drain_done();
                    }
                    TOKEN_BIN_LISTENER => self.accept(false),
                    TOKEN_TEXT_LISTENER => self.accept(true),
                    token => self.conn_event(token as usize, ev.readable, ev.writable, ev.hangup),
                }
            }
        }
        // Teardown: close every connection (peers see EOF). In-flight
        // completions still fire their hooks; `drain_done` never runs
        // again, but the results are only dropped, never leaked.
        for idx in 0..self.slots.len() {
            if self.slots[idx].conn.is_some() {
                self.close_conn(idx);
            }
        }
    }

    fn accept(&mut self, text: bool) {
        loop {
            let listener = if text {
                self.text_listener.as_ref().expect("text event without text listener")
            } else {
                &self.listener
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    // Failpoint: a triggered accept drops the fresh
                    // connection (the peer sees EOF and may
                    // reconnect), as an fd-starved accept would.
                    if gcwc_failpoint::triggered(failsite::ACCEPT) {
                        continue;
                    }
                    if self.free.is_empty() && self.slots.len() >= self.cfg.max_conns {
                        continue; // at capacity: drop (peer sees EOF)
                    }
                    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                        continue;
                    }
                    let idx = self.free.pop().unwrap_or_else(|| {
                        self.slots.push(Slot { gen: 0, conn: None });
                        self.slots.len() - 1
                    });
                    if self.poller.add(stream.as_raw_fd(), idx as u64, true, false).is_err() {
                        self.free.push(idx);
                        continue;
                    }
                    self.slots[idx].conn = Some(Conn::new(stream, text));
                    self.shared.open_conns.fetch_add(1, Ordering::AcqRel);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn conn_event(&mut self, idx: usize, readable: bool, writable: bool, hangup: bool) {
        if self.slots.get(idx).is_none_or(|s| s.conn.is_none()) {
            return; // stale event for a just-closed connection
        }
        if writable {
            self.flush(idx);
        }
        if readable || hangup {
            self.read_conn(idx);
            self.process(idx);
            self.flush(idx);
        }
        if hangup {
            if let Some(conn) = self.slots[idx].conn.as_mut() {
                // Error/hangup: any final bytes were drained above;
                // nothing more will arrive or be deliverable.
                if conn.in_flight == 0 || conn.flushed() {
                    conn.dead = true;
                }
            }
        }
        self.maybe_close(idx);
    }

    /// Drains the socket into the connection's receive buffer
    /// (bounded per event for fairness; the cap disconnects peers
    /// that buffer unparseable bytes without limit).
    fn read_conn(&mut self, idx: usize) {
        let Some(conn) = self.slots[idx].conn.as_mut() else { return };
        if conn.dead || conn.gated || conn.draining {
            return;
        }
        // Failpoint: a triggered read tears the connection down
        // mid-session, as a peer reset or fd exhaustion would.
        let site = if conn.text { failsite::READ } else { failsite::CONN_READ };
        if gcwc_failpoint::triggered(site) {
            conn.dead = true;
            return;
        }
        let cap = conn.rbuf_cap();
        for _ in 0..MAX_READS_PER_EVENT {
            match conn.stream.read(&mut self.scratch) {
                Ok(0) => {
                    conn.draining = true; // peer EOF: serve what's in flight, then close
                    break;
                }
                Ok(n) => {
                    if conn.rbuf.len() - conn.rstart + n > cap {
                        conn.fatal = true;
                        if conn.text {
                            conn.wbuf
                                .extend_from_slice(b"err bad_request request exceeds size limit\n");
                        } else {
                            wire::encode_err(
                                &mut conn.wbuf,
                                0,
                                &ServeError::Protocol("receive buffer limit exceeded".into()),
                            );
                        }
                        break;
                    }
                    conn.rbuf.extend_from_slice(&self.scratch[..n]);
                    if n < self.scratch.len() {
                        break; // socket drained
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
        }
    }

    fn process(&mut self, idx: usize) {
        let is_text = match self.slots[idx].conn.as_ref() {
            Some(conn) => conn.text,
            None => return,
        };
        if is_text {
            self.process_text(idx);
        } else {
            self.process_binary(idx);
        }
        // Compact the consumed prefix so the buffer never grows past
        // its cap from already-handled bytes.
        if let Some(conn) = self.slots[idx].conn.as_mut() {
            if conn.rstart > 0 {
                conn.rbuf.drain(..conn.rstart);
                conn.rstart = 0;
            }
        }
    }

    /// Parses and dispatches complete binary frames from the receive
    /// buffer. Torn frames (even one byte at a time) simply wait for
    /// more bytes; payload-level errors answer the offending request
    /// id and continue; header-level errors poison the stream and
    /// close the connection after a best-effort error frame.
    fn process_binary(&mut self, idx: usize) {
        let Reactor { slots, poller, shared, cfg, tenants, by_id, default_idx, .. } = self;
        let gen = slots[idx].gen;
        let Some(conn) = slots[idx].conn.as_mut() else { return };
        loop {
            if conn.dead || conn.fatal || conn.draining {
                break;
            }
            if conn.in_flight >= cfg.max_inflight_per_conn {
                // Pipelining bound reached: stop reading (and parsing)
                // until responses drain — backpressure flows into TCP.
                if !conn.gated {
                    conn.gated = true;
                    let _ =
                        poller.modify(conn.stream.as_raw_fd(), idx as u64, false, conn.want_write);
                }
                break;
            }
            let avail = &conn.rbuf[conn.rstart..];
            let header = match wire::decode_header(avail) {
                Ok(None) => break, // partial header: wait for bytes
                Ok(Some(h)) => h,
                Err(e) => {
                    // Framing can no longer be trusted: answer id 0
                    // and close once the error frame flushes.
                    wire::encode_err(&mut conn.wbuf, 0, &e.into());
                    conn.fatal = true;
                    break;
                }
            };
            let total = wire::HEADER_LEN + header.payload_len;
            if avail.len() < total {
                break; // torn frame: wait for the rest
            }
            let payload = &conn.rbuf[conn.rstart + wire::HEADER_LEN..conn.rstart + total];
            match header.opcode {
                Opcode::Complete => match wire::decode_complete_request(payload) {
                    Ok(req) => match *default_idx {
                        Some(ti) => match tenants[ti].tenant.admit() {
                            Ok(()) => submit_decoded(
                                &mut tenants[ti],
                                ti,
                                &mut conn.in_flight,
                                &mut conn.wbuf,
                                shared,
                                idx,
                                gen,
                                header.request_id,
                                None,
                                &req,
                            ),
                            Err(e) => wire::encode_err(&mut conn.wbuf, header.request_id, &e),
                        },
                        None => wire::encode_err(
                            &mut conn.wbuf,
                            header.request_id,
                            &ServeError::UnknownTenant(TenantId::DEFAULT.0),
                        ),
                    },
                    Err(e) => wire::encode_err(&mut conn.wbuf, header.request_id, &e.into()),
                },
                Opcode::TComplete => match wire::decode_tcomplete_request(payload) {
                    Ok((tid, req)) => match by_id.get(&tid).copied() {
                        Some(ti) => match tenants[ti].tenant.admit() {
                            Ok(()) => submit_decoded(
                                &mut tenants[ti],
                                ti,
                                &mut conn.in_flight,
                                &mut conn.wbuf,
                                shared,
                                idx,
                                gen,
                                header.request_id,
                                Some(tid),
                                &req,
                            ),
                            Err(e) => wire::encode_err(&mut conn.wbuf, header.request_id, &e),
                        },
                        None => wire::encode_err(
                            &mut conn.wbuf,
                            header.request_id,
                            &ServeError::UnknownTenant(tid),
                        ),
                    },
                    Err(e) => wire::encode_err(&mut conn.wbuf, header.request_id, &e.into()),
                },
                Opcode::Stats => match *default_idx {
                    // The legacy stats frame: exactly the engine's 20
                    // counters, byte-identical to pre-tenancy builds.
                    Some(ti) => wire::encode_stats(
                        &mut conn.wbuf,
                        header.request_id,
                        &tenants[ti].tenant.engine().stats(),
                    ),
                    None => wire::encode_err(
                        &mut conn.wbuf,
                        header.request_id,
                        &ServeError::UnknownTenant(TenantId::DEFAULT.0),
                    ),
                },
                Opcode::TStats => match wire::decode_tstats_request(payload) {
                    Ok(tid) => match by_id.get(&tid).copied() {
                        Some(ti) => wire::encode_tstats(
                            &mut conn.wbuf,
                            header.request_id,
                            tid,
                            &tenants[ti].tenant.stats(),
                        ),
                        None => wire::encode_err(
                            &mut conn.wbuf,
                            header.request_id,
                            &ServeError::UnknownTenant(tid),
                        ),
                    },
                    Err(e) => wire::encode_err(&mut conn.wbuf, header.request_id, &e.into()),
                },
                Opcode::Ping => wire::encode_empty(&mut conn.wbuf, Opcode::Pong, header.request_id),
                Opcode::Quit => {
                    wire::encode_empty(&mut conn.wbuf, Opcode::Bye, header.request_id);
                    conn.draining = true;
                }
                _ => {
                    // A response opcode is not a request.
                    wire::encode_err(
                        &mut conn.wbuf,
                        header.request_id,
                        &ServeError::Protocol(format!(
                            "unexpected response opcode {:#04x} in a request",
                            header.opcode as u8
                        )),
                    );
                }
            }
            conn.rstart += total;
        }
    }

    /// Parses newline-delimited text requests. `complete` is served
    /// strictly in order: the connection parses no further lines
    /// while one is in flight (the text protocol carries no request
    /// ids, so responses must match request order).
    fn process_text(&mut self, idx: usize) {
        let Reactor { slots, shared, tenants, by_id, default_idx, text_buf, .. } = self;
        let gen = slots[idx].gen;
        let Some(conn) = slots[idx].conn.as_mut() else { return };
        loop {
            if conn.dead || conn.fatal || conn.draining || conn.text_waiting {
                break;
            }
            let avail = &conn.rbuf[conn.rstart..];
            let Some(nl) = avail.iter().position(|&b| b == b'\n') else {
                if avail.len() > MAX_LINE_BYTES {
                    conn.wbuf
                        .extend_from_slice(b"err bad_request request line exceeds size limit\n");
                    conn.fatal = true;
                }
                break;
            };
            let line = &avail[..nl];
            let consumed = nl + 1;
            let Ok(line) = std::str::from_utf8(line) else {
                // Bytes that are not UTF-8 cannot be a protocol line.
                // Tell the peer why; the malformed bytes are consumed,
                // so the session continues with the next line.
                conn.wbuf.extend_from_slice(b"err protocol request is not valid utf-8\n");
                conn.rstart += consumed;
                continue;
            };
            if line.trim().is_empty() {
                conn.rstart += consumed;
                continue;
            }
            text_buf.clear();
            match protocol::parse_request(line) {
                Ok(Request::Complete { time_of_day, day_of_week, input }) => match *default_idx {
                    Some(ti) => match tenants[ti].tenant.admit() {
                        Ok(()) => submit_text(
                            &mut tenants[ti],
                            ti,
                            conn,
                            shared,
                            idx,
                            gen,
                            None,
                            time_of_day,
                            day_of_week,
                            input,
                            text_buf,
                        ),
                        Err(e) => protocol::write_err(text_buf, &e),
                    },
                    None => protocol::write_err(
                        text_buf,
                        &ServeError::UnknownTenant(TenantId::DEFAULT.0),
                    ),
                },
                Ok(Request::TComplete { tenant, time_of_day, day_of_week, input }) => {
                    match by_id.get(&tenant).copied() {
                        Some(ti) => match tenants[ti].tenant.admit() {
                            Ok(()) => submit_text(
                                &mut tenants[ti],
                                ti,
                                conn,
                                shared,
                                idx,
                                gen,
                                Some(tenant),
                                time_of_day,
                                day_of_week,
                                input,
                                text_buf,
                            ),
                            Err(e) => protocol::write_err(text_buf, &e),
                        },
                        None => protocol::write_err(text_buf, &ServeError::UnknownTenant(tenant)),
                    }
                }
                Ok(Request::Stats) => match *default_idx {
                    Some(ti) => {
                        protocol::write_stats(text_buf, &tenants[ti].tenant.engine().stats())
                    }
                    None => protocol::write_err(
                        text_buf,
                        &ServeError::UnknownTenant(TenantId::DEFAULT.0),
                    ),
                },
                Ok(Request::TStats { tenant }) => match by_id.get(&tenant).copied() {
                    Some(ti) => {
                        protocol::write_tstats(text_buf, tenant, &tenants[ti].tenant.stats())
                    }
                    None => protocol::write_err(text_buf, &ServeError::UnknownTenant(tenant)),
                },
                Ok(Request::Ping) => text_buf.push_str("pong"),
                Ok(Request::Quit) => {
                    text_buf.push_str("bye");
                    conn.draining = true;
                }
                Err(e) => protocol::write_err(text_buf, &e),
            }
            if !text_buf.is_empty() {
                text_buf.push('\n');
                conn.wbuf.extend_from_slice(text_buf.as_bytes());
            }
            conn.rstart += consumed;
        }
    }

    /// Delivers finished engine requests back onto their connections.
    fn drain_done(&mut self) {
        let done = {
            let mut g = self.shared.done.lock().unwrap_or_else(PoisonError::into_inner);
            std::mem::take(&mut *g)
        };
        for d in done {
            self.finish(d);
        }
    }

    fn finish(&mut self, d: Done) {
        let alive = self.slots.get(d.token).is_some_and(|s| s.gen == d.gen && s.conn.is_some());
        if !alive {
            // The connection closed while the request was in flight:
            // keep the buffers, drop the result.
            if let Ok(c) = d.result {
                let state = &mut self.tenants[d.tenant];
                recycle(&mut state.spare_inputs, c.input, state.in_shape);
                recycle(&mut state.spare_outputs, c.output, state.out_shape);
            }
            return;
        }
        let idx = d.token;
        {
            let state = &mut self.tenants[d.tenant];
            // Tenant-form replies carry the tenant's graph generation,
            // observed at encode time (a delta applied while the
            // request was in flight is visible on its response).
            let graph_gen = d.treply.map(|_| state.tenant.graph_generation());
            let conn = self.slots[idx].conn.as_mut().expect("checked alive");
            conn.in_flight -= 1;
            if conn.text {
                conn.text_waiting = false;
                self.text_buf.clear();
                match d.result {
                    Ok(c) => {
                        match d.treply {
                            Some(tid) => protocol::write_tok(
                                &mut self.text_buf,
                                tid,
                                graph_gen.unwrap_or(0),
                                &c.output,
                                c.cache_hit,
                                c.generation,
                                c.shards,
                                c.degraded,
                            ),
                            None => protocol::write_ok(
                                &mut self.text_buf,
                                &c.output,
                                c.cache_hit,
                                c.generation,
                                c.shards,
                                c.degraded,
                            ),
                        }
                        recycle(&mut state.spare_inputs, c.input, state.in_shape);
                        recycle(&mut state.spare_outputs, c.output, state.out_shape);
                    }
                    Err(e) => protocol::write_err(&mut self.text_buf, &e),
                }
                self.text_buf.push('\n');
                conn.wbuf.extend_from_slice(self.text_buf.as_bytes());
            } else {
                match d.result {
                    Ok(c) => {
                        match d.treply {
                            Some(tid) => wire::encode_tcomplete_ok(
                                &mut conn.wbuf,
                                d.request_id,
                                tid,
                                graph_gen.unwrap_or(0),
                                &c.output,
                                c.cache_hit,
                                c.degraded,
                                c.generation,
                                c.shards,
                            ),
                            None => wire::encode_complete_ok(
                                &mut conn.wbuf,
                                d.request_id,
                                &c.output,
                                c.cache_hit,
                                c.degraded,
                                c.generation,
                                c.shards,
                            ),
                        }
                        recycle(&mut state.spare_inputs, c.input, state.in_shape);
                        recycle(&mut state.spare_outputs, c.output, state.out_shape);
                    }
                    Err(e) => wire::encode_err(&mut conn.wbuf, d.request_id, &e),
                }
            }
        }
        // A response freed pipeline room: resume reading if gated,
        // and parse any requests already buffered while waiting.
        let ungated = {
            let conn = self.slots[idx].conn.as_mut().expect("checked alive");
            if conn.gated && conn.in_flight < self.cfg.max_inflight_per_conn {
                conn.gated = false;
                let _ =
                    self.poller.modify(conn.stream.as_raw_fd(), idx as u64, true, conn.want_write);
                true
            } else {
                conn.text
            }
        };
        if ungated {
            self.process(idx);
        }
        self.flush(idx);
        self.maybe_close(idx);
    }

    /// Writes as much of the send buffer as the socket accepts,
    /// keeping the remainder and registering write interest for it.
    fn flush(&mut self, idx: usize) {
        let Some(conn) = self.slots[idx].conn.as_mut() else { return };
        if conn.dead {
            return;
        }
        // Failpoint: a triggered write drops the connection with the
        // response unsent (the client observes EOF, not a reply).
        if !conn.flushed() && gcwc_failpoint::triggered(failsite::WRITE) {
            conn.dead = true;
            return;
        }
        while conn.wstart < conn.wbuf.len() {
            match conn.stream.write(&conn.wbuf[conn.wstart..]) {
                Ok(0) => {
                    conn.dead = true;
                    return;
                }
                Ok(n) => conn.wstart += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    return;
                }
            }
        }
        if conn.flushed() {
            conn.wbuf.clear();
            conn.wstart = 0;
            if conn.want_write {
                conn.want_write = false;
                let _ = self.poller.modify(conn.stream.as_raw_fd(), idx as u64, !conn.gated, false);
            }
        } else {
            if conn.wstart > (64 << 10) {
                conn.wbuf.drain(..conn.wstart);
                conn.wstart = 0;
            }
            if conn.wbuf.len() - conn.wstart > WBUF_CAP {
                conn.dead = true; // slow reader: unbounded backlog
                return;
            }
            if !conn.want_write {
                conn.want_write = true;
                let _ = self.poller.modify(conn.stream.as_raw_fd(), idx as u64, !conn.gated, true);
            }
        }
    }

    fn maybe_close(&mut self, idx: usize) {
        let close = match self.slots.get(idx).and_then(|s| s.conn.as_ref()) {
            Some(conn) => {
                conn.dead
                    || (conn.fatal && conn.flushed())
                    || (conn.draining && conn.in_flight == 0 && conn.flushed())
            }
            None => false,
        };
        if close {
            self.close_conn(idx);
        }
    }

    fn close_conn(&mut self, idx: usize) {
        let Some(conn) = self.slots[idx].conn.take() else { return };
        let _ = self.poller.delete(conn.stream.as_raw_fd());
        self.slots[idx].gen += 1;
        self.free.push(idx);
        self.shared.open_conns.fetch_sub(1, Ordering::AcqRel);
        // Dropping `conn` closes the socket.
    }
}

/// Returns a matrix to a bounded spare pool when its shape still
/// matches the served model (wrong-shape request buffers are simply
/// dropped).
fn recycle(pool: &mut Vec<Matrix>, m: Matrix, shape: (usize, usize)) {
    if pool.len() < POOL_CAP && m.shape() == shape {
        pool.push(m);
    }
}

/// Blocking TCP client speaking the newline-delimited text protocol
/// (the debug port; see [`ServerConfig::text_port`]).
pub struct TcpClient {
    reader: std::io::BufReader<TcpStream>,
    writer: TcpStream,
    line: String,
}

impl TcpClient {
    /// Connects to a running [`Server`]'s text port.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Self { reader: std::io::BufReader::new(stream), writer, line: String::new() })
    }

    fn roundtrip(&mut self, request: &str) -> Result<&str, ServeError> {
        use std::io::BufRead as _;
        self.writer.write_all(request.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.line.clear();
        let n = self.reader.read_line(&mut self.line)?;
        if n == 0 {
            return Err(ServeError::Io(std::io::Error::new(
                ErrorKind::UnexpectedEof,
                "server closed connection",
            )));
        }
        Ok(self.line.trim_end())
    }

    /// Sends a completion request and parses the bit-exact response.
    pub fn complete(
        &mut self,
        input: &Matrix,
        time_of_day: usize,
        day_of_week: usize,
    ) -> Result<protocol::OkResponse, ServeError> {
        let mut request =
            format!("complete {} {} {} {}", time_of_day, day_of_week, input.rows(), input.cols());
        protocol::write_matrix_hex(&mut request, input);
        let line = self.roundtrip(&request)?;
        protocol::parse_complete_response(line)
    }

    /// Sends a tenant-scoped completion request and parses the
    /// response (including the tenant's graph generation).
    pub fn tcomplete(
        &mut self,
        tenant: u64,
        input: &Matrix,
        time_of_day: usize,
        day_of_week: usize,
    ) -> Result<protocol::TokResponse, ServeError> {
        let mut request = format!(
            "tcomplete {} {} {} {} {}",
            tenant,
            time_of_day,
            day_of_week,
            input.rows(),
            input.cols()
        );
        protocol::write_matrix_hex(&mut request, input);
        let line = self.roundtrip(&request)?;
        protocol::parse_tcomplete_response(line)
    }

    /// Fetches the raw `stats` response line.
    pub fn stats(&mut self) -> Result<String, ServeError> {
        Ok(self.roundtrip("stats")?.to_owned())
    }

    /// Fetches one tenant's full counters (all snapshot fields).
    pub fn tstats(&mut self, tenant: u64) -> Result<crate::StatsSnapshot, ServeError> {
        let line = self.roundtrip(&format!("tstats {tenant}"))?;
        let (tid, snap) = protocol::parse_tstats_response(line)?;
        if tid != tenant {
            return Err(ServeError::Protocol(format!(
                "tstats answered tenant {tid}, asked {tenant}"
            )));
        }
        Ok(snap)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<bool, ServeError> {
        Ok(self.roundtrip("ping")? == "pong")
    }

    /// Asks the server to close this connection.
    pub fn quit(&mut self) -> Result<(), ServeError> {
        let _ = self.roundtrip("quit")?;
        Ok(())
    }
}

/// Blocking TCP client speaking the length-prefixed binary protocol,
/// with optional pipelining: [`BinClient::send_complete`] queues many
/// requests on one connection, [`BinClient::recv_response`] returns
/// responses as the server finishes them (any order, matched by id).
pub struct BinClient {
    stream: TcpStream,
    sbuf: Vec<u8>,
    payload: Vec<u8>,
    next_id: u64,
}

impl BinClient {
    /// Connects to a running [`Server`]'s binary port.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream, sbuf: Vec::new(), payload: Vec::new(), next_id: 1 })
    }

    /// Sends a completion request without waiting; returns the frame's
    /// request id for matching the pipelined response.
    pub fn send_complete(
        &mut self,
        input: &Matrix,
        time_of_day: usize,
        day_of_week: usize,
    ) -> Result<u64, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        self.sbuf.clear();
        wire::encode_complete_request(&mut self.sbuf, id, time_of_day, day_of_week, input);
        self.stream.write_all(&self.sbuf)?;
        Ok(id)
    }

    fn read_frame(&mut self) -> Result<wire::FrameHeader, ServeError> {
        let mut head = [0u8; wire::HEADER_LEN];
        self.stream.read_exact(&mut head)?;
        let header = wire::decode_header(&head)?.expect("full header read");
        self.payload.resize(header.payload_len, 0);
        self.stream.read_exact(&mut self.payload)?;
        Ok(header)
    }

    /// Receives the next response frame: `(request id, result)`.
    /// Responses to pipelined requests may arrive in any order.
    pub fn recv_response(
        &mut self,
    ) -> Result<(u64, Result<protocol::OkResponse, ServeError>), ServeError> {
        let header = self.read_frame()?;
        match header.opcode {
            Opcode::RespComplete => {
                Ok((header.request_id, Ok(wire::decode_complete_ok(&self.payload)?)))
            }
            Opcode::RespErr => Ok((header.request_id, Err(wire::decode_err(&self.payload)?))),
            other => Err(ServeError::Protocol(format!(
                "unexpected response opcode {:#04x}",
                other as u8
            ))),
        }
    }

    /// Sends a completion request and waits for its response.
    pub fn complete(
        &mut self,
        input: &Matrix,
        time_of_day: usize,
        day_of_week: usize,
    ) -> Result<protocol::OkResponse, ServeError> {
        let id = self.send_complete(input, time_of_day, day_of_week)?;
        let (rid, result) = self.recv_response()?;
        if rid != id {
            return Err(ServeError::Protocol(format!(
                "response id {rid} does not match request id {id} (pipelined sends must use \
                 recv_response)"
            )));
        }
        result
    }

    /// Sends a tenant-scoped completion request without waiting;
    /// returns the frame's request id for matching the pipelined
    /// response.
    pub fn send_tcomplete(
        &mut self,
        tenant: u64,
        input: &Matrix,
        time_of_day: usize,
        day_of_week: usize,
    ) -> Result<u64, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        self.sbuf.clear();
        wire::encode_tcomplete_request(&mut self.sbuf, id, tenant, time_of_day, day_of_week, input);
        self.stream.write_all(&self.sbuf)?;
        Ok(id)
    }

    /// Sends a tenant-scoped completion request and waits for its
    /// response (including the tenant's graph generation).
    pub fn tcomplete(
        &mut self,
        tenant: u64,
        input: &Matrix,
        time_of_day: usize,
        day_of_week: usize,
    ) -> Result<protocol::TokResponse, ServeError> {
        let id = self.send_tcomplete(tenant, input, time_of_day, day_of_week)?;
        let header = self.read_frame()?;
        if header.request_id != id {
            return Err(ServeError::Protocol(format!(
                "response id {} does not match request id {id} (pipelined sends must use \
                 recv_response)",
                header.request_id
            )));
        }
        match header.opcode {
            Opcode::RespTComplete => Ok(wire::decode_tcomplete_ok(&self.payload)?),
            Opcode::RespErr => Err(wire::decode_err(&self.payload)?),
            other => Err(ServeError::Protocol(format!(
                "unexpected response opcode {:#04x}",
                other as u8
            ))),
        }
    }

    /// Fetches one tenant's full counters (all snapshot fields).
    pub fn tstats_for(&mut self, tenant: u64) -> Result<crate::StatsSnapshot, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        self.sbuf.clear();
        wire::encode_tstats_request(&mut self.sbuf, id, tenant);
        self.stream.write_all(&self.sbuf)?;
        let header = self.read_frame()?;
        match header.opcode {
            Opcode::RespTStats => {
                let (tid, snap) = wire::decode_tstats(&self.payload)?;
                if tid != tenant {
                    return Err(ServeError::Protocol(format!(
                        "tstats answered tenant {tid}, asked {tenant}"
                    )));
                }
                Ok(snap)
            }
            Opcode::RespErr => Err(wire::decode_err(&self.payload)?),
            other => Err(ServeError::Protocol(format!(
                "unexpected response opcode {:#04x}",
                other as u8
            ))),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<bool, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        self.sbuf.clear();
        wire::encode_empty(&mut self.sbuf, Opcode::Ping, id);
        self.stream.write_all(&self.sbuf)?;
        let header = self.read_frame()?;
        Ok(header.opcode == Opcode::Pong && header.request_id == id)
    }

    /// Fetches the engine counters.
    pub fn stats(&mut self) -> Result<crate::StatsSnapshot, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        self.sbuf.clear();
        wire::encode_empty(&mut self.sbuf, Opcode::Stats, id);
        self.stream.write_all(&self.sbuf)?;
        let header = self.read_frame()?;
        match header.opcode {
            Opcode::RespStats => Ok(wire::decode_stats(&self.payload)?),
            Opcode::RespErr => Err(wire::decode_err(&self.payload)?),
            other => Err(ServeError::Protocol(format!(
                "unexpected response opcode {:#04x}",
                other as u8
            ))),
        }
    }

    /// Asks the server to close this connection (after pipelined
    /// responses drain).
    pub fn quit(&mut self) -> Result<(), ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        self.sbuf.clear();
        wire::encode_empty(&mut self.sbuf, Opcode::Quit, id);
        self.stream.write_all(&self.sbuf)?;
        loop {
            // Pipelined responses may still be queued ahead of bye.
            let header = self.read_frame()?;
            if header.opcode == Opcode::Bye {
                return Ok(());
            }
        }
    }
}
