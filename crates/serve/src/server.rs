//! std-only TCP front end: a non-blocking accept loop handing each
//! connection to a thread that owns its own in-process [`Client`].
//!
//! [`Server::stop`] flips the shared running flag; the accept loop and
//! every connection handler poll it (50 ms read timeout) and exit, and
//! the engine's own [`crate::Engine::shutdown`] then drains whatever
//! is still queued.

use crate::engine::Engine;
use crate::protocol::{self, Request};
use crate::{failsite, ServeError};
use gcwc_linalg::Matrix;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const POLL_INTERVAL: Duration = Duration::from_millis(10);
const READ_TIMEOUT: Duration = Duration::from_millis(50);

/// Largest request line accepted: the biggest admissible wire matrix
/// plus generous room for the command head. Connections exceeding it
/// are answered with an error and closed.
const MAX_LINE_BYTES: usize = protocol::MAX_WIRE_ELEMS * protocol::WIRE_ELEM_BYTES + 128;

/// A running TCP front end over an [`Engine`].
pub struct Server {
    addr: SocketAddr,
    running: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts accepting connections against `engine`.
    pub fn start<A: ToSocketAddrs>(engine: Arc<Engine>, addr: A) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let running = Arc::new(AtomicBool::new(true));
        let conn_threads = Arc::new(Mutex::new(Vec::new()));

        let accept_running = Arc::clone(&running);
        let accept_conns = Arc::clone(&conn_threads);
        let accept_thread = std::thread::Builder::new()
            .name("gcwc-serve-accept".into())
            .spawn(move || {
                while accept_running.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // Failpoint: a triggered accept drops the
                            // fresh connection (the peer sees EOF and
                            // may reconnect), as an overloaded or
                            // fd-starved accept loop would.
                            if gcwc_failpoint::triggered(failsite::ACCEPT) {
                                drop(stream);
                                continue;
                            }
                            let engine = Arc::clone(&engine);
                            let running = Arc::clone(&accept_running);
                            let handle = std::thread::Builder::new()
                                .name("gcwc-serve-conn".into())
                                .spawn(move || handle_connection(engine, stream, running))
                                .expect("spawn connection handler");
                            let mut conns = accept_conns.lock().unwrap();
                            reap_finished(&mut conns);
                            conns.push(handle);
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            reap_finished(&mut accept_conns.lock().unwrap());
                            std::thread::sleep(POLL_INTERVAL);
                        }
                        Err(_) => break,
                    }
                }
            })
            .expect("spawn accept loop");

        Ok(Self { addr, running, accept_thread: Some(accept_thread), conn_threads })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, winds down connection handlers, and joins all
    /// server threads. Does **not** shut the engine down — call
    /// [`crate::Engine::shutdown`] after this for a full drain.
    pub fn stop(&mut self) {
        self.running.store(false, Ordering::Release);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        let handles: Vec<_> = self.conn_threads.lock().unwrap().drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Joins and drops every finished connection handler so the handle
/// list stays bounded under connection churn.
fn reap_finished(conns: &mut Vec<std::thread::JoinHandle<()>>) {
    let mut i = 0;
    while i < conns.len() {
        if conns[i].is_finished() {
            let _ = conns.swap_remove(i).join();
        } else {
            i += 1;
        }
    }
}

fn handle_connection(engine: Arc<Engine>, stream: TcpStream, running: Arc<AtomicBool>) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut client = engine.client();
    let mut line = String::new();
    let mut response = String::new();

    while running.load(Ordering::Acquire) {
        // `read_line` may time out with partial bytes already appended
        // to `line` (a request fragmented across a >READ_TIMEOUT gap);
        // the buffer is only cleared after a complete line is handled,
        // so those bytes survive the retry instead of being dropped.
        // Failpoint: a triggered read tears the connection down
        // mid-session, as a peer reset or fd exhaustion would.
        if gcwc_failpoint::triggered(failsite::READ) {
            break;
        }
        let status = reader.read_line(&mut line);
        if line.len() > MAX_LINE_BYTES {
            let _ = writer.write_all(b"err bad_request request line exceeds size limit\n");
            break;
        }
        match status {
            Ok(0) => break, // peer closed; an unterminated fragment cannot complete
            Ok(_) => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue;
            }
            Err(e) if e.kind() == ErrorKind::InvalidData => {
                // Bytes that are not UTF-8 cannot be a protocol line.
                // Tell the peer why instead of silently dropping the
                // connection; the malformed bytes were consumed, so
                // the session can continue with the next line.
                let _ = writer.write_all(b"err protocol request is not valid utf-8\n");
                let _ = writer.flush();
                line.clear();
                continue;
            }
            Err(_) => break,
        }
        if line.trim().is_empty() {
            line.clear();
            continue;
        }
        response.clear();
        let quit = match protocol::parse_request(&line) {
            Ok(Request::Complete { time_of_day, day_of_week, input }) => {
                match client.complete(input, time_of_day, day_of_week) {
                    Ok(completion) => {
                        protocol::write_ok(
                            &mut response,
                            &completion.output,
                            completion.cache_hit,
                            completion.generation,
                            completion.shards,
                            completion.degraded,
                        );
                        client.recycle(completion);
                    }
                    Err(e) => protocol::write_err(&mut response, &e),
                }
                false
            }
            Ok(Request::Stats) => {
                protocol::write_stats(&mut response, &engine.stats());
                false
            }
            Ok(Request::Ping) => {
                response.push_str("pong");
                false
            }
            Ok(Request::Quit) => {
                response.push_str("bye");
                true
            }
            Err(e) => {
                protocol::write_err(&mut response, &e);
                false
            }
        };
        line.clear();
        response.push('\n');
        // Failpoint: a triggered write drops the connection with the
        // response unsent (the client observes EOF, not a reply).
        if gcwc_failpoint::triggered(failsite::WRITE) {
            break;
        }
        if writer.write_all(response.as_bytes()).is_err() || writer.flush().is_err() {
            break;
        }
        if quit {
            break;
        }
    }
}

/// Blocking TCP client speaking the text protocol.
pub struct TcpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    line: String,
}

impl TcpClient {
    /// Connects to a running [`Server`].
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Self { reader: BufReader::new(stream), writer, line: String::new() })
    }

    fn roundtrip(&mut self, request: &str) -> Result<&str, ServeError> {
        self.writer.write_all(request.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.line.clear();
        let n = self.reader.read_line(&mut self.line)?;
        if n == 0 {
            return Err(ServeError::Io(std::io::Error::new(
                ErrorKind::UnexpectedEof,
                "server closed connection",
            )));
        }
        Ok(self.line.trim_end())
    }

    /// Sends a completion request and parses the bit-exact response.
    pub fn complete(
        &mut self,
        input: &Matrix,
        time_of_day: usize,
        day_of_week: usize,
    ) -> Result<protocol::OkResponse, ServeError> {
        let mut request =
            format!("complete {} {} {} {}", time_of_day, day_of_week, input.rows(), input.cols());
        protocol::write_matrix_hex(&mut request, input);
        self.writer.write_all(request.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.line.clear();
        let n = self.reader.read_line(&mut self.line)?;
        if n == 0 {
            return Err(ServeError::Io(std::io::Error::new(
                ErrorKind::UnexpectedEof,
                "server closed connection",
            )));
        }
        protocol::parse_complete_response(self.line.trim_end())
    }

    /// Fetches the raw `stats` response line.
    pub fn stats(&mut self) -> Result<String, ServeError> {
        Ok(self.roundtrip("stats")?.to_owned())
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<bool, ServeError> {
        Ok(self.roundtrip("ping")? == "pong")
    }

    /// Asks the server to close this connection.
    pub fn quit(&mut self) -> Result<(), ServeError> {
        let _ = self.roundtrip("quit")?;
        Ok(())
    }
}
