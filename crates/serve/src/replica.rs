//! Replica groups: per-shard replication with deterministic,
//! cache-locality-preserving routing.
//!
//! Each shard of the served set is backed by a group of N replicas —
//! independently loaded [`ModelShard`] instances behind one row view.
//! A request routes to exactly one replica of its shard's group via
//! **rendezvous (highest-random-weight) hashing** over the request's
//! cache-key content `(time_of_day, day_of_week, coverage signature)`
//! and each replica's **ordinal**:
//!
//! ```text
//! point = mix(time_of_day, day_of_week, signature)
//! winner = argmax over replicas r of score(point, ordinal(r))
//! ```
//!
//! Rendezvous hashing gives the two properties the serving tier needs
//! without any routing state:
//!
//! - **Stability**: adding or removing one replica remaps only the
//!   keys whose winner was that replica (~1/N of them); every other
//!   key keeps its winner *exactly*, so its per-replica cache locality
//!   survives membership churn.
//! - **Identity at N = 1**: with one replica there is nothing to
//!   rank — routing is the constant function, and the pipeline is
//!   bit-identical to the unreplicated engine.
//!
//! The **ordinal** is a replica's monotonic incarnation id, distinct
//! from its slot index in the group: a warm-standby promotion installs
//! the replacement under a *fresh* ordinal. Failpoint kill sites are
//! keyed by ordinal (`serve.replica{ordinal}.forward`), so a
//! persistently armed site dies with the incarnation it targeted
//! instead of following the promoted successor, and routing re-ranks
//! only the slain replica's keys.
//!
//! Scores are produced by a SplitMix64-style finalizer — the same
//! integer mixer the coverage-signature hash uses — applied to the
//! route point XOR a per-ordinal salt. Everything here is pure integer
//! arithmetic: deterministic across runs, platforms, and replica
//! orderings.

use crate::registry::ModelShard;
use std::sync::Arc;

/// One member of a shard's replica group: a warm shard plus the
/// incarnation id routing ranks it by.
#[derive(Clone)]
pub struct Replica {
    /// The replica's independently loaded (or donor-shared) model
    /// shard. Carries its own `generation`, which cache keys embed —
    /// so entries cached for one replica are only served back by a
    /// replica holding the same installed generation.
    pub shard: Arc<ModelShard>,
    /// Monotonic incarnation id. Initial groups number their replicas
    /// shard-major (`k * N + slot`); every promotion draws a fresh
    /// ordinal from the registry's counter.
    pub ordinal: u64,
}

/// SplitMix64 finalizer: a cheap, well-mixed bijection on `u64`.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Collapses a request's cache-key content into the 64-bit route
/// point rendezvous scoring ranks replicas against. Two requests with
/// the same `(time_of_day, day_of_week, signature)` always produce the
/// same point — the routed replica is a pure function of the cache
/// key, so repeats of a hot key land on the replica that cached it.
#[inline]
pub fn route_point(time_of_day: usize, day_of_week: usize, signature: u64) -> u64 {
    mix(signature ^ mix((time_of_day as u64) << 3 | day_of_week as u64))
}

/// The rendezvous score of one replica (by ordinal) for one route
/// point. The winner is the highest score; ties break toward the
/// lower slot index in [`select_by`].
#[inline]
pub fn score(point: u64, ordinal: u64) -> u64 {
    mix(point ^ mix(ordinal ^ 0xd6e8_feb8_6659_fd93))
}

/// Rendezvous selection over the replicas of a group for which
/// `eligible(slot)` holds: returns the eligible slot whose ordinal
/// scores highest against `point` (ties toward the lowest slot), or
/// `None` when no slot is eligible. A single-replica group trivially
/// selects slot 0 — N = 1 routing is the identity.
pub fn select_by<F>(point: u64, group: &[Replica], eligible: F) -> Option<usize>
where
    F: Fn(usize) -> bool,
{
    let mut best: Option<(u64, usize)> = None;
    for (slot, replica) in group.iter().enumerate() {
        if !eligible(slot) {
            continue;
        }
        let s = score(point, replica.ordinal);
        if best.is_none_or(|(bs, _)| s > bs) {
            best = Some((s, slot));
        }
    }
    best.map(|(_, slot)| slot)
}

/// [`select_by`] with every slot eligible.
///
/// # Panics
/// Panics on an empty group.
pub fn select(point: u64, group: &[Replica]) -> usize {
    select_by(point, group, |_| true).expect("replica group must not be empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::AnyModel;
    use gcwc::{GcwcModel, ModelConfig};
    use gcwc_graph::EdgeGraph;
    use gcwc_linalg::CsrMatrix;

    fn tiny_group(ordinals: &[u64]) -> Vec<Replica> {
        // Routing only reads the ordinals, so every slot can share one
        // trivial 3-edge shard.
        let graph = EdgeGraph::from_adjacency(CsrMatrix::identity(3));
        let shard = Arc::new(ModelShard {
            model: AnyModel::Gcwc(GcwcModel::new(&graph, 2, ModelConfig::hw_hist(), 7)),
            generation: 0,
            source: None,
        });
        ordinals.iter().map(|&ordinal| Replica { shard: Arc::clone(&shard), ordinal }).collect()
    }

    #[test]
    fn single_replica_routing_is_identity() {
        let group = tiny_group(&[42]);
        for tod in 0..8 {
            for dow in 0..7 {
                assert_eq!(select(route_point(tod, dow, tod as u64 * 31 + dow as u64), &group), 0);
            }
        }
    }

    #[test]
    fn selection_is_deterministic_and_ordinal_keyed() {
        let group = tiny_group(&[0, 1, 2]);
        let point = route_point(5, 3, 0xdead_beef);
        let a = select(point, &group);
        let b = select(point, &group);
        assert_eq!(a, b, "same point must route to the same slot");
        // The winner is decided by ordinal, not slot position: rotating
        // the ordinals moves the winner with them.
        let rotated = tiny_group(&[1, 2, 0]);
        let winner_ordinal = group[select(point, &group)].ordinal;
        let rotated_winner = rotated[select(point, &rotated)].ordinal;
        assert_eq!(winner_ordinal, rotated_winner);
    }

    #[test]
    fn removing_a_loser_never_remaps() {
        let group = tiny_group(&[0, 1, 2, 3]);
        for seed in 0..512u64 {
            let point = mix(seed);
            let winner = group[select(point, &group)].ordinal;
            for dead in 0..group.len() {
                if group[dead].ordinal == winner {
                    continue;
                }
                let survivor =
                    select_by(point, &group, |s| s != dead).map(|s| group[s].ordinal).unwrap();
                assert_eq!(survivor, winner, "removing a non-winner remapped point {point:#x}");
            }
        }
    }
}
