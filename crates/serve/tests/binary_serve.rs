//! End-to-end tests of the binary (length-prefixed) front end: the
//! wire contract is *bit-exactness* — raw little-endian f64 bit
//! patterns — so every response must be bit-identical to direct
//! in-process inference and to the text debug protocol. On top of
//! that: pipelining (many in-flight ids on one connection) must equal
//! sequential requests bitwise, torn/fragmented frames must survive
//! byte-at-a-time delivery, malformed frames must answer typed errors
//! (payload-level errors keep the session; header-level errors close
//! it), connect-to-first-response latency must be far below the old
//! 50 ms poll-loop worst case, and ten thousand idle connections must
//! not grow the process thread count at all.

use gcwc::CompletionModel;
use gcwc::{build_samples, AGcwcModel, InferWorkspace, ModelConfig, TaskKind, TrainSample};
use gcwc_linalg::Matrix;
use gcwc_serve::{
    derive_row_flags, wire, AnyModel, BinClient, Engine, EngineConfig, ModelRegistry, ServeError,
    Server, ServerConfig, TcpClient,
};
use gcwc_traffic::{generators, simulate, HistogramSpec, SimConfig};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::io::{Read as _, Write as _};
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

struct Fixture {
    hw: gcwc_traffic::NetworkInstance,
    samples: Vec<TrainSample>,
    ckpt: PathBuf,
    model: AGcwcModel,
}

fn model_config() -> ModelConfig {
    ModelConfig::hw_hist().with_epochs(2)
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let hw = generators::highway_tollgate(1);
        let sim = SimConfig {
            days: 2,
            intervals_per_day: 16,
            records_per_interval: 10.0,
            ..Default::default()
        };
        let data = simulate(&hw, HistogramSpec::hist8(), &sim);
        let ds = data.to_dataset(0.5, 5, 11);
        let idx: Vec<usize> = (0..ds.len()).collect();
        let samples = build_samples(&ds, &idx, TaskKind::Estimation, 0);
        let mut model = AGcwcModel::new(&hw.graph, 8, 16, model_config(), 42);
        model.fit(&samples[..8]);
        let dir = std::env::temp_dir().join("gcwc_binary_serve_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("agcwc_fixture.ckpt");
        model.save(&ckpt).unwrap();
        Fixture { hw, samples, ckpt, model }
    })
}

fn make_registry() -> Arc<ModelRegistry> {
    let registry = Arc::new(ModelRegistry::new(Box::new(|| {
        AnyModel::AGcwc(AGcwcModel::new(&fixture().hw.graph, 8, 16, model_config(), 0))
    })));
    registry.load(&fixture().ckpt).unwrap();
    registry
}

fn direct_completion(input: &Matrix, time_of_day: usize, day_of_week: usize) -> Matrix {
    let mut flags = Vec::new();
    derive_row_flags(input, &mut flags);
    let mut ws = InferWorkspace::new();
    fixture().model.infer(&mut ws, input, time_of_day, day_of_week, &flags)
}

fn bits(m: &Matrix) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn start_server() -> (Arc<Engine>, Server) {
    let engine = Arc::new(Engine::new(make_registry(), EngineConfig::default()));
    let server = Server::start_with(
        Arc::clone(&engine),
        "127.0.0.1:0",
        ServerConfig { text_port: Some(0), ..Default::default() },
    )
    .unwrap();
    (engine, server)
}

fn os_threads() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Binary responses are bit-identical to direct inference AND to
    /// the text protocol answering the same request — the two front
    /// ends are interchangeable down to the last mantissa bit.
    #[test]
    fn binary_text_and_direct_agree_bitwise(picks in collection::vec(0usize..12, 1..4)) {
        let f = fixture();
        let (engine, mut server) = start_server();
        let mut bin = BinClient::connect(server.addr()).unwrap();
        let mut text = TcpClient::connect(server.text_addr().unwrap()).unwrap();
        for &pick in &picks {
            let s = &f.samples[pick];
            let want = direct_completion(&s.input, s.context.time_of_day, s.context.day_of_week);
            let via_text = text
                .complete(&s.input, s.context.time_of_day, s.context.day_of_week)
                .unwrap();
            let via_bin = bin
                .complete(&s.input, s.context.time_of_day, s.context.day_of_week)
                .unwrap();
            prop_assert_eq!(&bits(&want), &bits(&via_text.output), "text vs direct, pick {}", pick);
            prop_assert_eq!(&bits(&want), &bits(&via_bin.output), "binary vs direct, pick {}", pick);
        }
        server.stop();
        engine.shutdown();
    }

    /// Pure codec round-trip: any finite bit pattern crosses the wire
    /// unchanged (encode → frame parse → decode → fill is `to_bits`
    /// identity), for requests and responses alike.
    #[test]
    fn wire_roundtrip_is_bit_identity(
        raw in collection::vec(0u64..u64::MAX, 1..64),
        rows in 1usize..8,
    ) {
        // Arbitrary bit patterns (including subnormals and negative
        // zero) exercise the to_bits contract; non-finite patterns are
        // rejected by input hardening, so map them to 0.
        let vals: Vec<f64> = raw
            .iter()
            .map(|&b| {
                let v = f64::from_bits(b);
                if v.is_finite() {
                    v
                } else {
                    0.0
                }
            })
            .collect();
        let cols = vals.len().div_ceil(rows);
        let mut padded = vals;
        padded.resize(rows * cols, 1.0);
        // Rows with zero mass and a negative entry are rejected by
        // input hardening (by design); make every row carry mass.
        for r in 0..rows {
            let row = &mut padded[r * cols..(r + 1) * cols];
            if row.iter().sum::<f64>() == 0.0 && row.iter().any(|&v| v < 0.0) {
                row[0] = 1.0;
            }
        }
        let m = Matrix::from_vec(rows, cols, padded);

        let mut frame = Vec::new();
        wire::encode_complete_request(&mut frame, 9, 3, 2, &m);
        let header = wire::decode_header(&frame).unwrap().expect("full header");
        prop_assert_eq!(header.request_id, 9);
        let req = wire::decode_complete_request(&frame[wire::HEADER_LEN..]).unwrap();
        let mut out = Matrix::zeros(rows, cols);
        wire::fill_matrix(&req, &mut out).unwrap();
        prop_assert_eq!(&bits(&m), &bits(&out), "request round-trip");

        let mut resp = Vec::new();
        wire::encode_complete_ok(&mut resp, 9, &m, false, false, 1, 1);
        let ok = wire::decode_complete_ok(&resp[wire::HEADER_LEN..]).unwrap();
        prop_assert_eq!(&bits(&m), &bits(&ok.output), "response round-trip");
    }
}

/// N requests pipelined on one connection produce exactly the same
/// bits as the same N sent sequentially, and every request id is
/// answered exactly once.
#[test]
fn pipelined_equals_sequential_bitwise() {
    let f = fixture();
    let (engine, mut server) = start_server();
    let picks: Vec<usize> = (0..12).collect();

    let mut seq = BinClient::connect(server.addr()).unwrap();
    let sequential: Vec<Vec<u64>> = picks
        .iter()
        .map(|&p| {
            let s = &f.samples[p];
            let resp =
                seq.complete(&s.input, s.context.time_of_day, s.context.day_of_week).unwrap();
            bits(&resp.output)
        })
        .collect();

    let mut pipe = BinClient::connect(server.addr()).unwrap();
    let mut id_to_pick = std::collections::HashMap::new();
    for &p in &picks {
        let s = &f.samples[p];
        let id =
            pipe.send_complete(&s.input, s.context.time_of_day, s.context.day_of_week).unwrap();
        id_to_pick.insert(id, p);
    }
    let mut answered = BTreeSet::new();
    for _ in 0..picks.len() {
        let (id, result) = pipe.recv_response().unwrap();
        let p = *id_to_pick.get(&id).expect("response id was sent");
        assert!(answered.insert(id), "request id {id} answered twice");
        let resp = result.expect("pipelined completion");
        assert_eq!(
            sequential[picks.iter().position(|&x| x == p).unwrap()],
            bits(&resp.output),
            "pipelined response for pick {p} diverged from sequential"
        );
    }
    assert_eq!(answered.len(), picks.len(), "every pipelined request answered exactly once");

    server.stop();
    engine.shutdown();
}

/// A frame delivered one byte at a time (with pauses) must be
/// reassembled exactly: partial headers and torn payloads wait for
/// more bytes instead of erroring or dropping state.
#[test]
fn fragmented_one_byte_writes_survive() {
    let f = fixture();
    let (engine, mut server) = start_server();
    let s = &f.samples[0];
    let want = direct_completion(&s.input, s.context.time_of_day, s.context.day_of_week);

    let mut frame = Vec::new();
    wire::encode_complete_request(
        &mut frame,
        77,
        s.context.time_of_day,
        s.context.day_of_week,
        &s.input,
    );

    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    // Header and the payload head: one byte per write, with delays —
    // the frame crosses dozens of reactor wake-ups.
    for chunk in frame[..64.min(frame.len())].iter() {
        stream.write_all(&[*chunk]).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }
    // The matrix body: irregular small chunks.
    for chunk in frame[64.min(frame.len())..].chunks(13) {
        stream.write_all(chunk).unwrap();
    }
    stream.flush().unwrap();

    let mut head = [0u8; wire::HEADER_LEN];
    stream.read_exact(&mut head).unwrap();
    let header = wire::decode_header(&head).unwrap().expect("full header");
    assert_eq!(header.request_id, 77);
    let mut payload = vec![0u8; header.payload_len];
    stream.read_exact(&mut payload).unwrap();
    let resp = wire::decode_complete_ok(&payload).unwrap();
    assert_eq!(bits(&want), bits(&resp.output), "fragmented request must answer bit-exactly");

    server.stop();
    engine.shutdown();
}

/// Garbage magic is a header-level (fatal) error: the server answers
/// one typed error frame and closes the connection — framing can no
/// longer be trusted.
#[test]
fn garbage_magic_answers_typed_error_and_closes() {
    let (engine, mut server) = start_server();
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    stream.write_all(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();

    let mut head = [0u8; wire::HEADER_LEN];
    stream.read_exact(&mut head).unwrap();
    let header = wire::decode_header(&head).unwrap().expect("full header");
    assert_eq!(header.opcode, wire::Opcode::RespErr);
    let mut payload = vec![0u8; header.payload_len];
    stream.read_exact(&mut payload).unwrap();
    let err = wire::decode_err(&payload).unwrap();
    assert!(matches!(err, ServeError::Protocol(_)), "got {err:?}");
    // ...and the stream is closed.
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "no bytes after the fatal error frame");

    server.stop();
    engine.shutdown();
}

/// A header declaring a payload larger than any admissible frame is
/// refused before buffering it (a 4 GiB declared length must not
/// reserve 4 GiB), with a typed error and a close.
#[test]
fn oversized_declared_length_is_refused_and_closed() {
    let (engine, mut server) = start_server();
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut head = Vec::new();
    head.extend_from_slice(&wire::MAGIC);
    head.push(wire::VERSION);
    head.push(0x01); // complete
    head.extend_from_slice(&[0, 0]);
    head.extend_from_slice(&5u64.to_le_bytes());
    head.extend_from_slice(&u32::MAX.to_le_bytes()); // ~4 GiB payload
    stream.write_all(&head).unwrap();

    let mut resp_head = [0u8; wire::HEADER_LEN];
    stream.read_exact(&mut resp_head).unwrap();
    let header = wire::decode_header(&resp_head).unwrap().expect("full header");
    assert_eq!(header.opcode, wire::Opcode::RespErr);
    let mut payload = vec![0u8; header.payload_len];
    stream.read_exact(&mut payload).unwrap();
    let err = wire::decode_err(&payload).unwrap();
    assert!(matches!(err, ServeError::Protocol(_)), "got {err:?}");
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "connection must close after an oversized declaration");

    server.stop();
    engine.shutdown();
}

/// Payload-level errors (non-finite entries, bad shapes) are scoped to
/// their request id: the server answers a typed error and the same
/// session keeps serving.
#[test]
fn payload_errors_keep_the_session_alive() {
    let f = fixture();
    let (engine, mut server) = start_server();
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    stream.set_nodelay(true).unwrap();

    // A NaN smuggled in the bit patterns must be rejected.
    let (rows, cols) = engine.input_shape();
    let mut poisoned = Matrix::zeros(rows, cols);
    poisoned.as_mut_slice().fill(1.0);
    poisoned.as_mut_slice()[3] = f64::NAN;
    let mut frame = Vec::new();
    wire::encode_complete_request(&mut frame, 41, 0, 0, &poisoned);
    stream.write_all(&frame).unwrap();

    let read_frame = |stream: &mut std::net::TcpStream| {
        let mut head = [0u8; wire::HEADER_LEN];
        stream.read_exact(&mut head).unwrap();
        let header = wire::decode_header(&head).unwrap().expect("full header");
        let mut payload = vec![0u8; header.payload_len];
        stream.read_exact(&mut payload).unwrap();
        (header, payload)
    };
    let (header, payload) = read_frame(&mut stream);
    assert_eq!(header.opcode, wire::Opcode::RespErr);
    assert_eq!(header.request_id, 41, "error must carry the offending request id");
    let err = wire::decode_err(&payload).unwrap();
    assert!(matches!(err, ServeError::Protocol(_)), "got {err:?}");

    // Same session, next frame: a well-formed request still serves.
    let s = &f.samples[2];
    let want = direct_completion(&s.input, s.context.time_of_day, s.context.day_of_week);
    let mut frame = Vec::new();
    wire::encode_complete_request(
        &mut frame,
        42,
        s.context.time_of_day,
        s.context.day_of_week,
        &s.input,
    );
    stream.write_all(&frame).unwrap();
    let (header, payload) = read_frame(&mut stream);
    assert_eq!(header.opcode, wire::Opcode::RespComplete);
    assert_eq!(header.request_id, 42);
    let resp = wire::decode_complete_ok(&payload).unwrap();
    assert_eq!(bits(&want), bits(&resp.output), "session must survive a payload error");

    server.stop();
    engine.shutdown();
}

/// Regression test for the poll-loop latency bug: the old front end
/// slept in 10 ms accept / 50 ms read loops, so connect-to-first-
/// response could take ~100 ms. The reactor is readiness-driven: even
/// p99 over fresh connections must stay far under one 50 ms sleep.
#[test]
fn connect_to_first_response_latency_is_event_driven() {
    let (engine, mut server) = start_server();
    let mut connect_to_pong = Vec::new();
    for _ in 0..30 {
        let t = Instant::now();
        let mut c = BinClient::connect(server.addr()).unwrap();
        assert!(c.ping().unwrap());
        connect_to_pong.push(t.elapsed());
    }
    connect_to_pong.sort();
    let p99 = connect_to_pong[connect_to_pong.len() - 1];
    assert!(
        p99 < Duration::from_millis(25),
        "connect→first-response p99 {p99:?} — the front end is sleeping, not event-driven"
    );

    // The text port shares the reactor, so the same bound holds there.
    let mut text_latency = Vec::new();
    for _ in 0..10 {
        let t = Instant::now();
        let mut c = TcpClient::connect(server.text_addr().unwrap()).unwrap();
        assert!(c.ping().unwrap());
        text_latency.push(t.elapsed());
    }
    text_latency.sort();
    let p99 = text_latency[text_latency.len() - 1];
    assert!(p99 < Duration::from_millis(25), "text port p99 {p99:?} not event-driven");

    server.stop();
    engine.shutdown();
}

/// The scalability claim: ten thousand idle connections parked on the
/// reactor add **zero** OS threads (no thread-per-connection), and the
/// server still answers new work promptly with them all held open.
#[test]
fn ten_thousand_idle_connections_add_no_threads() {
    let f = fixture();
    let budget = gcwc_serve::sys::raise_nofile(25_000);
    // Both socket ends live in this process: ~2 fds per connection.
    let target = 10_000usize.min((budget.saturating_sub(200) / 2) as usize);
    assert!(target >= 1_000, "fd budget too small to say anything: {budget}");

    let (engine, mut server) = start_server();
    let threads_before = os_threads();
    let mut idle = Vec::with_capacity(target);
    for _ in 0..target {
        idle.push(std::net::TcpStream::connect(server.addr()).unwrap());
    }
    // The reactor accepts asynchronously; wait until it holds them all.
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.open_connections() < target {
        assert!(
            Instant::now() < deadline,
            "only {} of {target} accepted",
            server.open_connections()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let threads_after = os_threads();
    assert!(
        threads_after <= threads_before + 1,
        "{target} idle connections grew threads {threads_before} → {threads_after}; \
         the front end must not spawn per-connection threads"
    );

    // New work still round-trips bit-exactly with 10k parked sockets.
    let s = &f.samples[1];
    let want = direct_completion(&s.input, s.context.time_of_day, s.context.day_of_week);
    let mut active = BinClient::connect(server.addr()).unwrap();
    let t = Instant::now();
    let resp = active.complete(&s.input, s.context.time_of_day, s.context.day_of_week).unwrap();
    let latency = t.elapsed();
    assert_eq!(bits(&want), bits(&resp.output));
    assert!(
        latency < Duration::from_secs(1),
        "active request took {latency:?} with {target} idle connections"
    );

    drop(idle);
    server.stop();
    engine.shutdown();
}

/// `quit` drains pipelined responses before `bye`, and the in-flight
/// cap plus buffer caps keep a blasting client bounded (the reactor
/// gates reads instead of buffering without limit).
#[test]
fn quit_drains_pipelined_responses_before_bye() {
    let f = fixture();
    let (engine, mut server) = start_server();
    let mut c = BinClient::connect(server.addr()).unwrap();
    let s = &f.samples[3];
    let mut ids = Vec::new();
    for _ in 0..8 {
        ids.push(c.send_complete(&s.input, s.context.time_of_day, s.context.day_of_week).unwrap());
    }
    // quit() itself drains every pending response until bye.
    c.quit().unwrap();
    server.stop();
    engine.shutdown();
}
