//! End-to-end delta-repair bit-equivalence at the serving layer,
//! K ∈ {1, 2, 4}: a tenant registered, served, delta-mutated via
//! [`Tenant::install_topology`], and re-served must answer bit-for-bit
//! what a **fresh single-tenant process** built directly on the
//! post-delta graph answers — and both must match the fresh model's
//! `predict_global`. The tenant's graph generation is 0 before the
//! delta and 1 after, on every tenant-form response.
//!
//! [`Tenant::install_topology`]: gcwc_serve::Tenant::install_topology

use std::sync::Arc;

use gcwc::{
    build_samples, shard_seed, GcwcModel, ModelConfig, ShardedModel, TaskKind, TrainSample,
};
use gcwc_graph::{GraphDelta, PartitionSet};
use gcwc_linalg::Matrix;
use gcwc_serve::{
    AnyModel, BinClient, Engine, EngineConfig, ModelRegistry, Server, ServerConfig, TenantId,
    TenantRegistry, TopologyUpdate,
};
use gcwc_traffic::{generators, simulate, HistogramSpec, SimConfig};

fn model_config() -> ModelConfig {
    ModelConfig::ci_hist().with_epochs(2)
}

fn samples_for(instance: &gcwc_traffic::NetworkInstance) -> Vec<TrainSample> {
    let cfg = SimConfig {
        days: 2,
        intervals_per_day: 8,
        records_per_interval: 10.0,
        ..Default::default()
    };
    let data = simulate(instance, HistogramSpec::hist8(), &cfg);
    let ds = data.to_dataset(0.5, 5, 11);
    let idx: Vec<usize> = (0..ds.len()).collect();
    build_samples(&ds, &idx, TaskKind::Estimation, 0)
}

fn bits(m: &Matrix) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// A link interior to one partition's owned block — the most localized
/// delta possible — falling back to any existing link.
fn pick_link(ps: &PartitionSet, graph: &gcwc_graph::EdgeGraph) -> (usize, usize) {
    for u in 0..graph.num_nodes() {
        for &v in graph.neighbors(u) {
            if u < v && ps.owner_of(u) == ps.owner_of(v) && !ps.is_boundary(u) {
                return (u, v);
            }
        }
    }
    for u in 0..graph.num_nodes() {
        if let Some(&v) = graph.neighbors(u).iter().find(|&&v| v > u) {
            return (u, v);
        }
    }
    panic!("graph has no links");
}

/// Trains a sharded model on `partition`; training is deterministic in
/// `(partition, seed, samples)`, so two calls with the same arguments
/// produce bit-identical parameter sets.
fn train(
    partition: Arc<PartitionSet>,
    samples: &[TrainSample],
    seed: u64,
) -> ShardedModel<GcwcModel> {
    let mut model = ShardedModel::gcwc_on(partition, 8, model_config(), seed);
    model.fit_shards(&samples[..6]);
    model
}

/// A registry loaded with the trained shards of `sharded`.
fn registry_of(sharded: ShardedModel<GcwcModel>) -> Arc<ModelRegistry> {
    let (partition, shards) = sharded.into_shards();
    let factories = (0..partition.num_partitions())
        .map(|k| {
            let graph = partition.partition(k).graph().clone();
            let f: Box<dyn Fn() -> AnyModel + Send + Sync> =
                Box::new(move || AnyModel::Gcwc(GcwcModel::new(&graph, 8, model_config(), 0)));
            f
        })
        .collect();
    let registry = Arc::new(ModelRegistry::sharded(factories, &partition));
    for (k, shard) in shards.into_iter().enumerate() {
        registry.install_shard(k, AnyModel::Gcwc(shard));
    }
    registry
}

#[test]
fn tenant_delta_reserve_matches_fresh_single_tenant_process() {
    let city = generators::city_network_sized(2, 64);
    let samples = samples_for(&city);
    let seed = 42u64;

    for k in [1usize, 2, 4] {
        let pre = Arc::new(PartitionSet::build(&city.graph, k));
        // The served copy and the repair copy are trained identically
        // (GcwcModel is deliberately not Clone), so their parameters
        // are bit-equal by training determinism.
        let served = train(Arc::clone(&pre), &samples, seed);
        let mut repairable = train(Arc::clone(&pre), &samples, seed);

        let tenants = Arc::new(TenantRegistry::new());
        let tid = TenantId(7);
        let tenant = tenants.register(
            tid,
            registry_of(served),
            EngineConfig { workers: 1, ..Default::default() },
            None,
        );
        let mut server =
            Server::start_tenants(&tenants, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut client = BinClient::connect(server.addr()).unwrap();

        // Phase 1: pre-delta serving at graph generation 0, matching
        // the local model exactly.
        for s in &samples[..3] {
            let r = client
                .tcomplete(tid.0, &s.input, s.context.time_of_day, s.context.day_of_week)
                .unwrap();
            assert_eq!(r.tenant, tid.0, "K={k}");
            assert_eq!(r.graph_generation, 0, "K={k}: no delta applied yet");
            assert!(!r.body.degraded, "K={k}");
            assert_eq!(
                bits(&repairable.predict_global(s)),
                bits(&r.body.output),
                "K={k}: pre-delta serving diverged from predict_global"
            );
        }

        // Apply the delta and retrain only the repaired shards.
        let link = pick_link(&pre, &city.graph);
        let delta = GraphDelta { added_edges: vec![], removed_edges: vec![link] };
        let (new_graph, repaired) = repairable
            .apply_delta(&city.graph, &delta, |b, p| {
                GcwcModel::new(p.graph(), 8, model_config(), shard_seed(seed, b))
            })
            .unwrap();
        assert!(!repaired.is_empty(), "K={k}: the delta must repair at least one shard");
        if k > 1 {
            assert!(
                repaired.len() < k,
                "K={k}: a localized delta must repair strictly fewer than all shards"
            );
        }
        repairable.fit_shards_subset(&repaired, &samples[..6]).unwrap();

        // Install the repaired shards into the live tenant: the swap
        // bumps the graph generation and invalidates exactly the
        // repaired shards' cache entries.
        let owners = repairable.partition_set().owners().to_vec();
        let (post_partition, shards) = repairable.into_shards();
        let views: Vec<_> = post_partition.partitions().iter().map(|p| p.view().clone()).collect();
        let updates: Vec<TopologyUpdate> = shards
            .into_iter()
            .enumerate()
            .filter(|(b, _)| repaired.contains(b))
            .map(|(b, model)| {
                let graph = post_partition.partition(b).graph().clone();
                TopologyUpdate {
                    shard: b,
                    model: AnyModel::Gcwc(model),
                    factory: Box::new(move || {
                        AnyModel::Gcwc(GcwcModel::new(&graph, 8, model_config(), 0))
                    }),
                }
            })
            .collect();
        let (_model_gen, graph_gen) = tenant.install_topology(updates, views);
        assert_eq!(graph_gen, 1, "K={k}: first delta bumps the graph generation to 1");

        // Phase 2: post-delta serving through the same live tenant.
        let p2: Vec<Vec<u64>> = samples[..3]
            .iter()
            .map(|s| {
                let r = client
                    .tcomplete(tid.0, &s.input, s.context.time_of_day, s.context.day_of_week)
                    .unwrap();
                assert_eq!(
                    r.graph_generation, 1,
                    "K={k}: responses carry the bumped graph generation"
                );
                assert!(!r.body.degraded, "K={k}");
                bits(&r.body.output)
            })
            .collect();
        server.stop();
        tenants.shutdown();

        // Phase 3: a fresh single-tenant process built directly on the
        // post-delta graph (same ownership, same seed), serving the
        // legacy tenant-less protocol.
        let post = Arc::new(PartitionSet::from_owner_of(&new_graph, owners, k));
        let fresh = train(post, &samples, seed);
        let expected: Vec<Vec<u64>> =
            samples[..3].iter().map(|s| bits(&fresh.predict_global(s))).collect();

        let engine = Arc::new(Engine::new(
            registry_of(fresh),
            EngineConfig { workers: 1, ..Default::default() },
        ));
        let mut fresh_server = Server::start(Arc::clone(&engine), "127.0.0.1:0").unwrap();
        let mut legacy = BinClient::connect(fresh_server.addr()).unwrap();
        let p3: Vec<Vec<u64>> = samples[..3]
            .iter()
            .map(|s| {
                let r = legacy
                    .complete(&s.input, s.context.time_of_day, s.context.day_of_week)
                    .unwrap();
                assert!(!r.degraded, "K={k}");
                bits(&r.output)
            })
            .collect();
        fresh_server.stop();
        engine.shutdown();

        assert_eq!(p2, expected, "K={k}: tenant post-delta serving != fresh predict_global");
        assert_eq!(p2, p3, "K={k}: tenant post-delta serving != fresh single-tenant process");
    }
}
