//! Property: the text (`tstats`) and binary (`RespTStats`) stats
//! serializations agree **field for field** for every tenant and every
//! counter vector. Both protocols serialize exactly
//! [`StatsSnapshot::tenant_fields`], so a drift in either encoder or
//! decoder — a reordered, dropped, or misparsed field — breaks the
//! round-trip equality this suite pins.

use gcwc_serve::wire::{self, HEADER_LEN};
use gcwc_serve::{protocol, StatsSnapshot};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Text and binary round-trips of the same snapshot yield the same
    /// tenant id and the same 22-field counter vector.
    #[test]
    fn text_and_binary_tstats_agree_field_for_field(
        tenant in 0u64..u64::MAX,
        request_id in 0u64..u64::MAX,
        field_vec in collection::vec(0u64..u64::MAX, StatsSnapshot::TENANT_FIELDS),
    ) {
        let mut fields = [0u64; StatsSnapshot::TENANT_FIELDS];
        fields.copy_from_slice(&field_vec);
        let snapshot = StatsSnapshot::from_tenant_fields(fields);
        // A snapshot built from a field vector reproduces it exactly.
        prop_assert_eq!(snapshot.tenant_fields(), fields);

        // Text protocol round-trip.
        let mut line = String::new();
        protocol::write_tstats(&mut line, tenant, &snapshot);
        let tokens: Vec<&str> = line.split_whitespace().collect();
        prop_assert_eq!(
            tokens.len(),
            2 + StatsSnapshot::TENANT_FIELDS,
            "tstats line is the keyword, the tenant id, and one token per field"
        );
        let (text_tenant, text_snapshot) = protocol::parse_tstats_response(&line).unwrap();

        // Binary protocol round-trip.
        let mut frame = Vec::new();
        wire::encode_tstats(&mut frame, request_id, tenant, &snapshot);
        let (bin_tenant, bin_snapshot) = wire::decode_tstats(&frame[HEADER_LEN..]).unwrap();

        // The two protocols agree with each other and with the source.
        prop_assert_eq!(text_tenant, tenant);
        prop_assert_eq!(bin_tenant, tenant);
        prop_assert_eq!(text_snapshot.tenant_fields(), fields);
        prop_assert_eq!(bin_snapshot.tenant_fields(), fields);
    }
}
