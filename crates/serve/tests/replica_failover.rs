//! Replica failover under injected faults (`--features failpoints`):
//! a killed replica fails over to its group's survivor with the
//! response bit-identical to the healthy baseline, a group whose every
//! replica fails answers the typed retryable
//! [`ServeError::ReplicaFailingOver`] once a warm-standby promotion
//! succeeded, and [`gcwc_serve::Client::complete`]'s bounded retry
//! rides a mid-failover request through to a bit-exact success on the
//! promoted incarnations. The promotion failpoint pins the fallback:
//! with promotion failing too, an exhausted group degrades exactly as
//! an unreplicated tripped shard does.
//!
//! The failpoint registry is process-global; every test serialises on
//! [`fail_lock`] and disarms its sites before releasing it.

#![cfg(feature = "failpoints")]

use gcwc::{build_samples, GcwcModel, ModelConfig, ShardedModel, TaskKind, TrainSample};
use gcwc_graph::PartitionSet;
use gcwc_linalg::Matrix;
use gcwc_serve::{
    failsite, AnyModel, BreakerConfig, Engine, EngineConfig, ModelRegistry, RetryPolicy, ServeError,
};
use gcwc_traffic::{generators, simulate, HistogramSpec, SimConfig};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

fn fail_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn model_config() -> ModelConfig {
    ModelConfig::hw_hist().with_epochs(2)
}

struct Fixture {
    samples: Vec<TrainSample>,
    partition: Arc<PartitionSet>,
    ckpts: Vec<std::path::PathBuf>,
    /// `predict_global` of the trained sharded model on `samples[..4]`.
    reference: Vec<Matrix>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let hw = generators::highway_tollgate(1);
        let sim = SimConfig {
            days: 2,
            intervals_per_day: 16,
            records_per_interval: 10.0,
            ..Default::default()
        };
        let data = simulate(&hw, HistogramSpec::hist8(), &sim);
        let ds = data.to_dataset(0.5, 5, 11);
        let idx: Vec<usize> = (0..ds.len()).collect();
        let samples = build_samples(&ds, &idx, TaskKind::Estimation, 0);
        let partition = Arc::new(PartitionSet::build(&hw.graph, 2));
        let mut sharded = ShardedModel::gcwc_on(Arc::clone(&partition), 8, model_config(), 42);
        sharded.fit_shards(&samples[..8]);
        let reference = samples[..4].iter().map(|s| sharded.predict_global(s)).collect();
        let dir = std::env::temp_dir().join("gcwc_replica_failover");
        std::fs::create_dir_all(&dir).unwrap();
        let (_, shards) = sharded.into_shards();
        let ckpts: Vec<_> = shards
            .iter()
            .enumerate()
            .map(|(k, shard)| {
                let path = dir.join(format!("failover.shard{k}.ckpt"));
                shard.save(&path).unwrap();
                path
            })
            .collect();
        Fixture { samples, partition, ckpts, reference }
    })
}

/// A fresh K=2, N-replica registry loaded from the fixture checkpoints
/// (each slot independently loaded; promotions reload from `source`).
fn make_registry(replication: usize) -> Arc<ModelRegistry> {
    let f = fixture();
    let factories = (0..f.partition.num_partitions())
        .map(|k| {
            let graph = f.partition.partition(k).graph().clone();
            let fac: Box<dyn Fn() -> AnyModel + Send + Sync> =
                Box::new(move || AnyModel::Gcwc(GcwcModel::new(&graph, 8, model_config(), 0)));
            fac
        })
        .collect();
    let registry =
        Arc::new(ModelRegistry::sharded_replicated(factories, &f.partition, replication));
    for (k, ckpt) in f.ckpts.iter().enumerate() {
        registry.load_shard(k, ckpt).unwrap();
    }
    registry
}

fn bits(m: &Matrix) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn disarm_all() {
    gcwc_failpoint::remove(failsite::REPLICA_PROMOTE);
    for k in 0..2 {
        gcwc_failpoint::remove(&failsite::shard_forward(k));
    }
    // Initial ordinals are shard-major (K=2 × N=2 → 0..4); promotions
    // draw fresh ones, so sweep a generous range.
    for ordinal in 0..32 {
        gcwc_failpoint::remove(&failsite::replica_forward(ordinal));
    }
}

/// Disarms every site when dropped, so an assertion failure can never
/// leak an armed site into the next test.
struct DisarmOnDrop;

impl Drop for DisarmOnDrop {
    fn drop(&mut self) {
        disarm_all();
    }
}

fn breaker_cfg() -> BreakerConfig {
    // Threshold 1: the first failed attempt trips the replica's
    // breaker (and, with a group behind it, triggers promotion).
    // The long cooldown keeps a tripped slot out of routing for the
    // whole test, so behavior is deterministic.
    BreakerConfig { failure_threshold: 1, cooldown: Duration::from_secs(3600) }
}

/// One replica of each shard's group is killed persistently (by
/// ordinal): every request fails over to the survivor, every response
/// stays exact and bit-identical to the healthy baseline, and the
/// tripped slots are promoted under fresh ordinals.
#[test]
fn killed_replica_fails_over_bit_exactly_with_zero_degraded() {
    let _guard = fail_lock();
    let _disarm = DisarmOnDrop;
    disarm_all();
    let f = fixture();
    let engine = Engine::new(
        make_registry(2),
        EngineConfig {
            workers: 0,
            cache_capacity: 0,
            breaker: breaker_cfg(),
            ..Default::default()
        },
    );
    let mut client = engine.client();

    // Kill one slot of each shard's group: shard 0's slot 1 (ordinal
    // 1) and shard 1's slot 0 (ordinal 2).
    gcwc_failpoint::configure(&failsite::replica_forward(1), "err").unwrap();
    gcwc_failpoint::configure(&failsite::replica_forward(2), "err").unwrap();

    for round in 0..2 {
        for (i, want) in f.reference.iter().enumerate() {
            let s = &f.samples[i];
            let mut input = client.input_buffer();
            input.copy_from(&s.input);
            client.send(input, s.context.time_of_day, s.context.day_of_week).unwrap();
            engine.process_queued();
            let completion = client.recv().unwrap();
            assert!(!completion.degraded, "round {round} request {i} must stay exact");
            assert_eq!(bits(want), bits(&completion.output), "round {round} request {i}");
            client.recycle(completion);
        }
    }
    let stats = engine.stats();
    assert_eq!(stats.degraded_responses, 0, "stats: {stats:?}");
    assert_eq!(stats.replicas, 2, "stats: {stats:?}");
    assert!(stats.replica_failovers >= 1, "stats: {stats:?}");
    assert!(stats.replica_promotions >= 1, "stats: {stats:?}");
    // Promotion re-armed the slots under fresh ordinals, so neither
    // shard is left with its whole group open.
    assert!(!engine.shard_breaker_open(0));
    assert!(!engine.shard_breaker_open(1));
    engine.shutdown();
}

/// Every replica of every group killed: the batch exhausts the groups,
/// promotions succeed (reload from the checkpoint source under fresh
/// ordinals the armed sites do not match), and the request answers the
/// typed retryable `ReplicaFailingOver` — then an *unretried* re-send
/// succeeds bit-exactly on the promoted incarnations.
#[test]
fn exhausted_group_answers_typed_failing_over_and_resend_succeeds() {
    let _guard = fail_lock();
    let _disarm = DisarmOnDrop;
    disarm_all();
    let f = fixture();
    let engine = Engine::new(
        make_registry(2),
        EngineConfig {
            workers: 0,
            cache_capacity: 0,
            breaker: breaker_cfg(),
            ..Default::default()
        },
    );
    let mut client = engine.client();
    // Shard 0's whole group (ordinals 0 and 1); shard 1 stays healthy.
    for ordinal in 0..2 {
        gcwc_failpoint::configure(&failsite::replica_forward(ordinal), "err").unwrap();
    }

    let s = &f.samples[0];
    let mut input = client.input_buffer();
    input.copy_from(&s.input);
    client.send(input, s.context.time_of_day, s.context.day_of_week).unwrap();
    engine.process_queued();
    match client.recv() {
        Err(e @ ServeError::ReplicaFailingOver) => assert_eq!(e.code(), "failing_over"),
        Err(other) => panic!("expected ReplicaFailingOver, got error: {other}"),
        Ok(_) => panic!("exhausted-but-promoted group must not answer a completion"),
    }
    assert!(engine.stats().replica_promotions >= 2, "stats: {:?}", engine.stats());

    // The promoted incarnations carry fresh ordinals no armed site
    // names — the plain re-send lands on them and serves exactly.
    let mut input = client.input_buffer();
    input.copy_from(&s.input);
    client.send(input, s.context.time_of_day, s.context.day_of_week).unwrap();
    engine.process_queued();
    let completion = client.recv().unwrap();
    assert!(!completion.degraded);
    assert_eq!(bits(&f.reference[0]), bits(&completion.output));
    client.recycle(completion);
    assert_eq!(engine.stats().degraded_responses, 0);
    engine.shutdown();
}

/// The client-side regression the wire contract promises: with a
/// `RetryPolicy` installed, a request that lands mid-failover (typed
/// `ReplicaFailingOver`) is retried automatically and eventually
/// succeeds bit-exactly — the caller never sees the transient.
#[test]
fn bounded_retry_rides_through_a_failover_bit_exactly() {
    let _guard = fail_lock();
    let _disarm = DisarmOnDrop;
    disarm_all();
    let f = fixture();
    let engine = Engine::new(
        make_registry(2),
        EngineConfig {
            workers: 1,
            cache_capacity: 0,
            breaker: breaker_cfg(),
            ..Default::default()
        },
    );
    let mut client = engine.client();
    client.set_retry_policy(Some(RetryPolicy::default()));
    for ordinal in 0..4 {
        gcwc_failpoint::configure(&failsite::replica_forward(ordinal), "err").unwrap();
    }

    let s = &f.samples[1];
    let mut input = client.input_buffer();
    input.copy_from(&s.input);
    let completion = client
        .complete(input, s.context.time_of_day, s.context.day_of_week)
        .expect("retry must ride through the failover");
    assert!(!completion.degraded);
    assert_eq!(bits(&f.reference[1]), bits(&completion.output));
    client.recycle(completion);

    let stats = engine.stats();
    assert!(stats.retries >= 1, "stats: {stats:?}");
    assert!(stats.replica_promotions >= 1, "stats: {stats:?}");
    assert_eq!(stats.degraded_responses, 0, "stats: {stats:?}");
    engine.shutdown();
}

/// With the promotion failpoint armed too, an exhausted group has no
/// fresh incarnation to offer: the shard degrades exactly like an
/// unreplicated tripped shard (prior-filled owned rows, healthy shard
/// bit-identical), and no promotion is counted.
#[test]
fn failed_promotion_falls_back_to_degraded_serving() {
    let _guard = fail_lock();
    let _disarm = DisarmOnDrop;
    disarm_all();
    let f = fixture();
    let engine = Engine::new(
        make_registry(2),
        EngineConfig {
            workers: 0,
            cache_capacity: 0,
            breaker: breaker_cfg(),
            ..Default::default()
        },
    );
    let mut client = engine.client();
    gcwc_failpoint::configure(failsite::REPLICA_PROMOTE, "err").unwrap();
    // Kill shard 1's whole group (ordinals 2 and 3); shard 0 is
    // healthy throughout.
    gcwc_failpoint::configure(&failsite::replica_forward(2), "err").unwrap();
    gcwc_failpoint::configure(&failsite::replica_forward(3), "err").unwrap();

    let s = &f.samples[1];
    let want = &f.reference[1];
    let mut input = client.input_buffer();
    input.copy_from(&s.input);
    client.send(input, s.context.time_of_day, s.context.day_of_week).unwrap();
    engine.process_queued();
    let completion = client.recv().unwrap();
    assert!(completion.degraded, "no promotion and no survivor → degraded");
    let prior = 1.0 / 8.0;
    for &g in f.partition.partition(0).view().owned() {
        assert_eq!(
            bits(&Matrix::from_fn(1, 8, |_, c| want[(g, c)])),
            bits(&Matrix::from_fn(1, 8, |_, c| completion.output[(g, c)])),
            "healthy shard row {g} must stay exact"
        );
    }
    for &g in f.partition.partition(1).view().owned() {
        for c in 0..8 {
            assert_eq!(completion.output[(g, c)], prior, "row {g} col {c}");
        }
    }
    client.recycle(completion);
    let stats = engine.stats();
    assert_eq!(stats.replica_promotions, 0, "stats: {stats:?}");
    assert_eq!(stats.degraded_responses, 1, "stats: {stats:?}");
    assert!(engine.shard_breaker_open(1), "whole group open → shard degraded");
    engine.shutdown();
}
