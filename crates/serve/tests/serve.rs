//! End-to-end tests of the serving stack: batched responses must be
//! bit-identical to direct single-request inference, the cache must
//! stay correct under eviction, bad checkpoints must be rejected, and
//! shutdown must drain in-flight requests.

use gcwc::CompletionModel;
use gcwc::{build_samples, AGcwcModel, InferWorkspace, ModelConfig, TaskKind, TrainSample};
use gcwc_linalg::Matrix;
use gcwc_serve::{
    derive_row_flags, AnyModel, Engine, EngineConfig, ModelRegistry, ServeError, Server,
    ServerConfig, TcpClient,
};
use gcwc_traffic::{generators, simulate, HistogramSpec, SimConfig};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

struct Fixture {
    hw: gcwc_traffic::NetworkInstance,
    samples: Vec<TrainSample>,
    ckpt: PathBuf,
    model: AGcwcModel,
}

fn model_config() -> ModelConfig {
    ModelConfig::hw_hist().with_epochs(2)
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let hw = generators::highway_tollgate(1);
        let sim = SimConfig {
            days: 2,
            intervals_per_day: 16,
            records_per_interval: 10.0,
            ..Default::default()
        };
        let data = simulate(&hw, HistogramSpec::hist8(), &sim);
        let ds = data.to_dataset(0.5, 5, 11);
        let idx: Vec<usize> = (0..ds.len()).collect();
        let samples = build_samples(&ds, &idx, TaskKind::Estimation, 0);
        let mut model = AGcwcModel::new(&hw.graph, 8, 16, model_config(), 42);
        model.fit(&samples[..8]);
        let dir = std::env::temp_dir().join("gcwc_serve_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("agcwc_fixture.ckpt");
        model.save(&ckpt).unwrap();
        Fixture { hw, samples, ckpt, model }
    })
}

fn make_registry() -> Arc<ModelRegistry> {
    let registry = Arc::new(ModelRegistry::new(Box::new(|| {
        AnyModel::AGcwc(AGcwcModel::new(&fixture().hw.graph, 8, 16, model_config(), 0))
    })));
    registry.load(&fixture().ckpt).unwrap();
    registry
}

/// What the engine must reproduce: a direct tape-free single pass with
/// the server's own flag derivation.
fn direct_completion(input: &Matrix, time_of_day: usize, day_of_week: usize) -> Matrix {
    let mut flags = Vec::new();
    derive_row_flags(input, &mut flags);
    let mut ws = InferWorkspace::new();
    fixture().model.infer(&mut ws, input, time_of_day, day_of_week, &flags)
}

fn bits(m: &Matrix) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Starts a server with the text debug port enabled (on an ephemeral
/// port) and returns it with the text address.
fn start_with_text(engine: &Arc<Engine>) -> (Server, std::net::SocketAddr) {
    let server = Server::start_with(
        Arc::clone(engine),
        "127.0.0.1:0",
        ServerConfig { text_port: Some(0), ..Default::default() },
    )
    .unwrap();
    let text = server.text_addr().expect("text port requested");
    (server, text)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A coalesced batch of B requests answers every request with the
    /// exact bits a lone request would have produced.
    #[test]
    fn batched_responses_match_single_requests(picks in collection::vec(0usize..12, 1..7)) {
        let f = fixture();
        let engine = Engine::new(
            make_registry(),
            EngineConfig { workers: 0, max_batch: 8, cache_capacity: 0, ..Default::default() },
        );
        let mut clients: Vec<_> = picks.iter().map(|_| engine.client()).collect();
        for (client, &p) in clients.iter_mut().zip(&picks) {
            let s = &f.samples[p];
            let mut input = client.input_buffer();
            input.copy_from(&s.input);
            client.send(input, s.context.time_of_day, s.context.day_of_week).unwrap();
        }
        engine.process_queued();
        for (client, &p) in clients.iter_mut().zip(&picks) {
            let s = &f.samples[p];
            let completion = client.recv().unwrap();
            let expected = direct_completion(&s.input, s.context.time_of_day, s.context.day_of_week);
            prop_assert_eq!(bits(&expected), bits(&completion.output));
            client.recycle(completion);
        }
        engine.shutdown();
    }
}

#[test]
fn responses_match_tape_predict_bitwise() {
    // The serving path composes infer + cache + batching; anchor it all
    // the way back to the tape forward used during training.
    let f = fixture();
    let engine = Engine::new(make_registry(), EngineConfig { workers: 0, ..Default::default() });
    let mut client = engine.client();
    let s = &f.samples[2];
    let mut input = client.input_buffer();
    input.copy_from(&s.input);
    client.send(input, s.context.time_of_day, s.context.day_of_week).unwrap();
    engine.process_queued();
    let completion = client.recv().unwrap();
    // predict() uses the sample's own row flags; they agree with the
    // derived ones because covered histogram rows carry mass.
    assert_eq!(bits(&f.model.predict(s)), bits(&completion.output));
    engine.shutdown();
}

#[test]
fn cache_stays_correct_under_eviction() {
    let f = fixture();
    let engine = Engine::new(
        make_registry(),
        EngineConfig { workers: 0, max_batch: 1, cache_capacity: 2, ..Default::default() },
    );
    let mut client = engine.client();
    let ask = |client: &mut gcwc_serve::Client, p: usize| {
        let s = &f.samples[p];
        let mut input = client.input_buffer();
        input.copy_from(&s.input);
        client.send(input, s.context.time_of_day, s.context.day_of_week).unwrap();
        engine.process_queued();
        let completion = client.recv().unwrap();
        let out = (bits(&completion.output), completion.cache_hit);
        client.recycle(completion);
        out
    };
    let (first, hit0) = ask(&mut client, 0);
    assert!(!hit0, "cold request must miss");
    let (again, hit1) = ask(&mut client, 0);
    assert!(hit1, "repeat must hit");
    assert_eq!(first, again, "cache must return the exact bits");
    // Fill past capacity 2 → sample 0 is evicted.
    ask(&mut client, 1);
    ask(&mut client, 2);
    let (after_evict, hit2) = ask(&mut client, 0);
    assert!(!hit2, "evicted entry must miss");
    assert_eq!(first, after_evict, "recomputation must be bit-identical");
    let stats = engine.stats();
    assert!(stats.cache_hits >= 1, "stats: {stats:?}");
    assert!(stats.cache_evictions >= 1, "stats: {stats:?}");
    engine.shutdown();
}

#[test]
fn corrupt_and_mismatched_checkpoints_are_rejected() {
    let f = fixture();
    let registry = make_registry();
    let generation_before = registry.generation();
    let dir = std::env::temp_dir().join("gcwc_serve_tests");

    // Truncated: drop the tail of the file.
    let full = std::fs::read_to_string(&f.ckpt).unwrap();
    let truncated_path = dir.join("truncated.ckpt");
    std::fs::write(&truncated_path, &full[..full.len() / 2]).unwrap();
    assert!(matches!(registry.load(&truncated_path), Err(ServeError::Checkpoint(_))));

    // Corrupted: break a hex token.
    let corrupt_path = dir.join("corrupt.ckpt");
    std::fs::write(&corrupt_path, full.replacen("3f", "zz", 1)).unwrap();
    assert!(matches!(registry.load(&corrupt_path), Err(ServeError::Checkpoint(_))));

    // Wrong architecture: a GCWC checkpoint offered to an A-GCWC registry.
    let gcwc_path = dir.join("wrong_arch.ckpt");
    let gcwc = gcwc::GcwcModel::new(&f.hw.graph, 8, model_config(), 1);
    gcwc.save(&gcwc_path).unwrap();
    match registry.load(&gcwc_path) {
        Err(ServeError::Checkpoint(gcwc_nn::PersistError::Mismatch(msg))) => {
            assert!(msg.contains("agcwc") || msg.contains("gcwc"), "message: {msg}");
        }
        other => panic!("expected Mismatch, got {:?}", other.map(|_| ())),
    }

    // Every failure left the serving snapshot untouched.
    assert_eq!(registry.generation(), generation_before);
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let f = fixture();
    let engine = Engine::new(
        make_registry(),
        EngineConfig { workers: 1, max_batch: 4, ..Default::default() },
    );
    let mut clients: Vec<_> = (0..8).map(|_| engine.client()).collect();
    for (k, client) in clients.iter_mut().enumerate() {
        let s = &f.samples[k % 4];
        let mut input = client.input_buffer();
        input.copy_from(&s.input);
        client.send(input, s.context.time_of_day, s.context.day_of_week).unwrap();
    }
    engine.shutdown(); // must serve all 8, not drop them
    for (k, client) in clients.iter_mut().enumerate() {
        let s = &f.samples[k % 4];
        let completion = client.recv().expect("queued request must be served");
        let expected = direct_completion(&s.input, s.context.time_of_day, s.context.day_of_week);
        assert_eq!(bits(&expected), bits(&completion.output));
    }
    assert_eq!(engine.stats().completed, 8);

    // After shutdown, new sends are refused.
    let mut late = engine.client();
    let input = late.input_buffer();
    assert!(matches!(late.send(input, 0, 0), Err(ServeError::ShuttingDown)));
}

#[test]
fn expired_deadline_is_reported() {
    let f = fixture();
    let engine = Engine::new(make_registry(), EngineConfig { workers: 0, ..Default::default() });
    let mut client = engine.client();
    let s = &f.samples[0];
    let mut input = client.input_buffer();
    input.copy_from(&s.input);
    client
        .send_with_deadline(
            input,
            s.context.time_of_day,
            s.context.day_of_week,
            Some(Instant::now() + Duration::from_millis(2)),
        )
        .unwrap();
    std::thread::sleep(Duration::from_millis(20));
    engine.process_queued();
    assert!(matches!(client.recv(), Err(ServeError::DeadlineExceeded)));
    assert_eq!(engine.stats().expired, 1);
    engine.shutdown();
}

#[test]
fn full_queue_applies_backpressure() {
    let f = fixture();
    let engine = Engine::new(
        make_registry(),
        EngineConfig { workers: 0, queue_capacity: 2, ..Default::default() },
    );
    let mut clients: Vec<_> = (0..3).map(|_| engine.client()).collect();
    let s = &f.samples[0];
    for client in &mut clients[..2] {
        let mut input = client.input_buffer();
        input.copy_from(&s.input);
        client.send(input, s.context.time_of_day, s.context.day_of_week).unwrap();
    }
    let mut input = clients[2].input_buffer();
    input.copy_from(&s.input);
    assert!(matches!(
        clients[2].send(input, s.context.time_of_day, s.context.day_of_week),
        Err(ServeError::Overloaded)
    ));
    engine.process_queued();
    for client in &mut clients[..2] {
        client.recv().unwrap();
    }
    assert_eq!(engine.stats().rejected, 1);
    engine.shutdown();
}

#[test]
fn malformed_requests_get_bad_request() {
    let engine = Engine::new(make_registry(), EngineConfig { workers: 0, ..Default::default() });
    let mut client = engine.client();
    client.send(Matrix::zeros(3, 3), 0, 0).unwrap(); // wrong shape
    engine.process_queued();
    assert!(matches!(client.recv(), Err(ServeError::BadRequest(_))));
    engine.shutdown();
}

#[test]
fn tcp_end_to_end_matches_direct_inference() {
    let f = fixture();
    let engine = Arc::new(Engine::new(make_registry(), EngineConfig::default()));
    let (mut server, text_addr) = start_with_text(&engine);
    let mut tcp = TcpClient::connect(text_addr).unwrap();
    assert!(tcp.ping().unwrap());

    let s = &f.samples[1];
    let expected = direct_completion(&s.input, s.context.time_of_day, s.context.day_of_week);
    let first = tcp.complete(&s.input, s.context.time_of_day, s.context.day_of_week).unwrap();
    assert_eq!(bits(&expected), bits(&first.output), "wire transfer must be bit-exact");
    assert!(!first.cache_hit);
    let second = tcp.complete(&s.input, s.context.time_of_day, s.context.day_of_week).unwrap();
    assert!(second.cache_hit, "repeat request must be served from cache");
    assert_eq!(bits(&expected), bits(&second.output));

    let stats_line = tcp.stats().unwrap();
    assert!(stats_line.starts_with("stats "), "got {stats_line:?}");
    tcp.quit().unwrap();
    server.stop();
    engine.shutdown();
}

#[test]
fn hot_swap_invalidates_cached_completions() {
    let f = fixture();
    let registry = make_registry();
    let engine =
        Engine::new(Arc::clone(&registry), EngineConfig { workers: 0, ..Default::default() });
    let mut client = engine.client();
    let s = &f.samples[3];

    let mut input = client.input_buffer();
    input.copy_from(&s.input);
    client.send(input, s.context.time_of_day, s.context.day_of_week).unwrap();
    engine.process_queued();
    let first = client.recv().unwrap();
    assert!(!first.cache_hit);
    let old_generation = first.generation;
    client.recycle(first);

    // Swap in a differently-trained model; the repeat request must be
    // recomputed by it, not served from the old model's cache entry.
    let mut swapped = AGcwcModel::new(&f.hw.graph, 8, 16, model_config(), 7);
    swapped.fit(&f.samples[..4]);
    let mut flags = Vec::new();
    derive_row_flags(&s.input, &mut flags);
    let mut ws = InferWorkspace::new();
    let expected =
        swapped.infer(&mut ws, &s.input, s.context.time_of_day, s.context.day_of_week, &flags);
    let new_generation = registry.install(AnyModel::AGcwc(swapped));
    assert!(new_generation > old_generation);

    let mut input = client.input_buffer();
    input.copy_from(&s.input);
    client.send(input, s.context.time_of_day, s.context.day_of_week).unwrap();
    engine.process_queued();
    let after = client.recv().unwrap();
    assert!(!after.cache_hit, "hot-swap must invalidate cached completions");
    assert_eq!(after.generation, new_generation);
    assert_eq!(
        bits(&expected),
        bits(&after.output),
        "post-swap completion must come from the new model"
    );
    engine.shutdown();
}

#[test]
fn fragmented_tcp_request_survives_read_timeouts() {
    use std::io::{BufRead, BufReader, Write};

    let f = fixture();
    let engine = Arc::new(Engine::new(make_registry(), EngineConfig::default()));
    let (mut server, text_addr) = start_with_text(&engine);

    let s = &f.samples[0];
    let expected = direct_completion(&s.input, s.context.time_of_day, s.context.day_of_week);
    let mut request = format!(
        "complete {} {} {} {}",
        s.context.time_of_day,
        s.context.day_of_week,
        s.input.rows(),
        s.input.cols()
    );
    gcwc_serve::protocol::write_matrix_hex(&mut request, &s.input);
    request.push('\n');

    // Deliver the line in two chunks separated by a long pause: the
    // reactor must buffer the partial line across readiness events
    // instead of discarding it.
    let stream = std::net::TcpStream::connect(text_addr).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let bytes = request.as_bytes();
    let split = bytes.len() / 2;
    writer.write_all(&bytes[..split]).unwrap();
    writer.flush().unwrap();
    std::thread::sleep(Duration::from_millis(200));
    writer.write_all(&bytes[split..]).unwrap();
    writer.flush().unwrap();

    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).unwrap();
    let response = gcwc_serve::protocol::parse_complete_response(line.trim_end()).unwrap();
    assert_eq!(
        bits(&expected),
        bits(&response.output),
        "fragmented request must parse and answer exactly"
    );

    server.stop();
    engine.shutdown();
}

#[test]
fn malformed_bytes_get_an_err_reply_and_the_session_survives() {
    use std::io::{BufRead, BufReader, Write};
    let engine = Arc::new(Engine::new(make_registry(), EngineConfig::default()));
    let (mut server, text_addr) = start_with_text(&engine);

    let stream = std::net::TcpStream::connect(text_addr).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();

    // A line of invalid UTF-8 cannot be a protocol request: the server
    // must say why instead of silently dropping the connection.
    writer.write_all(&[0xff, 0xfe, 0x80, 0x41, b'\n']).unwrap();
    writer.flush().unwrap();
    reader.read_line(&mut reply).unwrap();
    assert_eq!(reply.trim_end(), "err protocol request is not valid utf-8");

    // The malformed bytes were consumed, so the same session still
    // serves well-formed requests afterwards.
    writer.write_all(b"ping\n").unwrap();
    writer.flush().unwrap();
    reply.clear();
    reader.read_line(&mut reply).unwrap();
    assert_eq!(reply.trim_end(), "pong");

    server.stop();
    engine.shutdown();
}
