//! Chaos tests: fault injection through `gcwc-failpoint` against the
//! serving stack. Only compiled with `--features failpoints`.
//!
//! Covered here: a worker killed mid-dispatch answers its in-flight
//! request `ShardRestarting`, is restarted by its supervisor, and the
//! client's bounded retry succeeds; a shard whose forward pass keeps
//! failing trips its circuit breaker and is served degraded (prior
//! rows, healthy shards bit-identical) until a half-open probe closes
//! the breaker again; and a property test drives randomized failpoint
//! schedules through the engine asserting every request terminates
//! with a completion (exact or degraded) or a typed error — never a
//! hang, never corrupt healthy rows.
//!
//! The binary front end is covered too: reactor-tick faults (dropped
//! event batches, injected stalls) must delay but never hang or
//! corrupt pipelined binary requests, a connection-read fault must
//! surface as a typed I/O error with a clean reconnect, and with
//! every front-end site unarmed the binary protocol must serve
//! bit-identically to the reference.
//!
//! The failpoint registry is process-global, so every test serialises
//! on [`chaos_lock`] and disarms its sites before releasing it.

#![cfg(feature = "failpoints")]

use gcwc::{build_samples, GcwcModel, ModelConfig, ShardedModel, TaskKind, TrainSample};
use gcwc_graph::PartitionSet;
use gcwc_linalg::Matrix;
use gcwc_serve::{
    failsite, AnyModel, BinClient, BreakerConfig, Engine, EngineConfig, ModelRegistry, QuotaConfig,
    RetryPolicy, ServeError, Server, ServerConfig, TenantId, TenantRegistry,
};
use gcwc_traffic::{generators, simulate, HistogramSpec, SimConfig};
use proptest::prelude::*;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

fn chaos_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn model_config() -> ModelConfig {
    ModelConfig::hw_hist().with_epochs(2)
}

struct Fixture {
    samples: Vec<TrainSample>,
    partition: Arc<PartitionSet>,
    ckpts: Vec<std::path::PathBuf>,
    /// `predict_global` of the trained sharded model on `samples[..4]`.
    reference: Vec<Matrix>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let hw = generators::highway_tollgate(1);
        let sim = SimConfig {
            days: 2,
            intervals_per_day: 16,
            records_per_interval: 10.0,
            ..Default::default()
        };
        let data = simulate(&hw, HistogramSpec::hist8(), &sim);
        let ds = data.to_dataset(0.5, 5, 11);
        let idx: Vec<usize> = (0..ds.len()).collect();
        let samples = build_samples(&ds, &idx, TaskKind::Estimation, 0);
        let partition = Arc::new(PartitionSet::build(&hw.graph, 2));
        let mut sharded = ShardedModel::gcwc_on(Arc::clone(&partition), 8, model_config(), 42);
        sharded.fit_shards(&samples[..8]);
        let reference = samples[..4].iter().map(|s| sharded.predict_global(s)).collect();
        let dir = std::env::temp_dir().join("gcwc_serve_chaos");
        std::fs::create_dir_all(&dir).unwrap();
        let (_, shards) = sharded.into_shards();
        let ckpts: Vec<_> = shards
            .iter()
            .enumerate()
            .map(|(k, shard)| {
                let path = dir.join(format!("chaos.shard{k}.ckpt"));
                shard.save(&path).unwrap();
                path
            })
            .collect();
        Fixture { samples, partition, ckpts, reference }
    })
}

/// A fresh K=2 registry loaded with the fixture's trained shards.
fn make_registry() -> Arc<ModelRegistry> {
    make_replicated_registry(1)
}

/// Like [`make_registry`] with an N-replica group behind each shard,
/// every slot independently loaded from the fixture checkpoints (so
/// promotions reload from `source`).
fn make_replicated_registry(replication: usize) -> Arc<ModelRegistry> {
    let f = fixture();
    let factories = (0..f.partition.num_partitions())
        .map(|k| {
            let graph = f.partition.partition(k).graph().clone();
            let fac: Box<dyn Fn() -> AnyModel + Send + Sync> =
                Box::new(move || AnyModel::Gcwc(GcwcModel::new(&graph, 8, model_config(), 0)));
            fac
        })
        .collect();
    let registry =
        Arc::new(ModelRegistry::sharded_replicated(factories, &f.partition, replication));
    for (k, ckpt) in f.ckpts.iter().enumerate() {
        registry.load_shard(k, ckpt).unwrap();
    }
    registry
}

fn bits(m: &Matrix) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn disarm_all() {
    gcwc_failpoint::remove(failsite::WORKER_LOOP);
    gcwc_failpoint::remove(failsite::REACTOR_TICK);
    gcwc_failpoint::remove(failsite::CONN_READ);
    gcwc_failpoint::remove(failsite::ACCEPT);
    gcwc_failpoint::remove(failsite::WRITE);
    gcwc_failpoint::remove(failsite::TENANT_QUOTA);
    gcwc_failpoint::remove(failsite::REPLICA_PROMOTE);
    for k in 0..2 {
        gcwc_failpoint::remove(&failsite::shard_forward(k));
        for t in 1..=2 {
            gcwc_failpoint::remove(&failsite::tenant_shard_forward(t, k));
        }
    }
    // Replica kill sites are keyed by ordinal; initial K=2 × N=2 groups
    // take 0..4 and promotions draw fresh ordinals, so sweep a
    // generous range.
    for ordinal in 0..32 {
        gcwc_failpoint::remove(&failsite::replica_forward(ordinal));
    }
}

/// Disarms every chaos site when dropped, so an assertion failure (an
/// early return out of a test body) can never leak an armed site into
/// the next test.
struct DisarmOnDrop;

impl Drop for DisarmOnDrop {
    fn drop(&mut self) {
        disarm_all();
    }
}

#[test]
fn worker_death_answers_in_flight_and_bounded_retry_succeeds() {
    let _guard = chaos_lock();
    let _disarm = DisarmOnDrop;
    disarm_all();
    let f = fixture();
    let engine = Engine::new(make_registry(), EngineConfig { workers: 1, ..Default::default() });
    let mut client = engine.client();
    client.set_retry_policy(Some(RetryPolicy::default()));

    // The worker panics between dequeue and service exactly once: the
    // in-flight job answers `ShardRestarting` through its Drop guard,
    // the supervisor restarts the loop, and the client's retry lands
    // on the recovered worker.
    gcwc_failpoint::configure(failsite::WORKER_LOOP, "1*panic->off").unwrap();
    let s = &f.samples[0];
    let mut input = client.input_buffer();
    input.copy_from(&s.input);
    let result = client.complete(input, s.context.time_of_day, s.context.day_of_week);
    disarm_all();

    let completion = result.expect("retry must succeed after the worker restart");
    assert!(!completion.degraded);
    assert_eq!(bits(&f.reference[0]), bits(&completion.output));
    client.recycle(completion);

    let stats = engine.stats();
    assert!(stats.worker_restarts >= 1, "stats: {stats:?}");
    assert!(stats.retries >= 1, "stats: {stats:?}");
    engine.shutdown();
}

#[test]
fn failing_shard_degrades_trips_breaker_and_recovers_via_probe() {
    let _guard = chaos_lock();
    let _disarm = DisarmOnDrop;
    disarm_all();
    let f = fixture();
    let engine = Engine::new(
        make_registry(),
        EngineConfig {
            workers: 0,
            cache_capacity: 0,
            breaker: BreakerConfig { failure_threshold: 2, cooldown: Duration::from_millis(50) },
            ..Default::default()
        },
    );
    let mut client = engine.client();
    let s = &f.samples[1];
    let want = &f.reference[1];
    let ask = |client: &mut gcwc_serve::Client| {
        let mut input = client.input_buffer();
        input.copy_from(&s.input);
        client.send(input, s.context.time_of_day, s.context.day_of_week).unwrap();
        engine.process_queued();
        client.recv().unwrap()
    };

    // Shard 1's forward pass fails persistently.
    let site1 = failsite::shard_forward(1);
    gcwc_failpoint::configure(&site1, "err").unwrap();

    // Two failures reach the threshold; each response is degraded but
    // shard 0's owned rows stay bit-identical and shard 1's owned rows
    // carry the uniform histogram prior.
    let prior = 1.0 / 8.0;
    for round in 0..2 {
        let completion = ask(&mut client);
        assert!(completion.degraded, "round {round} must be degraded");
        for &g in f.partition.partition(0).view().owned() {
            assert_eq!(
                bits(&Matrix::from_fn(1, 8, |_, c| want[(g, c)])),
                bits(&Matrix::from_fn(1, 8, |_, c| completion.output[(g, c)])),
                "healthy shard row {g} must be exact in round {round}"
            );
        }
        for &g in f.partition.partition(1).view().owned() {
            for c in 0..8 {
                assert_eq!(completion.output[(g, c)], prior, "row {g} col {c}");
            }
        }
        client.recycle(completion);
    }
    assert!(engine.shard_breaker_open(1), "threshold reached → breaker open");
    assert!(engine.stats().breaker_open >= 1);

    // While open, requests degrade without attempting the forward.
    let batches_before = engine.stats().batches;
    let completion = ask(&mut client);
    assert!(completion.degraded);
    client.recycle(completion);
    // Only shard 0's forward ran for that request.
    assert_eq!(engine.stats().batches, batches_before + 1);

    // Heal the shard and wait out the cooldown: the next request is
    // admitted as the half-open probe, succeeds, and closes the
    // breaker — the response is exact again.
    disarm_all();
    std::thread::sleep(Duration::from_millis(60));
    let healed = ask(&mut client);
    assert!(!healed.degraded, "post-probe response must be exact");
    assert_eq!(bits(want), bits(&healed.output));
    assert!(!engine.shard_breaker_open(1));
    client.recycle(healed);

    assert_eq!(engine.stats().degraded_responses, 3);
    engine.shutdown();
}

#[test]
fn open_breaker_never_caches_prior_rows() {
    let _guard = chaos_lock();
    let _disarm = DisarmOnDrop;
    disarm_all();
    let f = fixture();
    let engine = Engine::new(
        make_registry(),
        EngineConfig {
            workers: 0,
            cache_capacity: 64,
            breaker: BreakerConfig { failure_threshold: 1, cooldown: Duration::from_millis(20) },
            ..Default::default()
        },
    );
    let mut client = engine.client();
    let s = &f.samples[2];
    let ask = |client: &mut gcwc_serve::Client| {
        let mut input = client.input_buffer();
        input.copy_from(&s.input);
        client.send(input, s.context.time_of_day, s.context.day_of_week).unwrap();
        engine.process_queued();
        client.recv().unwrap()
    };

    let site1 = failsite::shard_forward(1);
    gcwc_failpoint::configure(&site1, "err").unwrap();
    let degraded = ask(&mut client);
    assert!(degraded.degraded);
    client.recycle(degraded);
    disarm_all();
    std::thread::sleep(Duration::from_millis(30));

    // The degraded rows were never cached: after the probe heals the
    // shard, the same request recomputes shard 1 and returns the exact
    // completion (shard 0's rows may come from its cache — they were
    // computed exactly and are bit-identical either way).
    let healed = ask(&mut client);
    assert!(!healed.degraded);
    assert_eq!(bits(&f.reference[2]), bits(&healed.output));
    client.recycle(healed);
    engine.shutdown();
}

/// One randomized chaos schedule: which site, which spec, how many
/// requests to push through it.
#[derive(Clone, Debug)]
struct Schedule {
    site: usize,
    spec: &'static str,
    requests: usize,
}

const SPECS: [&str; 4] = ["1*panic->off", "2*err->off", "1*delay(5)->off", "50%err"];

fn schedules() -> impl Strategy<Value = Schedule> {
    (0usize..3, 0usize..SPECS.len(), 1usize..5).prop_map(|(site, spec, requests)| Schedule {
        site,
        spec: SPECS[spec],
        requests,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Under any armed schedule every request terminates promptly with
    /// a completion (exact or degraded) or a typed retryable error —
    /// and exact completions are bit-identical to the reference.
    #[test]
    fn chaos_schedules_never_hang_or_corrupt(schedule in schedules()) {
        let _guard = chaos_lock();
        let _disarm = DisarmOnDrop;
        disarm_all();
        let f = fixture();
        let engine = Engine::new(
            make_registry(),
            EngineConfig {
                workers: 1,
                cache_capacity: 0,
                breaker: BreakerConfig {
                    failure_threshold: 2,
                    cooldown: Duration::from_millis(10),
                },
                ..Default::default()
            },
        );
        let mut client = engine.client();
        client.set_retry_policy(Some(RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(5),
            jitter_seed: 7,
        }));

        let site = match schedule.site {
            0 => failsite::WORKER_LOOP.to_owned(),
            k => failsite::shard_forward(k - 1),
        };
        gcwc_failpoint::configure(&site, schedule.spec).unwrap();
        for r in 0..schedule.requests {
            let s = &f.samples[r % 4];
            let mut input = client.input_buffer();
            input.copy_from(&s.input);
            match client.complete(input, s.context.time_of_day, s.context.day_of_week) {
                Ok(completion) => {
                    if !completion.degraded {
                        prop_assert_eq!(
                            bits(&f.reference[r % 4]),
                            bits(&completion.output),
                            "exact completion diverged under {:?}", schedule
                        );
                    }
                    client.recycle(completion);
                }
                // Exhausted retries against a dying worker: typed, not
                // a hang, and the next request may still succeed.
                Err(ServeError::ShardRestarting | ServeError::Overloaded) => {}
                Err(e) => return Err(TestCaseError::fail(format!(
                    "unexpected error under {schedule:?}: {e}"
                ))),
            }
        }
        disarm_all();

        // After disarming, the engine always serves exactly again
        // (cooldowns are far shorter than the retry budget).
        std::thread::sleep(Duration::from_millis(15));
        let s = &f.samples[0];
        let mut input = client.input_buffer();
        input.copy_from(&s.input);
        let healed = client
            .complete(input, s.context.time_of_day, s.context.day_of_week)
            .expect("healed engine must serve");
        if !healed.degraded {
            prop_assert_eq!(bits(&f.reference[0]), bits(&healed.output));
        }
        client.recycle(healed);
        engine.shutdown();
    }
}

/// Reactor-tick faults (skipped event batches, injected delays) slow
/// the binary front end down but never hang it or corrupt a response:
/// level-triggered epoll re-delivers everything a skipped tick
/// dropped.
#[test]
fn reactor_tick_faults_never_hang_or_corrupt_the_binary_front_end() {
    let _guard = chaos_lock();
    let _disarm = DisarmOnDrop;
    disarm_all();
    let f = fixture();
    let engine = Arc::new(Engine::new(
        make_registry(),
        EngineConfig { workers: 1, cache_capacity: 0, ..Default::default() },
    ));
    let mut server =
        Server::start_with(Arc::clone(&engine), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = BinClient::connect(server.addr()).unwrap();

    // A mix of dropped ticks and injected stalls, bounded so the
    // reactor always recovers (an always-on err would spin, which is
    // exactly why ambient chaos arms this site probabilistically).
    gcwc_failpoint::configure(failsite::REACTOR_TICK, "4*err->2*delay(5)->off").unwrap();
    for (i, want) in f.reference.iter().enumerate() {
        let s = &f.samples[i];
        let resp = client
            .complete(&s.input, s.context.time_of_day, s.context.day_of_week)
            .expect("tick faults must delay, not fail, requests");
        assert!(!resp.degraded);
        assert_eq!(bits(want), bits(&resp.output), "request {i} under tick chaos");
    }
    disarm_all();
    server.stop();
    engine.shutdown();
}

/// A read fault tears the binary connection down mid-session: the
/// client observes a typed I/O error (EOF), never a hang — and a
/// reconnect serves bit-identically.
#[test]
fn conn_read_fault_closes_typed_and_reconnect_serves_exactly() {
    let _guard = chaos_lock();
    let _disarm = DisarmOnDrop;
    disarm_all();
    let f = fixture();
    let engine = Arc::new(Engine::new(
        make_registry(),
        EngineConfig { workers: 1, cache_capacity: 0, ..Default::default() },
    ));
    let mut server =
        Server::start_with(Arc::clone(&engine), "127.0.0.1:0", ServerConfig::default()).unwrap();

    // Connect while the site is quiet, then arm it: the very next
    // readable event on this connection kills it.
    let mut doomed = BinClient::connect(server.addr()).unwrap();
    assert!(doomed.ping().unwrap());
    gcwc_failpoint::configure(failsite::CONN_READ, "1*err->off").unwrap();
    let s = &f.samples[0];
    let torn = doomed.complete(&s.input, s.context.time_of_day, s.context.day_of_week);
    match torn {
        Err(ServeError::Io(_)) => {} // typed: the peer sees EOF/reset
        Err(other) => panic!("expected a typed I/O error from the torn connection, got {other}"),
        Ok(_) => panic!("expected a typed I/O error from the torn connection, got a response"),
    }
    disarm_all();

    let mut fresh = BinClient::connect(server.addr()).unwrap();
    let resp = fresh
        .complete(&s.input, s.context.time_of_day, s.context.day_of_week)
        .expect("reconnect must serve");
    assert!(!resp.degraded);
    assert_eq!(bits(&f.reference[0]), bits(&resp.output), "post-reconnect response");
    server.stop();
    engine.shutdown();
}

/// With failpoints compiled in but every front-end site unarmed, the
/// binary protocol serves bit-identically to the reference — the
/// chaos instrumentation itself is a no-op.
#[test]
fn unarmed_binary_front_end_serves_bit_identically() {
    let _guard = chaos_lock();
    let _disarm = DisarmOnDrop;
    disarm_all();
    let f = fixture();
    let engine = Arc::new(Engine::new(
        make_registry(),
        EngineConfig { workers: 1, cache_capacity: 0, ..Default::default() },
    ));
    let mut server =
        Server::start_with(Arc::clone(&engine), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = BinClient::connect(server.addr()).unwrap();
    for (i, want) in f.reference.iter().enumerate() {
        let s = &f.samples[i];
        let resp = client.complete(&s.input, s.context.time_of_day, s.context.day_of_week).unwrap();
        assert!(!resp.degraded);
        assert_eq!(bits(want), bits(&resp.output), "request {i}");
    }
    let stats = engine.stats();
    assert_eq!(stats.worker_restarts, 0, "stats: {stats:?}");
    assert_eq!(stats.degraded_responses, 0, "stats: {stats:?}");
    server.stop();
    engine.shutdown();
}

/// The multi-tenant isolation guarantee under chaos: with tenant A's
/// breakers forced open by its tenant-tagged forward failpoints AND
/// its quota exhausted (both organically and via the quota failpoint),
/// tenant B — sharing the same process, reactor, and listener — serves
/// every request bit-identical to its unarmed baseline with zero
/// degraded / retry / quota / breaker counters. Also pins the legacy
/// compatibility contract: with no default tenant registered,
/// tenant-less requests answer `unknown_tenant`.
#[test]
fn tenant_chaos_never_leaks_across_tenants() {
    let _guard = chaos_lock();
    let _disarm = DisarmOnDrop;
    disarm_all();
    let f = fixture();

    let tenants = Arc::new(TenantRegistry::new());
    let engine_cfg = EngineConfig {
        workers: 1,
        cache_capacity: 0,
        breaker: BreakerConfig { failure_threshold: 1, cooldown: Duration::from_secs(3600) },
        ..Default::default()
    };
    // Tenant A: hard burst budget of 2, no refill — deterministic
    // exhaustion. Tenant B: no quota at all.
    let a = TenantId(1);
    let b = TenantId(2);
    tenants.register(
        a,
        make_registry(),
        engine_cfg,
        Some(QuotaConfig { burst: 2, refill_per_sec: 0 }),
    );
    tenants.register(b, make_registry(), engine_cfg, None);
    let mut server =
        Server::start_tenants(&tenants, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = BinClient::connect(server.addr()).unwrap();

    // No default tenant: the legacy forms answer unknown_tenant, and
    // an unregistered tenant id answers it too.
    let s0 = &f.samples[0];
    match client.complete(&s0.input, s0.context.time_of_day, s0.context.day_of_week) {
        Err(ServeError::UnknownTenant(0)) => {}
        other => panic!("legacy complete without a default tenant: {other:?}"),
    }
    match client.tcomplete(99, &s0.input, s0.context.time_of_day, s0.context.day_of_week) {
        Err(ServeError::UnknownTenant(99)) => {}
        other => panic!("tcomplete for an unregistered tenant: {other:?}"),
    }

    // Unarmed baseline for tenant B: exact, bit-identical to the
    // fixture reference, graph generation 0.
    let baseline: Vec<Vec<u64>> = f
        .reference
        .iter()
        .enumerate()
        .map(|(i, want)| {
            let s = &f.samples[i];
            let r = client
                .tcomplete(b.0, &s.input, s.context.time_of_day, s.context.day_of_week)
                .unwrap();
            assert!(!r.body.degraded, "baseline request {i}");
            assert_eq!(r.graph_generation, 0);
            assert_eq!(bits(want), bits(&r.body.output), "baseline request {i}");
            bits(&r.body.output)
        })
        .collect();

    // Arm tenant A only: both of its shard forwards fail persistently
    // (its tenant-tagged sites), so its first request trips both
    // breakers (threshold 1) and degrades.
    for k in 0..2 {
        gcwc_failpoint::configure(&failsite::tenant_shard_forward(a.0, k), "err").unwrap();
    }
    let ra =
        client.tcomplete(a.0, &s0.input, s0.context.time_of_day, s0.context.day_of_week).unwrap();
    assert!(ra.body.degraded, "tenant A with every shard failing must degrade");
    // Second request spends A's last quota token (still degraded), the
    // third hits the empty bucket, and with the quota failpoint armed
    // the rejection path is exercised both organically and injected.
    let ra2 =
        client.tcomplete(a.0, &s0.input, s0.context.time_of_day, s0.context.day_of_week).unwrap();
    assert!(ra2.body.degraded);
    match client.tcomplete(a.0, &s0.input, s0.context.time_of_day, s0.context.day_of_week) {
        Err(ServeError::QuotaExceeded) => {}
        other => panic!("tenant A past its burst budget: {other:?}"),
    }
    gcwc_failpoint::configure(failsite::TENANT_QUOTA, "err").unwrap();
    match client.tcomplete(a.0, &s0.input, s0.context.time_of_day, s0.context.day_of_week) {
        Err(ServeError::QuotaExceeded) => {}
        other => panic!("tenant A with the quota failpoint armed: {other:?}"),
    }

    // Tenant A's counters show the carnage.
    let sa = client.tstats_for(a.0).unwrap();
    assert!(sa.breaker_open >= 1, "A stats: {sa:?}");
    assert_eq!(sa.degraded_responses, 2, "A stats: {sa:?}");
    assert_eq!(sa.quota_rejected, 2, "A stats: {sa:?}");

    // Tenant B, same process, while A is broken AND the quota
    // failpoint is globally armed (B carries no quota, so it must not
    // even evaluate that site): every response bit-identical to the
    // unarmed baseline.
    for (i, want) in baseline.iter().enumerate() {
        let s = &f.samples[i];
        let r =
            client.tcomplete(b.0, &s.input, s.context.time_of_day, s.context.day_of_week).unwrap();
        assert!(!r.body.degraded, "B request {i} under A's chaos");
        assert_eq!(r.graph_generation, 0);
        assert_eq!(want, &bits(&r.body.output), "B request {i} under A's chaos");
    }
    let sb = client.tstats_for(b.0).unwrap();
    assert_eq!(sb.degraded_responses, 0, "B stats: {sb:?}");
    assert_eq!(sb.retries, 0, "B stats: {sb:?}");
    assert_eq!(sb.quota_rejected, 0, "B stats: {sb:?}");
    assert_eq!(sb.breaker_open, 0, "B stats: {sb:?}");
    assert_eq!(sb.worker_restarts, 0, "B stats: {sb:?}");

    disarm_all();
    server.stop();
    tenants.shutdown();
}

/// The kill-one-replica schedule: with N=2 replica groups and one
/// replica of each shard killed persistently (by ordinal), the engine
/// must never hang and never degrade — every response bit-identical
/// to the healthy reference while ≥1 replica per shard stays healthy —
/// and the promotion counters must advance as tripped slots are
/// rebuilt under fresh ordinals. After disarming, the engine serves
/// exactly with the groups fully re-armed (the promoted incarnations
/// took over).
#[test]
fn kill_one_replica_schedule_serves_exactly_and_promotes() {
    let _guard = chaos_lock();
    let _disarm = DisarmOnDrop;
    disarm_all();
    let f = fixture();
    let engine = Engine::new(
        make_replicated_registry(2),
        EngineConfig {
            workers: 0,
            cache_capacity: 0,
            breaker: BreakerConfig { failure_threshold: 1, cooldown: Duration::from_secs(3600) },
            ..Default::default()
        },
    );
    let mut client = engine.client();
    assert_eq!(engine.stats().replicas, 2);

    // Kill one slot of each shard's group: shard 0's ordinal 1 and
    // shard 1's ordinal 2 (initial ordinals are shard-major).
    gcwc_failpoint::configure(&failsite::replica_forward(1), "err").unwrap();
    gcwc_failpoint::configure(&failsite::replica_forward(2), "err").unwrap();

    for round in 0..3 {
        for (i, want) in f.reference.iter().enumerate() {
            let s = &f.samples[i];
            let mut input = client.input_buffer();
            input.copy_from(&s.input);
            client.send(input, s.context.time_of_day, s.context.day_of_week).unwrap();
            engine.process_queued();
            let completion = client.recv().expect("kill-one-replica must never fail a request");
            assert!(!completion.degraded, "round {round} request {i} degraded");
            assert_eq!(bits(want), bits(&completion.output), "round {round} request {i}");
            client.recycle(completion);
        }
    }
    let stats = engine.stats();
    assert_eq!(stats.degraded_responses, 0, "stats: {stats:?}");
    assert!(stats.replica_failovers >= 1, "stats: {stats:?}");
    assert!(stats.replica_promotions >= 1, "stats: {stats:?}");
    assert!(!engine.shard_breaker_open(0), "promotion must re-arm shard 0's group");
    assert!(!engine.shard_breaker_open(1), "promotion must re-arm shard 1's group");

    // Disarmed, the engine still serves exactly — the armed ordinals
    // died with their incarnations.
    disarm_all();
    let s = &f.samples[0];
    let mut input = client.input_buffer();
    input.copy_from(&s.input);
    client.send(input, s.context.time_of_day, s.context.day_of_week).unwrap();
    engine.process_queued();
    let healed = client.recv().unwrap();
    assert!(!healed.degraded);
    assert_eq!(bits(&f.reference[0]), bits(&healed.output));
    client.recycle(healed);
    engine.shutdown();
}

#[test]
fn unarmed_sites_serve_bit_identically_with_zero_fault_counters() {
    // Satellite of the no-op guarantee: with the feature *compiled in*
    // but no site armed, serving is bit-identical to the reference and
    // none of the containment machinery fires.
    let _guard = chaos_lock();
    let _disarm = DisarmOnDrop;
    disarm_all();
    let f = fixture();
    let engine = Engine::new(
        make_registry(),
        EngineConfig { workers: 1, cache_capacity: 0, ..Default::default() },
    );
    let mut client = engine.client();
    client.set_retry_policy(Some(RetryPolicy::default()));
    for (i, want) in f.reference.iter().enumerate() {
        let s = &f.samples[i];
        let mut input = client.input_buffer();
        input.copy_from(&s.input);
        let completion =
            client.complete(input, s.context.time_of_day, s.context.day_of_week).unwrap();
        assert!(!completion.degraded);
        assert_eq!(bits(want), bits(&completion.output), "request {i}");
        client.recycle(completion);
    }
    let stats = engine.stats();
    assert_eq!(stats.worker_restarts, 0, "stats: {stats:?}");
    assert_eq!(stats.breaker_open, 0, "stats: {stats:?}");
    assert_eq!(stats.degraded_responses, 0, "stats: {stats:?}");
    assert_eq!(stats.retries, 0, "stats: {stats:?}");
    engine.shutdown();
}
