//! Serving a sharded model set: the engine's per-shard scatter-gather
//! must reproduce `ShardedModel::predict_global` bit for bit, and
//! hot-swapping one shard must invalidate exactly that shard's cache
//! entries — other shards keep serving their cached rows unchanged.

use gcwc::{build_samples, GcwcModel, ModelConfig, ShardedModel, TaskKind, TrainSample};
use gcwc_graph::PartitionSet;
use gcwc_linalg::Matrix;
use gcwc_serve::{AnyModel, Engine, EngineConfig, ModelRegistry};
use gcwc_traffic::{generators, simulate, HistogramSpec, SimConfig};
use std::sync::Arc;

fn model_config() -> ModelConfig {
    ModelConfig::hw_hist().with_epochs(2)
}

fn samples_for(instance: &gcwc_traffic::NetworkInstance) -> Vec<TrainSample> {
    let sim = SimConfig {
        days: 2,
        intervals_per_day: 16,
        records_per_interval: 10.0,
        ..Default::default()
    };
    let data = simulate(instance, HistogramSpec::hist8(), &sim);
    let ds = data.to_dataset(0.5, 5, 11);
    let idx: Vec<usize> = (0..ds.len()).collect();
    build_samples(&ds, &idx, TaskKind::Estimation, 0)
}

fn bits(m: &Matrix) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// A K-shard registry loaded with the trained shards of `sharded`.
fn sharded_registry(sharded: ShardedModel<GcwcModel>) -> Arc<ModelRegistry> {
    let (partition, shards) = sharded.into_shards();
    let factories = (0..partition.num_partitions())
        .map(|k| {
            let graph = partition.partition(k).graph().clone();
            let f: Box<dyn Fn() -> AnyModel + Send + Sync> =
                Box::new(move || AnyModel::Gcwc(GcwcModel::new(&graph, 8, model_config(), 0)));
            f
        })
        .collect();
    let registry = Arc::new(ModelRegistry::sharded(factories, &partition));
    for (k, shard) in shards.into_iter().enumerate() {
        registry.install_shard(k, AnyModel::Gcwc(shard));
    }
    registry
}

#[test]
fn k2_scatter_gather_matches_predict_global() {
    let hw = generators::highway_tollgate(1);
    let samples = samples_for(&hw);
    let mut sharded = ShardedModel::gcwc(&hw.graph, 8, model_config(), 42, 2);
    sharded.fit_shards(&samples[..8]);

    // Reference completions straight from the trained sharded model.
    let expected: Vec<Matrix> = samples[..4].iter().map(|s| sharded.predict_global(s)).collect();

    let registry = sharded_registry(sharded);
    let engine =
        Engine::new(registry, EngineConfig { workers: 0, cache_capacity: 0, ..Default::default() });
    let mut client = engine.client();
    for (s, want) in samples[..4].iter().zip(&expected) {
        let mut input = client.input_buffer();
        input.copy_from(&s.input);
        client.send(input, s.context.time_of_day, s.context.day_of_week).unwrap();
        engine.process_queued();
        let completion = client.recv().unwrap();
        assert_eq!(completion.shards, 2);
        assert_eq!(bits(want), bits(&completion.output));
        client.recycle(completion);
    }
    engine.shutdown();
}

#[test]
fn hot_swapping_one_shard_keeps_other_shards_cached_rows() {
    let hw = generators::highway_tollgate(1);
    let samples = samples_for(&hw);
    let partition = Arc::new(PartitionSet::build(&hw.graph, 2));
    let mut sharded = ShardedModel::gcwc_on(Arc::clone(&partition), 8, model_config(), 42);
    sharded.fit_shards(&samples[..8]);

    let registry = sharded_registry(sharded);
    let engine = Engine::new(registry, EngineConfig { workers: 0, ..Default::default() });
    let mut client = engine.client();
    // Sample 2 has observed mass inside shard 1, so two differently
    // initialised shard-1 models must disagree on its completion.
    let s = &samples[2];
    let ask = |client: &mut gcwc_serve::Client| {
        let mut input = client.input_buffer();
        input.copy_from(&s.input);
        client.send(input, s.context.time_of_day, s.context.day_of_week).unwrap();
        engine.process_queued();
        client.recv().unwrap()
    };

    let first = ask(&mut client);
    assert!(!first.cache_hit);
    let before = first.output.clone();
    client.recycle(first);

    // Warm repeat: every shard answers from its cache.
    let warm = ask(&mut client);
    assert!(warm.cache_hit, "repeat request must be a full cache hit");
    assert_eq!(bits(&before), bits(&warm.output));
    client.recycle(warm);

    // Swap shard 1 for a differently-initialised (untrained) model.
    let swapped = GcwcModel::new(partition.partition(1).graph(), 8, model_config(), 777);
    engine.registry().install_shard(1, AnyModel::Gcwc(swapped));

    let after = ask(&mut client);
    // Shard 1's entries are invalidated (its generation changed)...
    assert!(!after.cache_hit, "swapped shard must miss its cache");
    // ...while shard 0's rows are still served from cache, unchanged.
    let view0 = partition.partition(0).view();
    for &g in view0.owned() {
        assert_eq!(
            bits(&Matrix::from_vec(1, 8, before.row(g).to_vec())),
            bits(&Matrix::from_vec(1, 8, after.output.row(g).to_vec())),
            "shard-0 owned row {g} must be untouched by the swap"
        );
    }
    // ...and shard 1's owned rows reflect the new model.
    let view1 = partition.partition(1).view();
    let changed = view1.owned().iter().filter(|&&g| before.row(g) != after.output.row(g)).count();
    assert!(changed > 0, "shard-1 rows must change after the swap");
    client.recycle(after);
    engine.shutdown();
}
