//! Doc lock: the README/DESIGN sentences documenting how many counter
//! fields the `stats` and `tstats` lines carry are checked against the
//! *real* encoder output. Adding a counter without updating the docs
//! (or vice versa) fails this suite, not a reader's expectations.

use gcwc_serve::{protocol, StatsSnapshot};

fn fixture() -> StatsSnapshot {
    let mut fields = [0u64; StatsSnapshot::TENANT_FIELDS];
    for (i, f) in fields.iter_mut().enumerate() {
        *f = i as u64 + 1;
    }
    StatsSnapshot::from_tenant_fields(fields)
}

/// The legacy text `stats` line is the keyword plus exactly 21 counter
/// fields; the tenant-scoped `tstats` line is the keyword, the tenant
/// id, and exactly [`StatsSnapshot::TENANT_FIELDS`] counters.
#[test]
fn stats_lines_carry_the_documented_field_counts() {
    let s = fixture();

    let mut line = String::new();
    protocol::write_stats(&mut line, &s);
    let legacy_fields = line.split_whitespace().count() - 1;
    assert_eq!(legacy_fields, 21, "legacy stats line drifted: {line:?}");

    line.clear();
    protocol::write_tstats(&mut line, 7, &s);
    let tenant_fields = line.split_whitespace().count() - 2;
    assert_eq!(tenant_fields, StatsSnapshot::TENANT_FIELDS, "tstats line drifted: {line:?}");
    assert_eq!(tenant_fields, 25, "TENANT_FIELDS changed without updating the docs suite");
}

/// README.md and DESIGN.md each state both counts in prose; the
/// sentences are located by the exact phrases asserted here, built
/// from the *measured* field counts so the docs can only pass when
/// they match the encoders.
#[test]
fn readme_and_design_document_the_measured_field_counts() {
    let s = fixture();
    let mut line = String::new();
    protocol::write_stats(&mut line, &s);
    let legacy_fields = line.split_whitespace().count() - 1;
    line.clear();
    protocol::write_tstats(&mut line, 7, &s);
    let tenant_fields = line.split_whitespace().count() - 2;

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    for doc in ["README.md", "DESIGN.md"] {
        // Prose wraps at 72 columns; fold the docs to single-space so
        // a phrase split across a line break still matches.
        let text = std::fs::read_to_string(format!("{root}/{doc}"))
            .unwrap()
            .split_whitespace()
            .collect::<Vec<_>>()
            .join(" ");
        let legacy_phrase = format!("exactly {legacy_fields} counter fields");
        assert!(
            text.contains(&legacy_phrase),
            "{doc} must state the legacy stats line carries \"{legacy_phrase}\""
        );
        let tenant_phrase = format!("carries exactly {tenant_fields}");
        assert!(
            text.contains(&tenant_phrase),
            "{doc} must state the tstats line \"{tenant_phrase}\" fields"
        );
    }
}
