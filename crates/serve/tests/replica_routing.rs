//! Pins the consistent-hash routing contract of replica groups:
//! rendezvous selection is a pure function of the cache-key content,
//! membership churn (one replica added or removed) remaps only the
//! keys whose winner changed (~1/N of them), N = 1 routing is the
//! identity — and, end to end, a replicated engine's responses are
//! bit-identical to the unreplicated engine for N = 1 *and* for any
//! healthy replica of an N = 2 group.

use gcwc::{build_samples, GcwcModel, ModelConfig, ShardedModel, TaskKind, TrainSample};
use gcwc_graph::{EdgeGraph, PartitionSet};
use gcwc_linalg::{CsrMatrix, Matrix};
use gcwc_serve::replica::{self, Replica};
use gcwc_serve::{AnyModel, Engine, EngineConfig, ModelRegistry, ModelShard};
use gcwc_traffic::{generators, simulate, HistogramSpec, SimConfig};
use proptest::prelude::*;
use std::sync::Arc;

/// A replica group over one shared tiny shard: routing only reads the
/// ordinals, so every slot can share the same model.
fn group_of(ordinals: &[u64]) -> Vec<Replica> {
    let graph = EdgeGraph::from_adjacency(CsrMatrix::identity(3));
    let cfg = ModelConfig::hw_hist().with_epochs(1);
    let shard = Arc::new(ModelShard {
        model: AnyModel::Gcwc(GcwcModel::new(&graph, 8, cfg, 7)),
        generation: 0,
        source: None,
    });
    ordinals.iter().map(|&ordinal| Replica { shard: Arc::clone(&shard), ordinal }).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Removing one replica remaps *only* the keys it was winning:
    /// every key whose winner survives keeps its winner exactly.
    #[test]
    fn removing_one_replica_remaps_only_its_own_keys(
        base in 0u64..1_000_000,
        n in 2usize..6,
        sigs in collection::vec(0u64..u64::MAX, 1..32),
    ) {
        let ordinals: Vec<u64> = (0..n as u64).map(|s| base + s).collect();
        let group = group_of(&ordinals);
        for sig in sigs {
            let point = replica::route_point(sig as usize % 96, sig as usize % 7, sig);
            let winner = replica::select(point, &group);
            for dead in 0..group.len() {
                let survivor = replica::select_by(point, &group, |s| s != dead)
                    .expect("n >= 2 leaves a survivor");
                if dead == winner {
                    prop_assert!(survivor != dead, "removed slot still selected");
                } else {
                    prop_assert_eq!(
                        survivor, winner,
                        "removing loser slot {} remapped the key", dead
                    );
                }
            }
        }
    }

    /// Adding one replica (a promotion's fresh incarnation) steals
    /// keys only for itself: every other key keeps its old winner.
    #[test]
    fn adding_one_replica_only_steals_keys_for_itself(
        base in 0u64..1_000_000,
        n in 1usize..5,
        fresh in 2_000_000u64..3_000_000,
        sigs in collection::vec(0u64..u64::MAX, 1..32),
    ) {
        let ordinals: Vec<u64> = (0..n as u64).map(|s| base + s).collect();
        let group = group_of(&ordinals);
        let mut grown: Vec<u64> = ordinals.clone();
        grown.push(fresh);
        let grown = group_of(&grown);
        for sig in sigs {
            let point = replica::route_point(sig as usize % 96, sig as usize % 7, sig);
            let before = group[replica::select(point, &group)].ordinal;
            let after = grown[replica::select(point, &grown)].ordinal;
            prop_assert!(
                after == before || after == fresh,
                "growing the group moved a key to a pre-existing replica \
                 ({before} -> {after})"
            );
        }
    }

    /// N = 1 routing is the identity for any ordinal and any key.
    #[test]
    fn single_replica_group_routes_identically(
        ordinal in 0u64..u64::MAX,
        sigs in collection::vec(0u64..u64::MAX, 1..16),
    ) {
        let group = group_of(&[ordinal]);
        for sig in sigs {
            let point = replica::route_point(sig as usize % 96, sig as usize % 7, sig);
            prop_assert_eq!(replica::select(point, &group), 0);
        }
    }
}

/// Growing N = 4 to N = 5 moves roughly 1/5 of the keys (rendezvous
/// hashing's defining property); a modulo-style scheme would move 4/5.
#[test]
fn membership_growth_moves_about_one_in_n_keys() {
    let group = group_of(&[0, 1, 2, 3]);
    let grown = group_of(&[0, 1, 2, 3, 4]);
    let total = 4096u64;
    let moved = (0..total)
        .filter(|&seed| {
            let point = replica::route_point(seed as usize % 96, seed as usize % 7, seed * 31);
            group[replica::select(point, &group)].ordinal
                != grown[replica::select(point, &grown)].ordinal
        })
        .count();
    let fraction = moved as f64 / total as f64;
    assert!(
        (0.12..=0.30).contains(&fraction),
        "expected ~1/5 of keys to move to the new replica, got {fraction:.3}"
    );
}

fn model_config() -> ModelConfig {
    ModelConfig::hw_hist().with_epochs(2)
}

fn samples_for(instance: &gcwc_traffic::NetworkInstance) -> Vec<TrainSample> {
    let sim = SimConfig {
        days: 2,
        intervals_per_day: 16,
        records_per_interval: 10.0,
        ..Default::default()
    };
    let data = simulate(instance, HistogramSpec::hist8(), &sim);
    let ds = data.to_dataset(0.5, 5, 11);
    let idx: Vec<usize> = (0..ds.len()).collect();
    build_samples(&ds, &idx, TaskKind::Estimation, 0)
}

fn bits(m: &Matrix) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// A K=2 registry with an N-replica group per shard, each slot loaded
/// independently from the trained shard checkpoints.
fn replicated_registry(
    partition: &Arc<PartitionSet>,
    ckpts: &[std::path::PathBuf],
    replication: usize,
) -> Arc<ModelRegistry> {
    let factories = (0..partition.num_partitions())
        .map(|k| {
            let graph = partition.partition(k).graph().clone();
            let f: Box<dyn Fn() -> AnyModel + Send + Sync> =
                Box::new(move || AnyModel::Gcwc(GcwcModel::new(&graph, 8, model_config(), 0)));
            f
        })
        .collect();
    let registry = Arc::new(ModelRegistry::sharded_replicated(factories, partition, replication));
    for (k, ckpt) in ckpts.iter().enumerate() {
        registry.load_shard(k, ckpt).unwrap();
    }
    registry
}

/// End-to-end routing identity and bit-parity: the N = 1 replicated
/// engine answers every request with exactly the bits of the
/// unreplicated engine, and the N = 2 group — whichever replica each
/// request routes to — matches them too (its slots were independently
/// loaded from the same checkpoints).
#[test]
fn replicated_engines_serve_bit_identically_to_unreplicated() {
    let hw = generators::highway_tollgate(1);
    let samples = samples_for(&hw);
    let partition = Arc::new(PartitionSet::build(&hw.graph, 2));
    let mut sharded = ShardedModel::gcwc_on(Arc::clone(&partition), 8, model_config(), 42);
    sharded.fit_shards(&samples[..8]);
    let dir = std::env::temp_dir().join("gcwc_replica_routing");
    std::fs::create_dir_all(&dir).unwrap();
    let (_, shards) = sharded.into_shards();
    let ckpts: Vec<_> = shards
        .iter()
        .enumerate()
        .map(|(k, shard)| {
            let path = dir.join(format!("routing.shard{k}.ckpt"));
            shard.save(&path).unwrap();
            path
        })
        .collect();

    let serve_all = |registry: Arc<ModelRegistry>| -> Vec<Vec<u64>> {
        let engine = Engine::new(
            registry,
            EngineConfig { workers: 0, cache_capacity: 0, ..Default::default() },
        );
        let mut client = engine.client();
        let outs = samples[..6]
            .iter()
            .map(|s| {
                let mut input = client.input_buffer();
                input.copy_from(&s.input);
                client.send(input, s.context.time_of_day, s.context.day_of_week).unwrap();
                engine.process_queued();
                let completion = client.recv().unwrap();
                assert!(!completion.degraded);
                let out = bits(&completion.output);
                client.recycle(completion);
                out
            })
            .collect();
        engine.shutdown();
        outs
    };

    let reference = serve_all(replicated_registry(&partition, &ckpts, 1));
    for n in [1usize, 2, 3] {
        let replicated = serve_all(replicated_registry(&partition, &ckpts, n));
        assert_eq!(reference, replicated, "N = {n} responses diverged from the N = 1 pipeline");
    }
}

/// The replication gauge and cache behavior survive replication: with
/// caching on, a repeated request is a full cache hit on the replica
/// that computed it (routing is deterministic, so the repeat lands on
/// the same replica's cache).
#[test]
fn repeat_requests_hit_the_routed_replicas_cache() {
    let hw = generators::highway_tollgate(1);
    let samples = samples_for(&hw);
    let partition = Arc::new(PartitionSet::build(&hw.graph, 2));
    let mut sharded = ShardedModel::gcwc_on(Arc::clone(&partition), 8, model_config(), 42);
    sharded.fit_shards(&samples[..8]);
    let dir = std::env::temp_dir().join("gcwc_replica_routing");
    std::fs::create_dir_all(&dir).unwrap();
    let (_, shards) = sharded.into_shards();
    let ckpts: Vec<_> = shards
        .iter()
        .enumerate()
        .map(|(k, shard)| {
            let path = dir.join(format!("cache.shard{k}.ckpt"));
            shard.save(&path).unwrap();
            path
        })
        .collect();

    let engine = Engine::new(
        replicated_registry(&partition, &ckpts, 2),
        EngineConfig { workers: 0, ..Default::default() },
    );
    assert_eq!(engine.stats().replicas, 2);
    let mut client = engine.client();
    let s = &samples[0];
    let ask = |client: &mut gcwc_serve::Client| {
        let mut input = client.input_buffer();
        input.copy_from(&s.input);
        client.send(input, s.context.time_of_day, s.context.day_of_week).unwrap();
        engine.process_queued();
        client.recv().unwrap()
    };
    let first = ask(&mut client);
    assert!(!first.cache_hit);
    let before = bits(&first.output);
    client.recycle(first);
    let warm = ask(&mut client);
    assert!(warm.cache_hit, "deterministic routing must land the repeat on the cached replica");
    assert_eq!(before, bits(&warm.output));
    client.recycle(warm);
    engine.shutdown();
}
