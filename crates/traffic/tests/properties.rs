//! Property-based tests for the traffic substrate.

use gcwc_traffic::{generators, simulate, HistogramSpec, SimConfig, WeightMatrix};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every covered ground-truth row is a valid histogram, for any
    /// seed and any (small) simulation shape.
    #[test]
    fn ground_truth_rows_are_distributions(seed in 0u64..200, ipd in 4usize..12) {
        let hw = generators::highway_tollgate(seed);
        let cfg = SimConfig { days: 1, intervals_per_day: ipd, seed, ..Default::default() };
        let data = simulate(&hw, HistogramSpec::hist8(), &cfg);
        for t in 0..data.num_intervals() {
            let gt = data.ground_truth(t, 5);
            for e in 0..data.num_edges {
                match gt.row(e) {
                    Some(h) => {
                        prop_assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-9);
                        prop_assert!(h.iter().all(|&p| p >= 0.0));
                        prop_assert!(data.records_at(t, e).len() >= 5);
                    }
                    None => prop_assert!(data.records_at(t, e).len() < 5),
                }
            }
        }
    }

    /// The removal protocol never increases coverage and `to_dataset`
    /// keeps input coverage a subset of truth coverage.
    #[test]
    fn dataset_input_is_subset_of_truth(seed in 0u64..100, rm in 0.1f64..0.9) {
        let hw = generators::highway_tollgate(seed);
        let cfg = SimConfig { days: 1, intervals_per_day: 6, seed, ..Default::default() };
        let data = simulate(&hw, HistogramSpec::hist4(), &cfg);
        let ds = data.to_dataset(rm, 5, seed);
        for s in &ds.snapshots {
            for e in 0..ds.num_edges {
                if s.input.is_covered(e) {
                    prop_assert!(s.truth.is_covered(e));
                    prop_assert_eq!(s.input.row(e), s.truth.row(e));
                }
            }
        }
    }

    /// Historical averages are valid histograms whenever any records
    /// exist, regardless of which interval subset is used.
    #[test]
    fn historical_average_always_valid(seed in 0u64..100, take in 1usize..6) {
        let hw = generators::highway_tollgate(seed);
        let cfg = SimConfig { days: 1, intervals_per_day: 8, seed, ..Default::default() };
        let data = simulate(&hw, HistogramSpec::hist8(), &cfg);
        let intervals: Vec<usize> = (0..take.min(data.num_intervals())).collect();
        for h in data.historical_average(&intervals).iter().flatten() {
            prop_assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    /// CSV round trips preserve record counts for arbitrary seeds.
    #[test]
    fn io_roundtrip_counts(seed in 0u64..60) {
        let hw = generators::highway_tollgate(seed);
        let cfg = SimConfig { days: 1, intervals_per_day: 4, seed, ..Default::default() };
        let data = simulate(&hw, HistogramSpec::hist8(), &cfg);
        let back = gcwc_traffic::io::records_from_csv(&gcwc_traffic::io::records_to_csv(&data))
            .expect("roundtrip");
        prop_assert_eq!(back.total_records(), data.total_records());
    }

    /// Weight-matrix removal is idempotent at rm = 0 and total at rm = 1.
    #[test]
    fn removal_boundaries(seed in 0u64..100) {
        let rows = (0..10).map(|i| (i % 2 == 0).then(|| vec![0.4, 0.6])).collect();
        let w = WeightMatrix::from_rows(rows, 2);
        let mut rng = gcwc_linalg::rng::seeded(seed);
        prop_assert_eq!(w.remove_random(0.0, &mut rng).num_covered(), w.num_covered());
        prop_assert_eq!(w.remove_random(1.0, &mut rng).num_covered(), 0);
    }

    /// GMM → histogram discretisation always yields a distribution.
    #[test]
    fn gmm_discretisation_valid(weights in proptest::collection::vec(0.1f64..1.0, 2..4),
                                means in proptest::collection::vec(2.0f64..38.0, 2..4)) {
        prop_assume!(weights.len() == means.len());
        let total: f64 = weights.iter().sum();
        let comps: Vec<(f64, f64)> = weights.iter().zip(&means).map(|(&w, &m)| (w / total, m)).collect();
        // Build a histogram from the components and round-trip it.
        let spec = HistogramSpec::hist8();
        let mut hist = vec![0.0; 8];
        for (w, m) in comps {
            hist[spec.bucket_of(m)] += w;
        }
        let gmm = gcwc_traffic::GaussianMixture::from_histogram(&hist, &spec);
        let back = gmm.to_histogram(&spec);
        prop_assert!((back.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(back.iter().all(|&p| p >= 0.0));
    }
}
