//! Gaussian mixture models over speed records — the paper's §VII
//! future-work item ("support continuous distribution models such as
//! Gaussian mixture models").
//!
//! A [`GaussianMixture`] is fitted to raw speed records with EM and can
//! be converted to/from the histogram representation the models operate
//! on, so completed histograms can be post-processed into smooth
//! continuous weights for downstream consumers (e.g. routing).

use rand::rngs::StdRng;

/// One mixture component.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Component {
    /// Mixing weight (components sum to 1).
    pub weight: f64,
    /// Mean speed (m/s).
    pub mean: f64,
    /// Standard deviation (m/s).
    pub std: f64,
}

/// A univariate Gaussian mixture over speeds.
#[derive(Clone, Debug, PartialEq)]
pub struct GaussianMixture {
    components: Vec<Component>,
}

const MIN_STD: f64 = 0.25;

impl GaussianMixture {
    /// Fits a `k`-component mixture to speed records with EM.
    ///
    /// Returns `None` when there are fewer records than components.
    /// Deterministic given the RNG state (used only for initialisation
    /// jitter).
    pub fn fit(records: &[f64], k: usize, iterations: usize, rng: &mut StdRng) -> Option<Self> {
        if records.len() < k || k == 0 {
            return None;
        }
        // Initialise means at spread quantiles with a little jitter.
        let mut sorted = records.to_vec();
        sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite speeds"));
        let global_std = {
            let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
            (sorted.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / sorted.len() as f64)
                .sqrt()
                .max(MIN_STD)
        };
        let mut comps: Vec<Component> = (0..k)
            .map(|i| {
                let q = (i as f64 + 0.5) / k as f64;
                let idx = ((sorted.len() - 1) as f64 * q) as usize;
                Component {
                    weight: 1.0 / k as f64,
                    mean: sorted[idx] + 0.05 * global_std * gcwc_linalg::rng::normal(rng),
                    std: global_std,
                }
            })
            .collect();

        let n = records.len();
        let mut resp = vec![0.0; n * k];
        for _ in 0..iterations {
            // E step.
            for (i, &x) in records.iter().enumerate() {
                let mut total = 0.0;
                for (j, c) in comps.iter().enumerate() {
                    let p = c.weight * gaussian_pdf(x, c.mean, c.std);
                    resp[i * k + j] = p;
                    total += p;
                }
                if total > 0.0 {
                    for j in 0..k {
                        resp[i * k + j] /= total;
                    }
                } else {
                    for j in 0..k {
                        resp[i * k + j] = 1.0 / k as f64;
                    }
                }
            }
            // M step.
            for (j, c) in comps.iter_mut().enumerate() {
                let nj: f64 = (0..n).map(|i| resp[i * k + j]).sum();
                if nj < 1e-9 {
                    continue;
                }
                let mean = (0..n).map(|i| resp[i * k + j] * records[i]).sum::<f64>() / nj;
                let var = (0..n)
                    .map(|i| resp[i * k + j] * (records[i] - mean) * (records[i] - mean))
                    .sum::<f64>()
                    / nj;
                c.weight = nj / n as f64;
                c.mean = mean;
                c.std = var.sqrt().max(MIN_STD);
            }
        }
        comps.sort_by(|a, b| a.mean.partial_cmp(&b.mean).expect("finite means"));
        Some(Self { components: comps })
    }

    /// Builds a mixture directly from a histogram: one component per
    /// non-empty bucket, centred at the bucket midpoint with the bucket
    /// width as spread.
    pub fn from_histogram(hist: &[f64], spec: &crate::histogram::HistogramSpec) -> Self {
        let width = spec.bucket_width();
        let components: Vec<Component> = hist
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p > 1e-12)
            .map(|(b, &p)| Component {
                weight: p,
                mean: spec.bucket_midpoint(b),
                std: (width / 2.0).max(MIN_STD),
            })
            .collect();
        assert!(!components.is_empty(), "histogram has no mass");
        Self { components }
    }

    /// The components, ordered by mean.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Mixture density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        self.components.iter().map(|c| c.weight * gaussian_pdf(x, c.mean, c.std)).sum()
    }

    /// Mixture CDF at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        self.components.iter().map(|c| c.weight * gaussian_cdf(x, c.mean, c.std)).sum()
    }

    /// Mixture mean.
    pub fn mean(&self) -> f64 {
        self.components.iter().map(|c| c.weight * c.mean).sum()
    }

    /// Discretises the mixture back into the histogram representation
    /// (probability mass per bucket; out-of-range tails are clamped into
    /// the edge buckets).
    pub fn to_histogram(&self, spec: &crate::histogram::HistogramSpec) -> Vec<f64> {
        let mut hist = vec![0.0; spec.buckets];
        let width = spec.bucket_width();
        for b in 0..spec.buckets {
            let lo = spec.min_speed + b as f64 * width;
            let hi = lo + width;
            let mut mass = self.cdf(hi) - self.cdf(lo);
            if b == 0 {
                mass += self.cdf(lo); // left tail
            }
            if b == spec.buckets - 1 {
                mass += 1.0 - self.cdf(hi); // right tail
            }
            hist[b] = mass.max(0.0);
        }
        let total: f64 = hist.iter().sum();
        if total > 0.0 {
            for h in &mut hist {
                *h /= total;
            }
        }
        hist
    }

    /// Average log-likelihood of records under the mixture.
    pub fn mean_log_likelihood(&self, records: &[f64]) -> f64 {
        assert!(!records.is_empty(), "no records");
        records.iter().map(|&x| (self.pdf(x) + 1e-12).ln()).sum::<f64>() / records.len() as f64
    }
}

fn gaussian_pdf(x: f64, mean: f64, std: f64) -> f64 {
    let z = (x - mean) / std;
    (-0.5 * z * z).exp() / (std * (2.0 * std::f64::consts::PI).sqrt())
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (max error ~1.5e-7, ample for bucket masses).
fn gaussian_cdf(x: f64, mean: f64, std: f64) -> f64 {
    let z = (x - mean) / (std * std::f64::consts::SQRT_2);
    0.5 * (1.0 + erf(z))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::{is_valid_histogram, HistogramSpec};
    use gcwc_linalg::rng::seeded;

    fn bimodal_sample(rng: &mut StdRng, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                if i % 3 == 0 {
                    8.0 + gcwc_linalg::rng::normal(rng)
                } else {
                    24.0 + 1.5 * gcwc_linalg::rng::normal(rng)
                }
            })
            .collect()
    }

    #[test]
    fn em_recovers_bimodal_structure() {
        let mut rng = seeded(1);
        let records = bimodal_sample(&mut rng, 600);
        let gmm = GaussianMixture::fit(&records, 2, 40, &mut rng).unwrap();
        let c = gmm.components();
        assert_eq!(c.len(), 2);
        assert!((c[0].mean - 8.0).abs() < 1.0, "slow mode {}", c[0].mean);
        assert!((c[1].mean - 24.0).abs() < 1.0, "fast mode {}", c[1].mean);
        assert!((c[0].weight - 1.0 / 3.0).abs() < 0.08);
    }

    #[test]
    fn fit_requires_enough_records() {
        let mut rng = seeded(2);
        assert!(GaussianMixture::fit(&[10.0], 2, 10, &mut rng).is_none());
        assert!(GaussianMixture::fit(&[], 1, 10, &mut rng).is_none());
    }

    #[test]
    fn mixture_is_a_density() {
        let mut rng = seeded(3);
        let records = bimodal_sample(&mut rng, 300);
        let gmm = GaussianMixture::fit(&records, 2, 30, &mut rng).unwrap();
        // Numeric integral of the pdf ≈ 1.
        let integral: f64 = (-100..400).map(|i| gmm.pdf(i as f64 * 0.2) * 0.2).sum();
        assert!((integral - 1.0).abs() < 1e-3, "integral {integral}");
        // CDF is monotone from 0 to 1.
        assert!(gmm.cdf(-50.0) < 1e-6);
        assert!((gmm.cdf(100.0) - 1.0).abs() < 1e-6);
        assert!(gmm.cdf(20.0) > gmm.cdf(10.0));
    }

    #[test]
    fn histogram_roundtrip_preserves_shape() {
        let spec = HistogramSpec::hist8();
        let hist = vec![0.0, 0.3, 0.5, 0.2, 0.0, 0.0, 0.0, 0.0];
        let gmm = GaussianMixture::from_histogram(&hist, &spec);
        let back = gmm.to_histogram(&spec);
        assert!(is_valid_histogram(&back, 1e-9));
        // The dominant bucket survives the smooth round trip.
        let argmax = |h: &[f64]| {
            h.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0
        };
        assert_eq!(argmax(&back), argmax(&hist));
        // Mean is approximately preserved.
        assert!((gmm.mean() - spec.mean_speed(&hist)).abs() < 1.0);
    }

    #[test]
    fn gmm_beats_coarse_histogram_in_likelihood() {
        // On bimodal data the fitted mixture should explain held-out
        // records at least as well as a 4-bucket histogram density.
        let mut rng = seeded(4);
        let train = bimodal_sample(&mut rng, 400);
        let test = bimodal_sample(&mut rng, 200);
        let gmm = GaussianMixture::fit(&train, 2, 40, &mut rng).unwrap();
        let spec = HistogramSpec::hist4();
        let hist = spec.build(&train).unwrap();
        let width = spec.bucket_width();
        let hist_ll: f64 =
            test.iter().map(|&x| ((spec.likelihood(&hist, x) / width) + 1e-12).ln()).sum::<f64>()
                / test.len() as f64;
        let gmm_ll = gmm.mean_log_likelihood(&test);
        assert!(gmm_ll > hist_ll, "gmm {gmm_ll} vs hist {hist_ll}");
    }

    #[test]
    fn erf_reference_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-5);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-5);
        assert!((erf(3.0) - 0.999_977_9).abs() < 1e-5);
    }
}
