//! Stochastic traffic simulator.
//!
//! Generates per-edge, per-interval raw speed records with the
//! statistical structure the GCWC models exploit (and that real GPS /
//! loop-detector data exhibits — DESIGN.md §2):
//!
//! * **time-of-day congestion**: weekday morning/evening peak dips,
//!   flatter weekend profiles;
//! * **spatial correlation**: the congestion field is smoothed over the
//!   edge graph, so adjacent edges see similar speeds;
//! * **incidents**: rare long slowdowns that also slow neighbouring
//!   edges;
//! * **driver heterogeneity**: a slow-vehicle mixture plus Gaussian
//!   spread, producing multi-modal speed histograms;
//! * **skewed coverage**: record counts follow per-edge popularity and a
//!   daily flow profile, so many edge-intervals fall below the 5-record
//!   threshold and become missing rows — the data sparseness problem.

use gcwc_linalg::rng::{normal, poisson, seeded};
use rand::Rng;

use crate::generators::NetworkInstance;
use crate::histogram::HistogramSpec;

/// Simulator configuration.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Number of simulated days.
    pub days: usize,
    /// Intervals per day (96 in the paper).
    pub intervals_per_day: usize,
    /// Base expected records per edge per interval (before popularity
    /// and flow modulation).
    pub records_per_interval: f64,
    /// Standard deviation of per-record speed noise, as a fraction of
    /// the interval mean speed.
    pub speed_noise: f64,
    /// Fraction of slow vehicles (trucks etc. at ~65% of mean speed).
    pub slow_vehicle_fraction: f64,
    /// Probability of an incident per edge per day.
    pub incident_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            days: 14,
            intervals_per_day: 96,
            records_per_interval: 6.0,
            speed_noise: 0.16,
            slow_vehicle_fraction: 0.22,
            incident_rate: 0.05,
            seed: 0xC0FFEE,
        }
    }
}

/// Raw simulated traffic: speed records per interval per edge.
#[derive(Clone, Debug)]
pub struct TrafficData {
    /// Histogram specification used downstream.
    pub spec: HistogramSpec,
    /// Intervals per day.
    pub intervals_per_day: usize,
    /// Number of edges.
    pub num_edges: usize,
    /// `records[t][e]` = speed records (m/s) on edge `e` in interval `t`.
    pub records: Vec<Vec<Vec<f64>>>,
    /// Time-of-day index per interval (`0..intervals_per_day`).
    pub time_of_day: Vec<usize>,
    /// Day-of-week per interval (`0..7`, 0 = Monday).
    pub day_of_week: Vec<usize>,
}

impl TrafficData {
    /// Total number of intervals.
    pub fn num_intervals(&self) -> usize {
        self.records.len()
    }

    /// Records on edge `e` during interval `t`.
    pub fn records_at(&self, t: usize, e: usize) -> &[f64] {
        &self.records[t][e]
    }

    /// Total number of records across all intervals and edges.
    pub fn total_records(&self) -> usize {
        self.records.iter().flatten().map(Vec::len).sum()
    }
}

/// The weekday/weekend congestion factor in `(0, 1]`: the fraction of
/// free-flow speed attainable at time-of-day fraction `tod ∈ [0, 1)`.
pub fn congestion_factor(tod: f64, weekend: bool) -> f64 {
    let dip = |centre: f64, width: f64, depth: f64| {
        depth * (-((tod - centre) * (tod - centre)) / (2.0 * width * width)).exp()
    };
    let c = if weekend {
        // A single shallow midday dip.
        1.0 - dip(13.0 / 24.0, 0.12, 0.22)
    } else {
        // Morning (8:00) and evening (17:30) peaks. Urban rush hours
        // commonly halve attainable speeds.
        1.0 - dip(8.0 / 24.0, 0.05, 0.58) - dip(17.5 / 24.0, 0.06, 0.52)
    };
    c.max(0.2)
}

/// Relative traffic volume at time-of-day fraction `tod` (more records
/// during peaks and daytime, almost none at night).
pub fn flow_factor(tod: f64, weekend: bool) -> f64 {
    let bump = |centre: f64, width: f64, height: f64| {
        height * (-((tod - centre) * (tod - centre)) / (2.0 * width * width)).exp()
    };
    let day = bump(0.5, 0.18, 0.9);
    let peaks =
        if weekend { 0.0 } else { bump(8.0 / 24.0, 0.05, 0.8) + bump(17.5 / 24.0, 0.06, 0.7) };
    (0.08 + day + peaks).min(2.0)
}

/// Runs the simulator over a network instance.
pub fn simulate(instance: &NetworkInstance, spec: HistogramSpec, cfg: &SimConfig) -> TrafficData {
    let n = instance.num_edges();
    let mut rng = seeded(cfg.seed);
    // Fixed per-edge personality: multiplicative speed bias.
    let edge_bias: Vec<f64> =
        (0..n).map(|_| (1.0 + 0.08 * normal(&mut rng)).clamp(0.7, 1.3)).collect();
    let free_flow: Vec<f64> =
        (0..n).map(|i| instance.net.edge(i).class.free_flow_speed()).collect();

    let total = cfg.days * cfg.intervals_per_day;
    let mut records = Vec::with_capacity(total);
    let mut time_of_day = Vec::with_capacity(total);
    let mut day_of_week = Vec::with_capacity(total);

    for day in 0..cfg.days {
        let dow = day % 7;
        let weekend = dow >= 5;
        // Incidents for the day: (edge, start, end, factor).
        let mut incident_factor = vec![vec![1.0f64; n]; cfg.intervals_per_day];
        for e in 0..n {
            if rng.random::<f64>() < cfg.incident_rate {
                let start = rng.random_range(0..cfg.intervals_per_day);
                let len = rng.random_range(4usize..=12);
                for t in start..(start + len).min(cfg.intervals_per_day) {
                    incident_factor[t][e] = incident_factor[t][e].min(0.35);
                    for &nb in instance.graph.neighbors(e) {
                        incident_factor[t][nb] = incident_factor[t][nb].min(0.7);
                    }
                }
            }
        }

        for t in 0..cfg.intervals_per_day {
            let tod = t as f64 / cfg.intervals_per_day as f64;
            let c = congestion_factor(tod, weekend);
            let flow = flow_factor(tod, weekend);

            // Spatially correlated congestion noise: iid normals smoothed
            // over the edge graph (three rounds), so current conditions
            // propagate along the network the way real congestion does.
            let mut z: Vec<f64> = (0..n).map(|_| normal(&mut rng)).collect();
            for _ in 0..3 {
                let snapshot = z.clone();
                for (e, zi) in z.iter_mut().enumerate() {
                    let nbrs = instance.graph.neighbors(e);
                    if !nbrs.is_empty() {
                        let avg: f64 =
                            nbrs.iter().map(|&v| snapshot[v]).sum::<f64>() / nbrs.len() as f64;
                        *zi = 0.5 * snapshot[e] + 0.5 * avg;
                    }
                }
            }

            let mut interval_records = Vec::with_capacity(n);
            for e in 0..n {
                let mean = free_flow[e]
                    * edge_bias[e]
                    * (c + 0.18 * z[e]).clamp(0.12, 1.1)
                    * incident_factor[t][e];
                let lambda = cfg.records_per_interval * instance.popularity[e] * flow;
                let count = poisson(&mut rng, lambda);
                let mut speeds = Vec::with_capacity(count);
                for _ in 0..count {
                    let vehicle =
                        if rng.random::<f64>() < cfg.slow_vehicle_fraction { 0.65 } else { 1.0 };
                    let s = mean * vehicle * (1.0 + cfg.speed_noise * normal(&mut rng));
                    speeds.push(s.clamp(0.3, spec.max_speed - 1e-6));
                }
                interval_records.push(speeds);
            }
            records.push(interval_records);
            time_of_day.push(t);
            day_of_week.push(dow);
        }
    }

    TrafficData {
        spec,
        intervals_per_day: cfg.intervals_per_day,
        num_edges: n,
        records,
        time_of_day,
        day_of_week,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::highway_tollgate;

    fn small_sim() -> TrafficData {
        let hw = highway_tollgate(1);
        let cfg = SimConfig { days: 2, intervals_per_day: 24, ..Default::default() };
        simulate(&hw, HistogramSpec::hist8(), &cfg)
    }

    #[test]
    fn shapes_and_calendar() {
        let data = small_sim();
        assert_eq!(data.num_intervals(), 48);
        assert_eq!(data.num_edges, 24);
        assert_eq!(data.time_of_day[25], 1);
        assert_eq!(data.day_of_week[0], 0);
        assert_eq!(data.day_of_week[47], 1);
    }

    #[test]
    fn speeds_in_range() {
        let data = small_sim();
        for t in 0..data.num_intervals() {
            for e in 0..data.num_edges {
                for &s in data.records_at(t, e) {
                    assert!((0.3..40.0).contains(&s), "speed {s} out of range");
                }
            }
        }
    }

    #[test]
    fn peak_hours_are_slower_on_weekdays() {
        // Congestion factor: 8:00 weekday must be well below 3:00.
        let peak = congestion_factor(8.0 / 24.0, false);
        let night = congestion_factor(3.0 / 24.0, false);
        assert!(peak < 0.7 * night, "peak {peak} vs night {night}");
        // Weekend 8:00 is barely affected.
        assert!(congestion_factor(8.0 / 24.0, true) > 0.9);
    }

    #[test]
    fn flow_is_higher_at_peak_than_night() {
        assert!(flow_factor(8.0 / 24.0, false) > 4.0 * flow_factor(3.0 / 24.0, false));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = small_sim();
        let b = small_sim();
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn produces_sparse_coverage() {
        // At night many edge-intervals must have <5 records.
        let data = small_sim();
        let mut below = 0;
        let mut total = 0;
        for t in 0..data.num_intervals() {
            for e in 0..data.num_edges {
                total += 1;
                if data.records_at(t, e).len() < 5 {
                    below += 1;
                }
            }
        }
        let frac = below as f64 / total as f64;
        assert!(frac > 0.2 && frac < 0.95, "sparse fraction {frac}");
    }

    #[test]
    fn adjacent_edges_correlate() {
        // Average mean-speed correlation between adjacent edges should be
        // clearly positive in a congested interval set.
        let hw = highway_tollgate(1);
        let cfg = SimConfig { days: 4, intervals_per_day: 24, ..Default::default() };
        let data = simulate(&hw, HistogramSpec::hist8(), &cfg);
        // Collect per-interval mean speeds of an adjacent pair and a
        // distant pair with enough data.
        let means = |e: usize| -> Vec<f64> {
            (0..data.num_intervals())
                .map(|t| {
                    let r = data.records_at(t, e);
                    if r.is_empty() {
                        f64::NAN
                    } else {
                        r.iter().sum::<f64>() / r.len() as f64
                    }
                })
                .collect()
        };
        let corr = |a: &[f64], b: &[f64]| -> f64 {
            let pairs: Vec<(f64, f64)> = a
                .iter()
                .zip(b)
                .filter(|(x, y)| x.is_finite() && y.is_finite())
                .map(|(&x, &y)| (x, y))
                .collect();
            let n = pairs.len() as f64;
            let (mx, my) = (
                pairs.iter().map(|p| p.0).sum::<f64>() / n,
                pairs.iter().map(|p| p.1).sum::<f64>() / n,
            );
            let cov: f64 = pairs.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum::<f64>() / n;
            let (sx, sy) = (
                (pairs.iter().map(|p| (p.0 - mx).powi(2)).sum::<f64>() / n).sqrt(),
                (pairs.iter().map(|p| (p.1 - my).powi(2)).sum::<f64>() / n).sqrt(),
            );
            cov / (sx * sy)
        };
        let e = 0;
        let nb = hw.graph.neighbors(e)[0];
        let c_adjacent = corr(&means(e), &means(nb));
        assert!(c_adjacent > 0.3, "adjacent correlation {c_adjacent}");
    }
}
