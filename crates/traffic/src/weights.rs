//! Stochastic weight matrices (`W`, `W_G`, `Ŵ` of the paper).

use gcwc_linalg::rng::sample_indices;
use gcwc_linalg::Matrix;
use rand::rngs::StdRng;

/// An `n × m` stochastic weight matrix where uncovered edges have
/// all-zero rows, plus the explicit coverage flags.
#[derive(Clone, Debug, PartialEq)]
pub struct WeightMatrix {
    hist: Matrix,
    covered: Vec<bool>,
}

impl WeightMatrix {
    /// Builds from per-edge optional histograms.
    pub fn from_rows(rows: Vec<Option<Vec<f64>>>, buckets: usize) -> Self {
        let n = rows.len();
        let mut hist = Matrix::zeros(n, buckets);
        let mut covered = vec![false; n];
        for (i, row) in rows.into_iter().enumerate() {
            if let Some(h) = row {
                assert_eq!(h.len(), buckets, "histogram length mismatch at row {i}");
                hist.row_mut(i).copy_from_slice(&h);
                covered[i] = true;
            }
        }
        Self { hist, covered }
    }

    /// Builds directly from a matrix and coverage flags.
    pub fn new(hist: Matrix, covered: Vec<bool>) -> Self {
        assert_eq!(hist.rows(), covered.len(), "coverage length mismatch");
        Self { hist, covered }
    }

    /// Number of edges `n`.
    pub fn num_edges(&self) -> usize {
        self.hist.rows()
    }

    /// Number of buckets `m`.
    pub fn num_buckets(&self) -> usize {
        self.hist.cols()
    }

    /// The underlying `n × m` matrix (zero rows for uncovered edges).
    pub fn matrix(&self) -> &Matrix {
        &self.hist
    }

    /// Whether edge `i` is covered by traffic data.
    pub fn is_covered(&self, i: usize) -> bool {
        self.covered[i]
    }

    /// Coverage flags.
    pub fn coverage(&self) -> &[bool] {
        &self.covered
    }

    /// Number of covered edges.
    pub fn num_covered(&self) -> usize {
        self.covered.iter().filter(|&&c| c).count()
    }

    /// Histogram of edge `i`, if covered.
    pub fn row(&self, i: usize) -> Option<&[f64]> {
        self.covered[i].then(|| self.hist.row(i))
    }

    /// The paper's row-flag context `X_R` (`1.0` for covered rows).
    pub fn row_flags(&self) -> Vec<f64> {
        self.covered.iter().map(|&c| if c { 1.0 } else { 0.0 }).collect()
    }

    /// The removal protocol of §VI-A.2: selects `⌊n·rm⌋` edges uniformly
    /// at random from *all* `n` edges and zeroes their rows, producing the
    /// incomplete input matrix `W`.
    pub fn remove_random(&self, rm: f64, rng: &mut StdRng) -> WeightMatrix {
        assert!((0.0..=1.0).contains(&rm), "removal ratio must be in [0, 1]");
        let n = self.num_edges();
        let k = ((n as f64) * rm).floor() as usize;
        let removed = sample_indices(rng, n, k);
        let mut out = self.clone();
        for &i in &removed {
            out.hist.row_mut(i).fill(0.0);
            out.covered[i] = false;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcwc_linalg::rng::seeded;

    fn sample() -> WeightMatrix {
        WeightMatrix::from_rows(
            vec![Some(vec![0.5, 0.5]), None, Some(vec![1.0, 0.0]), Some(vec![0.25, 0.75])],
            2,
        )
    }

    #[test]
    fn coverage_flags() {
        let w = sample();
        assert_eq!(w.num_edges(), 4);
        assert_eq!(w.num_covered(), 3);
        assert!(w.is_covered(0));
        assert!(!w.is_covered(1));
        assert_eq!(w.row_flags(), vec![1.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn uncovered_rows_are_zero() {
        let w = sample();
        assert!(w.matrix().row_is_zero(1));
        assert_eq!(w.row(1), None);
        assert_eq!(w.row(0), Some(&[0.5, 0.5][..]));
    }

    #[test]
    fn removal_drops_expected_count() {
        let w = sample();
        let mut rng = seeded(1);
        let removed = w.remove_random(0.5, &mut rng); // floor(4*0.5) = 2 removed
                                                      // At most 3 covered before; between 1 and 3 covered after
                                                      // (removal targets all edges, covered or not).
        assert!(removed.num_covered() <= w.num_covered());
        let zeroed = (0..4).filter(|&i| !removed.is_covered(i)).count();
        assert!(zeroed >= 2, "at least the removed edges are uncovered");
    }

    #[test]
    fn removal_zero_ratio_is_identity() {
        let w = sample();
        let mut rng = seeded(2);
        assert_eq!(w.remove_random(0.0, &mut rng), w);
    }

    #[test]
    fn removal_full_ratio_empties_everything() {
        let w = sample();
        let mut rng = seeded(3);
        let out = w.remove_random(1.0, &mut rng);
        assert_eq!(out.num_covered(), 0);
        assert_eq!(out.matrix().sum(), 0.0);
    }

    #[test]
    fn removal_is_deterministic_per_seed() {
        let w = sample();
        let a = w.remove_random(0.5, &mut seeded(7));
        let b = w.remove_random(0.5, &mut seeded(7));
        assert_eq!(a, b);
    }
}
