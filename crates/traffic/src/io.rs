//! CSV import/export for traffic data.
//!
//! Real deployments extract speed records from GPS matching or loop
//! detectors; this module defines the on-disk exchange format so the
//! models can run on external data: one record per line,
//! `interval,edge,speed`, with a small header carrying the calendar
//! layout. Weight matrices export as `edge,b0,…,b{m−1}` per covered row.

use std::fmt::Write as _;
use std::path::Path;

use crate::histogram::HistogramSpec;
use crate::sim::TrafficData;
use crate::weights::WeightMatrix;

/// Errors from reading traffic CSV files.
#[derive(Debug)]
pub enum IoError {
    /// Underlying file error.
    File(std::io::Error),
    /// Structural problem with the content.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description.
        message: String,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::File(e) => write!(f, "file error: {e}"),
            IoError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::File(e)
    }
}

/// Serialises traffic records to the exchange CSV format.
pub fn records_to_csv(data: &TrafficData) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# gcwc-traffic v1 edges={} intervals_per_day={} min_speed={} max_speed={} buckets={}",
        data.num_edges,
        data.intervals_per_day,
        data.spec.min_speed,
        data.spec.max_speed,
        data.spec.buckets
    );
    out.push_str("interval,edge,speed\n");
    for t in 0..data.num_intervals() {
        for e in 0..data.num_edges {
            for &s in data.records_at(t, e) {
                let _ = writeln!(out, "{t},{e},{s:.3}");
            }
        }
    }
    out
}

/// Writes traffic records to a CSV file.
pub fn write_records(data: &TrafficData, path: &Path) -> Result<(), IoError> {
    std::fs::write(path, records_to_csv(data))?;
    Ok(())
}

/// Parses the exchange CSV format back into [`TrafficData`].
///
/// The number of intervals is inferred from the maximum interval index;
/// the calendar restarts at Monday.
pub fn records_from_csv(content: &str) -> Result<TrafficData, IoError> {
    let mut lines = content.lines().enumerate();
    let (_, header) =
        lines.next().ok_or(IoError::Parse { line: 1, message: "empty file".into() })?;
    let meta = parse_header(header)?;
    let (num_edges, intervals_per_day, spec) = meta;

    let mut rows: Vec<(usize, usize, f64)> = Vec::new();
    let mut max_interval = 0usize;
    for (idx, line) in lines {
        let line = line.trim();
        if line.is_empty() || line == "interval,edge,speed" {
            continue;
        }
        let mut parts = line.split(',');
        let parse_err = |message: &str| IoError::Parse { line: idx + 1, message: message.into() };
        let t: usize = parts
            .next()
            .and_then(|v| v.trim().parse().ok())
            .ok_or_else(|| parse_err("bad interval"))?;
        let e: usize = parts
            .next()
            .and_then(|v| v.trim().parse().ok())
            .ok_or_else(|| parse_err("bad edge"))?;
        let s: f64 = parts
            .next()
            .and_then(|v| v.trim().parse().ok())
            .ok_or_else(|| parse_err("bad speed"))?;
        if e >= num_edges {
            return Err(parse_err("edge index out of range"));
        }
        if !s.is_finite() || s < 0.0 {
            return Err(parse_err("speed must be a non-negative number"));
        }
        max_interval = max_interval.max(t);
        rows.push((t, e, s));
    }
    let num_intervals = max_interval + 1;
    let mut records = vec![vec![Vec::new(); num_edges]; num_intervals];
    for (t, e, s) in rows {
        records[t][e].push(s);
    }
    let time_of_day: Vec<usize> = (0..num_intervals).map(|t| t % intervals_per_day).collect();
    let day_of_week: Vec<usize> = (0..num_intervals).map(|t| (t / intervals_per_day) % 7).collect();
    Ok(TrafficData { spec, intervals_per_day, num_edges, records, time_of_day, day_of_week })
}

/// Reads traffic records from a CSV file.
pub fn read_records(path: &Path) -> Result<TrafficData, IoError> {
    records_from_csv(&std::fs::read_to_string(path)?)
}

fn parse_header(header: &str) -> Result<(usize, usize, HistogramSpec), IoError> {
    let err = |message: &str| IoError::Parse { line: 1, message: message.into() };
    if !header.starts_with("# gcwc-traffic v1") {
        return Err(err("missing '# gcwc-traffic v1' header"));
    }
    let mut edges = None;
    let mut ipd = None;
    let mut min_speed = None;
    let mut max_speed = None;
    let mut buckets = None;
    for token in header.split_whitespace() {
        if let Some((key, value)) = token.split_once('=') {
            match key {
                "edges" => edges = value.parse().ok(),
                "intervals_per_day" => ipd = value.parse().ok(),
                "min_speed" => min_speed = value.parse().ok(),
                "max_speed" => max_speed = value.parse().ok(),
                "buckets" => buckets = value.parse().ok(),
                _ => {}
            }
        }
    }
    let spec = HistogramSpec {
        min_speed: min_speed.ok_or_else(|| err("missing min_speed"))?,
        max_speed: max_speed.ok_or_else(|| err("missing max_speed"))?,
        buckets: buckets.ok_or_else(|| err("missing buckets"))?,
    };
    Ok((
        edges.ok_or_else(|| err("missing edges"))?,
        ipd.ok_or_else(|| err("missing intervals_per_day"))?,
        spec,
    ))
}

/// Serialises a weight matrix: `edge,b0,…` per covered row.
pub fn weights_to_csv(w: &WeightMatrix) -> String {
    let mut out = String::from("edge");
    for b in 0..w.num_buckets() {
        let _ = write!(out, ",b{b}");
    }
    out.push('\n');
    for e in 0..w.num_edges() {
        if let Some(row) = w.row(e) {
            let _ = write!(out, "{e}");
            for v in row {
                let _ = write!(out, ",{v:.6}");
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::highway_tollgate;
    use crate::sim::{simulate, SimConfig};

    fn sample_data() -> TrafficData {
        let hw = highway_tollgate(1);
        let cfg = SimConfig { days: 1, intervals_per_day: 6, ..Default::default() };
        simulate(&hw, HistogramSpec::hist8(), &cfg)
    }

    #[test]
    fn csv_roundtrip_preserves_records() {
        let data = sample_data();
        let csv = records_to_csv(&data);
        let back = records_from_csv(&csv).unwrap();
        assert_eq!(back.num_edges, data.num_edges);
        assert_eq!(back.intervals_per_day, data.intervals_per_day);
        assert_eq!(back.num_intervals(), data.num_intervals());
        assert_eq!(back.spec, data.spec);
        for t in 0..data.num_intervals() {
            for e in 0..data.num_edges {
                let orig = data.records_at(t, e);
                let round = back.records_at(t, e);
                assert_eq!(orig.len(), round.len());
                for (a, b) in orig.iter().zip(round) {
                    assert!((a - b).abs() < 1e-3, "speed {a} vs {b}");
                }
            }
        }
        assert_eq!(back.time_of_day, data.time_of_day);
        assert_eq!(back.day_of_week, data.day_of_week);
    }

    #[test]
    fn file_roundtrip() {
        let data = sample_data();
        let dir = std::env::temp_dir().join("gcwc_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("records.csv");
        write_records(&data, &path).unwrap();
        let back = read_records(&path).unwrap();
        assert_eq!(back.total_records(), data.total_records());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_header_is_rejected() {
        let err = records_from_csv("not a header\n1,2,3\n").unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn bad_rows_are_rejected_with_line_numbers() {
        let header = "# gcwc-traffic v1 edges=2 intervals_per_day=4 min_speed=0 max_speed=40 buckets=8\ninterval,edge,speed\n";
        for (row, expect) in [
            ("x,0,5.0", "bad interval"),
            ("0,9,5.0", "out of range"),
            ("0,0,-1.0", "non-negative"),
            ("0,0,abc", "bad speed"),
        ] {
            let err = records_from_csv(&format!("{header}{row}\n")).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains("line 3"), "{msg}");
            assert!(msg.contains(expect), "{msg} should mention {expect}");
        }
    }

    #[test]
    fn weights_csv_lists_covered_rows() {
        let w = WeightMatrix::from_rows(vec![Some(vec![0.5, 0.5]), None, Some(vec![1.0, 0.0])], 2);
        let csv = weights_to_csv(&w);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "edge,b0,b1");
        assert_eq!(lines.len(), 3, "only covered rows are written");
        assert!(lines[1].starts_with("0,"));
        assert!(lines[2].starts_with("2,"));
    }
}
