//! Datasets: the evaluation protocol of §VI-A.2 / §VI-A.3.
//!
//! A [`Dataset`] is a time-ordered sequence of [`Snapshot`]s, each pairing
//! an incomplete input matrix `W` (ground truth with `n·rm` rows removed)
//! with its ground-truth matrix `W_G`, average-speed truth, and context.
//! Five-fold cross validation splits the time-ordered snapshots into
//! contiguous folds exactly as the paper prescribes.

use gcwc_linalg::rng::seeded;

use crate::context::Context;
use crate::histogram::HistogramSpec;
use crate::sim::TrafficData;
use crate::weights::WeightMatrix;

/// One time interval's worth of evaluation data.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Global interval index into the source [`TrafficData`].
    pub index: usize,
    /// Context (`X_T`, `X_D`, `X_R` of the *input* matrix).
    pub context: Context,
    /// Incomplete input matrix `W` (removal applied).
    pub input: WeightMatrix,
    /// Ground-truth matrix `W_G` (all edges with ≥ `min_records`).
    pub truth: WeightMatrix,
    /// Ground-truth average speed per edge (`None` when uncovered).
    pub avg_truth: Vec<Option<f64>>,
}

/// A train/test split of snapshot indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fold {
    /// Training snapshot indices.
    pub train: Vec<usize>,
    /// Test snapshot indices.
    pub test: Vec<usize>,
}

/// A full evaluation dataset.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Time-ordered snapshots.
    pub snapshots: Vec<Snapshot>,
    /// Histogram specification.
    pub spec: HistogramSpec,
    /// Number of edges.
    pub num_edges: usize,
    /// Intervals per day.
    pub intervals_per_day: usize,
    /// The removal ratio used to create the inputs.
    pub removal_ratio: f64,
}

impl TrafficData {
    /// Instantiates the ground-truth weight matrix for interval `t`
    /// (edges with at least `min_records` records).
    pub fn ground_truth(&self, t: usize, min_records: usize) -> WeightMatrix {
        let rows = (0..self.num_edges)
            .map(|e| {
                let r = self.records_at(t, e);
                if r.len() >= min_records {
                    self.spec.build(r)
                } else {
                    None
                }
            })
            .collect();
        WeightMatrix::from_rows(rows, self.spec.buckets)
    }

    /// Ground-truth average speeds for interval `t`.
    pub fn average_truth(&self, t: usize, min_records: usize) -> Vec<Option<f64>> {
        (0..self.num_edges)
            .map(|e| {
                let r = self.records_at(t, e);
                (r.len() >= min_records).then(|| r.iter().sum::<f64>() / r.len() as f64)
            })
            .collect()
    }

    /// The HA baseline / reference distribution: one histogram per edge
    /// from *all* records in the given (training) intervals.
    pub fn historical_average(&self, intervals: &[usize]) -> Vec<Option<Vec<f64>>> {
        let mut per_edge: Vec<Vec<f64>> = vec![Vec::new(); self.num_edges];
        for &t in intervals {
            for (e, speeds) in per_edge.iter_mut().enumerate() {
                speeds.extend_from_slice(self.records_at(t, e));
            }
        }
        per_edge.into_iter().map(|r| self.spec.build(&r)).collect()
    }

    /// Historical average speeds (scalar HA for the AVG functionality).
    pub fn historical_average_speed(&self, intervals: &[usize]) -> Vec<Option<f64>> {
        let mut sums = vec![0.0; self.num_edges];
        let mut counts = vec![0usize; self.num_edges];
        for &t in intervals {
            for e in 0..self.num_edges {
                for &s in self.records_at(t, e) {
                    sums[e] += s;
                    counts[e] += 1;
                }
            }
        }
        (0..self.num_edges).map(|e| (counts[e] > 0).then(|| sums[e] / counts[e] as f64)).collect()
    }

    /// Builds the evaluation dataset for a removal ratio `rm`
    /// (§VI-A.2: remove `⌊n·rm⌋` random edges from each ground-truth
    /// matrix; 5 records minimum for instantiating a weight).
    pub fn to_dataset(&self, rm: f64, min_records: usize, seed: u64) -> Dataset {
        let mut rng = seeded(seed);
        let snapshots = (0..self.num_intervals())
            .map(|t| {
                let truth = self.ground_truth(t, min_records);
                let input = truth.remove_random(rm, &mut rng);
                let context = Context {
                    time_of_day: self.time_of_day[t],
                    day_of_week: self.day_of_week[t],
                    intervals_per_day: self.intervals_per_day,
                    row_flags: input.row_flags(),
                };
                Snapshot {
                    index: t,
                    context,
                    input,
                    truth,
                    avg_truth: self.average_truth(t, min_records),
                }
            })
            .collect();
        Dataset {
            snapshots,
            spec: self.spec,
            num_edges: self.num_edges,
            intervals_per_day: self.intervals_per_day,
            removal_ratio: rm,
        }
    }
}

impl Dataset {
    /// Number of snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// True when the dataset has no snapshots.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Splits the time-ordered snapshots into `k` contiguous folds and
    /// returns the `k` train/test splits of §VI-A.2 (each fold is the
    /// test set once).
    pub fn cv_folds(&self, k: usize) -> Vec<Fold> {
        assert!(k >= 2, "need at least 2 folds");
        let n = self.snapshots.len();
        assert!(n >= k, "not enough snapshots for {k} folds");
        let bounds: Vec<usize> = (0..=k).map(|i| i * n / k).collect();
        (0..k)
            .map(|fold| {
                let (lo, hi) = (bounds[fold], bounds[fold + 1]);
                let test: Vec<usize> = (lo..hi).collect();
                let train: Vec<usize> = (0..n).filter(|i| *i < lo || *i >= hi).collect();
                Fold { train, test }
            })
            .collect()
    }

    /// For prediction (§VI-A.3): the label snapshot of input `i` is
    /// snapshot `i + 1`, when it exists.
    pub fn prediction_label(&self, i: usize) -> Option<&Snapshot> {
        self.snapshots.get(i + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::highway_tollgate;
    use crate::histogram::is_valid_histogram;
    use crate::sim::{simulate, SimConfig};

    fn data() -> TrafficData {
        let hw = highway_tollgate(1);
        let cfg = SimConfig { days: 2, intervals_per_day: 12, ..Default::default() };
        simulate(&hw, HistogramSpec::hist8(), &cfg)
    }

    #[test]
    fn ground_truth_respects_min_records() {
        let d = data();
        let gt = d.ground_truth(5, 5);
        for e in 0..d.num_edges {
            let covered = d.records_at(5, e).len() >= 5;
            assert_eq!(gt.is_covered(e), covered);
            if let Some(h) = gt.row(e) {
                assert!(is_valid_histogram(h, 1e-9));
            }
        }
    }

    #[test]
    fn dataset_rows_removed() {
        let d = data();
        let ds = d.to_dataset(0.5, 5, 42);
        assert_eq!(ds.len(), 24);
        for s in &ds.snapshots {
            // Input coverage is a subset of truth coverage.
            for e in 0..ds.num_edges {
                if s.input.is_covered(e) {
                    assert!(s.truth.is_covered(e));
                }
            }
            // At least floor(n/2) rows are uncovered in the input.
            assert!(s.input.num_covered() <= ds.num_edges - ds.num_edges / 2);
        }
    }

    #[test]
    fn context_matches_calendar() {
        let d = data();
        let ds = d.to_dataset(0.5, 5, 42);
        assert_eq!(ds.snapshots[13].context.time_of_day, 1);
        assert_eq!(ds.snapshots[13].context.day_of_week, 1);
        assert_eq!(ds.snapshots[13].context.row_flags, ds.snapshots[13].input.row_flags());
    }

    #[test]
    fn cv_folds_partition_time() {
        let d = data();
        let ds = d.to_dataset(0.5, 5, 1);
        let folds = ds.cv_folds(5);
        assert_eq!(folds.len(), 5);
        let mut covered = vec![false; ds.len()];
        for f in &folds {
            for &t in &f.test {
                assert!(!covered[t], "snapshot {t} tested twice");
                covered[t] = true;
            }
            // Disjoint train/test.
            for &t in &f.test {
                assert!(!f.train.contains(&t));
            }
            assert_eq!(f.train.len() + f.test.len(), ds.len());
        }
        assert!(covered.iter().all(|&c| c), "every snapshot tested once");
    }

    #[test]
    fn historical_average_is_valid() {
        let d = data();
        let ha = d.historical_average(&(0..d.num_intervals()).collect::<Vec<_>>());
        let any = ha.iter().flatten().count();
        assert!(any > 0, "some edges must have HA");
        for h in ha.iter().flatten() {
            assert!(is_valid_histogram(h, 1e-9));
        }
    }

    #[test]
    fn average_truth_matches_record_means() {
        let d = data();
        let avg = d.average_truth(3, 1);
        for e in 0..d.num_edges {
            let r = d.records_at(3, e);
            match avg[e] {
                Some(m) => {
                    let expect = r.iter().sum::<f64>() / r.len() as f64;
                    assert!((m - expect).abs() < 1e-12);
                }
                None => assert!(r.is_empty()),
            }
        }
    }

    #[test]
    fn prediction_label_is_next_interval() {
        let d = data();
        let ds = d.to_dataset(0.6, 5, 9);
        assert_eq!(ds.prediction_label(0).unwrap().index, 1);
        assert!(ds.prediction_label(ds.len() - 1).is_none());
    }
}
