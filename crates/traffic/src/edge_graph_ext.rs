//! Dense-subnetwork selection (paper §VI-A.1).
//!
//! The paper keeps "a dense subgraph with 172 edges where almost all
//! edges have GPS data in most time intervals": it ranks edges by data
//! volume, forms the connected subgraphs of the popular edges, and keeps
//! the largest. We implement this as a greedy best-first growth on the
//! edge graph: seed at the most popular edge and repeatedly absorb the
//! most popular frontier edge, which yields a connected subnetwork of
//! exactly the target size biased towards high-popularity edges.

use gcwc_graph::EdgeGraph;

/// Selects a connected subset of `target` nodes of the edge graph,
/// greedily maximising popularity. Returns node indices in ascending
/// order.
///
/// # Panics
/// Panics if the component containing the most popular edge has fewer
/// than `target` nodes.
pub fn greedy_dense_subset(graph: &EdgeGraph, popularity: &[f64], target: usize) -> Vec<usize> {
    let n = graph.num_nodes();
    assert_eq!(popularity.len(), n, "popularity length mismatch");
    assert!(target >= 1 && target <= n, "target {target} out of range 1..={n}");

    let seed = (0..n)
        .max_by(|&a, &b| popularity[a].partial_cmp(&popularity[b]).expect("finite popularity"))
        .expect("non-empty graph");

    let mut chosen = vec![false; n];
    let mut in_frontier = vec![false; n];
    let mut frontier: Vec<usize> = Vec::new();
    chosen[seed] = true;
    let mut count = 1;
    for &v in graph.neighbors(seed) {
        in_frontier[v] = true;
        frontier.push(v);
    }
    while count < target {
        // Most popular frontier edge (ties by lowest index for
        // determinism).
        let best_pos = frontier
            .iter()
            .enumerate()
            .max_by(|(_, &a), (_, &b)| {
                popularity[a]
                    .partial_cmp(&popularity[b])
                    .expect("finite popularity")
                    .then(b.cmp(&a))
            })
            .map(|(pos, _)| pos)
            .unwrap_or_else(|| {
                panic!("component exhausted at {count} nodes; target {target} unreachable")
            });
        let u = frontier.swap_remove(best_pos);
        in_frontier[u] = false;
        chosen[u] = true;
        count += 1;
        for &v in graph.neighbors(u) {
            if !chosen[v] && !in_frontier[v] {
                in_frontier[v] = true;
                frontier.push(v);
            }
        }
    }
    (0..n).filter(|&i| chosen[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcwc_linalg::CsrMatrix;

    fn path_graph(n: usize) -> EdgeGraph {
        EdgeGraph::from_adjacency(CsrMatrix::from_triplets(
            n,
            n,
            (0..n - 1).flat_map(|i| [(i, i + 1, 1.0), (i + 1, i, 1.0)]),
        ))
    }

    #[test]
    fn selects_exactly_target_connected() {
        let g = path_graph(10);
        let pop: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let subset = greedy_dense_subset(&g, &pop, 4);
        assert_eq!(subset, vec![6, 7, 8, 9]); // grows from node 9 backwards
        let sub = g.induced_subgraph(&subset);
        assert_eq!(sub.largest_component().len(), 4);
    }

    #[test]
    fn full_target_returns_all() {
        let g = path_graph(5);
        let pop = vec![1.0; 5];
        assert_eq!(greedy_dense_subset(&g, &pop, 5), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn prefers_popular_branch() {
        // Star: node 0 centre, leaves 1..=4; leaf 3 most popular.
        let g = EdgeGraph::from_adjacency(CsrMatrix::from_triplets(
            5,
            5,
            (1..5).flat_map(|i| [(0, i, 1.0), (i, 0, 1.0)]),
        ));
        let pop = vec![5.0, 0.1, 0.2, 4.0, 0.3];
        let subset = greedy_dense_subset(&g, &pop, 2);
        assert_eq!(subset, vec![0, 3]);
    }

    #[test]
    #[should_panic(expected = "unreachable")]
    fn disconnected_component_too_small_panics() {
        // Two components of size 2 and 1.
        let g =
            EdgeGraph::from_adjacency(CsrMatrix::from_triplets(3, 3, [(0, 1, 1.0), (1, 0, 1.0)]));
        let pop = vec![1.0, 2.0, 100.0]; // most popular node is isolated
        greedy_dense_subset(&g, &pop, 2);
    }
}
