//! Contextual features for A-GCWC (§V-A): time-of-day `X_T`,
//! day-of-week `X_D`, and the row-flag vector `X_R`.

/// The context attached to one weight matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Context {
    /// Interval within the day, `0..intervals_per_day`.
    pub time_of_day: usize,
    /// Day of the week, `0..7` (0 = Monday).
    pub day_of_week: usize,
    /// Number of intervals per day (96 in the paper).
    pub intervals_per_day: usize,
    /// Row flags: `1.0` for edges covered by traffic data.
    pub row_flags: Vec<f64>,
}

impl Context {
    /// One-hot encoding of the time interval (`X_T`, length
    /// `intervals_per_day`).
    pub fn time_one_hot(&self) -> Vec<f64> {
        one_hot(self.time_of_day, self.intervals_per_day)
    }

    /// One-hot encoding of the weekday (`X_D`, length 7).
    pub fn day_one_hot(&self) -> Vec<f64> {
        one_hot(self.day_of_week, 7)
    }

    /// Whether this context falls on a weekend.
    pub fn is_weekend(&self) -> bool {
        self.day_of_week >= 5
    }
}

fn one_hot(index: usize, len: usize) -> Vec<f64> {
    assert!(index < len, "one-hot index {index} out of range {len}");
    let mut v = vec![0.0; len];
    v[index] = 1.0;
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> Context {
        Context {
            time_of_day: 2,
            day_of_week: 6,
            intervals_per_day: 96,
            row_flags: vec![1.0, 0.0, 1.0],
        }
    }

    #[test]
    fn time_one_hot_sets_single_bit() {
        let v = ctx().time_one_hot();
        assert_eq!(v.len(), 96);
        assert_eq!(v.iter().sum::<f64>(), 1.0);
        assert_eq!(v[2], 1.0);
    }

    #[test]
    fn day_one_hot() {
        let v = ctx().day_one_hot();
        assert_eq!(v.len(), 7);
        assert_eq!(v[6], 1.0);
    }

    #[test]
    fn weekend_detection() {
        assert!(ctx().is_weekend());
        let weekday = Context { day_of_week: 2, ..ctx() };
        assert!(!weekday.is_weekend());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_interval_panics() {
        let bad = Context { time_of_day: 96, ..ctx() };
        bad.time_one_hot();
    }
}
