//! Per-partition dataset views: restrict weight matrices, contexts,
//! snapshots, and whole datasets to one partition's owned + halo rows
//! via a [`RowView`] from `gcwc-graph`.
//!
//! Views re-index rows only — histogram buckets, time context, and
//! fold structure are untouched — so a sharded model sees exactly the
//! same data the unsharded model sees on those rows. Identity views
//! (K = 1) produce clones bit-identical to the originals.

use gcwc_graph::RowView;

use crate::context::Context;
use crate::dataset::{Dataset, Snapshot};
use crate::weights::WeightMatrix;

/// Restricts a context to the view's local rows (`X_R` row flags are
/// gathered; time/day context is global and passes through).
pub fn view_context(view: &RowView, ctx: &Context) -> Context {
    Context {
        time_of_day: ctx.time_of_day,
        day_of_week: ctx.day_of_week,
        intervals_per_day: ctx.intervals_per_day,
        row_flags: view.select_slice(&ctx.row_flags),
    }
}

/// Restricts a weight matrix to the view's local rows, carrying the
/// per-row coverage flags along.
pub fn view_weights(view: &RowView, w: &WeightMatrix) -> WeightMatrix {
    let covered = view.local_to_global().iter().map(|&g| w.is_covered(g)).collect();
    WeightMatrix::new(view.select(w.matrix()), covered)
}

/// Restricts one snapshot to the view's local rows.
pub fn view_snapshot(view: &RowView, snap: &Snapshot) -> Snapshot {
    Snapshot {
        index: snap.index,
        context: view_context(view, &snap.context),
        input: view_weights(view, &snap.input),
        truth: view_weights(view, &snap.truth),
        avg_truth: view.local_to_global().iter().map(|&g| snap.avg_truth[g]).collect(),
    }
}

/// Restricts a whole dataset to the view's local rows. Snapshot order,
/// histogram spec, interval structure, and removal ratio are preserved,
/// so fold indices computed on the global dataset remain valid.
pub fn view_dataset(view: &RowView, ds: &Dataset) -> Dataset {
    Dataset {
        snapshots: ds.snapshots.iter().map(|s| view_snapshot(view, s)).collect(),
        spec: ds.spec,
        num_edges: view.num_local(),
        intervals_per_day: ds.intervals_per_day,
        removal_ratio: ds.removal_ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcwc_linalg::Matrix;

    fn snapshot(n: usize, m: usize) -> Snapshot {
        let hist = Matrix::from_fn(n, m, |i, j| (i * m + j) as f64);
        let covered: Vec<bool> = (0..n).map(|i| i % 3 != 0).collect();
        Snapshot {
            index: 7,
            context: Context {
                time_of_day: 3,
                day_of_week: 2,
                intervals_per_day: 96,
                row_flags: covered.iter().map(|&c| if c { 1.0 } else { 0.0 }).collect(),
            },
            input: WeightMatrix::new(hist.clone(), covered.clone()),
            truth: WeightMatrix::new(hist, covered),
            avg_truth: (0..n).map(|i| if i % 2 == 0 { Some(i as f64) } else { None }).collect(),
        }
    }

    #[test]
    fn identity_view_is_verbatim() {
        let snap = snapshot(6, 4);
        let view = RowView::identity(6);
        let local = view_snapshot(&view, &snap);
        assert_eq!(local.input.matrix(), snap.input.matrix());
        assert_eq!(local.context.row_flags, snap.context.row_flags);
        assert_eq!(local.avg_truth, snap.avg_truth);
    }

    #[test]
    fn view_gathers_rows_in_local_order() {
        let snap = snapshot(6, 4);
        // Owned rows {4, 1}, halo row {5}: local order is owned-sorted
        // then halo-sorted, i.e. [1, 4, 5].
        let view = RowView::new(vec![1, 4, 5], 2);
        let local = view_snapshot(&view, &snap);
        assert_eq!(local.input.matrix().row(0), snap.input.matrix().row(1));
        assert_eq!(local.input.matrix().row(2), snap.input.matrix().row(5));
        assert_eq!(local.input.is_covered(0), snap.input.is_covered(1));
        assert_eq!(local.avg_truth, vec![None, Some(4.0), None]);
        assert_eq!(local.context.time_of_day, snap.context.time_of_day);
    }

    #[test]
    fn view_dataset_keeps_structure() {
        let ds = Dataset {
            snapshots: vec![snapshot(6, 4), snapshot(6, 4)],
            spec: crate::histogram::HistogramSpec::hist4(),
            num_edges: 6,
            intervals_per_day: 96,
            removal_ratio: 0.4,
        };
        let view = RowView::new(vec![0, 2, 3], 2);
        let local = view_dataset(&view, &ds);
        assert_eq!(local.snapshots.len(), 2);
        assert_eq!(local.num_edges, 3);
        assert_eq!(local.intervals_per_day, 96);
        assert_eq!(local.removal_ratio, 0.4);
    }
}
