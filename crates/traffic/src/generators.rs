//! Synthetic road networks standing in for the paper's proprietary data
//! sources (see DESIGN.md §2).
//!
//! * [`highway_tollgate`] — a 24-link highway tollgate corridor matching
//!   the HW dataset's graph size (loop detectors: near-complete,
//!   high-volume coverage).
//! * [`city_network`] — a city grid from which the densest connected
//!   172-edge subnetwork is selected by the paper's own §VI-A.1
//!   procedure (top-popularity edges → largest connected subgraph →
//!   greedy densest growth).
//! * [`scaled_city`] — the ×10…×50 enlarged networks of Figure 6.

use gcwc_linalg::rng::{normal, seeded};
use gcwc_linalg::CsrMatrix;
use rand::rngs::StdRng;

use crate::edge_graph_ext::greedy_dense_subset;
use gcwc_graph::{EdgeGraph, RoadClass, RoadNetwork};

/// A road network together with its edge graph and per-edge traffic
/// popularity (relative data volume, mean 1).
#[derive(Clone, Debug)]
pub struct NetworkInstance {
    /// The road network (only the retained edges).
    pub net: RoadNetwork,
    /// Its edge graph.
    pub graph: EdgeGraph,
    /// Per-edge popularity, normalised to mean 1.
    pub popularity: Vec<f64>,
}

impl NetworkInstance {
    /// Number of edges `n`.
    pub fn num_edges(&self) -> usize {
        self.graph.num_nodes()
    }
}

/// Builds the 24-link highway tollgate network (HW stand-in): a two-way
/// mainline with tollgate plazas and ramps.
pub fn highway_tollgate(seed: u64) -> NetworkInstance {
    let mut net = RoadNetwork::new();
    // Mainline corridor v0..v5 (spacing 2 km).
    let main: Vec<usize> = (0..6).map(|i| net.add_vertex(i as f64 * 2_000.0, 0.0)).collect();
    for w in main.windows(2) {
        net.add_two_way(w[0], w[1], RoadClass::Highway); // 10 edges
    }
    // Tollgate plazas off v1 and v4.
    let g1 = net.add_vertex(2_000.0, 800.0);
    net.add_two_way(main[1], g1, RoadClass::Arterial); // 12
    let g2 = net.add_vertex(8_000.0, -800.0);
    net.add_two_way(main[4], g2, RoadClass::Arterial); // 14
                                                       // Ramps off v2 and v3.
    let r1 = net.add_vertex(4_000.0, 600.0);
    net.add_two_way(main[2], r1, RoadClass::Arterial); // 16
    let r2 = net.add_vertex(6_000.0, -600.0);
    net.add_two_way(main[3], r2, RoadClass::Arterial); // 18
                                                       // Corridor extension with a third gate.
    let e1 = net.add_vertex(12_000.0, 0.0);
    net.add_two_way(main[5], e1, RoadClass::Highway); // 20
    let e2 = net.add_vertex(14_000.0, 0.0);
    net.add_two_way(e1, e2, RoadClass::Highway); // 22
    let g3 = net.add_vertex(12_000.0, 800.0);
    net.add_two_way(e1, g3, RoadClass::Arterial); // 24
    assert_eq!(net.num_edges(), 24);

    let graph = EdgeGraph::from_road_network(&net);
    // Loop detectors: popularity nearly uniform, mild volume differences
    // between mainline and ramps.
    let mut rng = seeded(seed);
    let popularity = normalize_mean_one(
        (0..net.num_edges())
            .map(|i| {
                let base = match net.edge(i).class {
                    RoadClass::Highway => 1.3,
                    _ => 0.8,
                };
                base * (1.0 + 0.1 * normal(&mut rng)).max(0.3)
            })
            .collect(),
    );
    NetworkInstance { net, graph, popularity }
}

/// Builds a two-way `rows × cols` grid city; every third street is an
/// arterial, the rest local roads. Block size 400 m.
pub fn city_grid(rows: usize, cols: usize) -> RoadNetwork {
    let mut net = RoadNetwork::new();
    let mut ids = vec![vec![0usize; cols]; rows];
    for (r, row_ids) in ids.iter_mut().enumerate() {
        for (c, id) in row_ids.iter_mut().enumerate() {
            *id = net.add_vertex(c as f64 * 400.0, r as f64 * 400.0);
        }
    }
    for r in 0..rows {
        for c in 0..cols {
            let class_h = if r % 3 == 0 { RoadClass::Arterial } else { RoadClass::Local };
            let class_v = if c % 3 == 0 { RoadClass::Arterial } else { RoadClass::Local };
            if c + 1 < cols {
                net.add_two_way(ids[r][c], ids[r][c + 1], class_h);
            }
            if r + 1 < rows {
                net.add_two_way(ids[r][c], ids[r + 1][c], class_v);
            }
        }
    }
    net
}

/// Builds the CI stand-in: a 10×10 grid city with skewed GPS popularity,
/// reduced to its densest connected 172-edge subnetwork following the
/// paper's §VI-A.1 selection (popularity-ranked seed, connected greedy
/// growth).
pub fn city_network(seed: u64) -> NetworkInstance {
    city_network_sized(seed, 172)
}

/// [`city_network`] with a custom target edge count (tests, ablations).
pub fn city_network_sized(seed: u64, target_edges: usize) -> NetworkInstance {
    let full = city_grid(10, 10);
    let full_graph = EdgeGraph::from_road_network(&full);
    let mut rng = seeded(seed);
    // GPS data is skewed (log-normal popularity): arterials see far more
    // taxis than local roads.
    let popularity_full: Vec<f64> = (0..full.num_edges())
        .map(|i| {
            let class_bias = match full.edge(i).class {
                RoadClass::Arterial => 1.0,
                _ => 0.0,
            };
            (0.9 * normal(&mut rng) + class_bias).exp()
        })
        .collect();

    let keep = greedy_dense_subset(&full_graph, &popularity_full, target_edges);
    let (net, original) = full.edge_subnetwork(&keep);
    let graph = full_graph.induced_subgraph(&keep);
    let popularity = normalize_mean_one(original.iter().map(|&i| popularity_full[i]).collect());
    assert_eq!(net.num_edges(), target_edges);
    NetworkInstance { net, graph, popularity }
}

/// Enlarges the city edge graph by tiling `scale` copies connected in a
/// chain (Figure 6's ×10…×50 networks). Consecutive tiles are linked
/// through three bridge connections so the result stays connected.
pub fn scaled_city(base: &EdgeGraph, scale: usize) -> EdgeGraph {
    assert!(scale >= 1, "scale must be positive");
    let n = base.num_nodes();
    let mut triplets = Vec::new();
    for t in 0..scale {
        let off = t * n;
        for (i, j, v) in base.adjacency().iter() {
            triplets.push((off + i, off + j, v));
        }
        if t + 1 < scale {
            let next = (t + 1) * n;
            for b in 0..3.min(n) {
                triplets.push((off + b, next + b, 1.0));
                triplets.push((next + b, off + b, 1.0));
            }
        }
    }
    EdgeGraph::from_adjacency(CsrMatrix::from_triplets(n * scale, n * scale, triplets))
}

fn normalize_mean_one(mut v: Vec<f64>) -> Vec<f64> {
    let mean = v.iter().sum::<f64>() / v.len() as f64;
    for x in &mut v {
        *x /= mean;
    }
    v
}

/// Generates popularity for an arbitrary edge count (scalability runs on
/// tiled graphs that have no underlying road network).
pub fn synthetic_popularity(n: usize, skew: f64, rng: &mut StdRng) -> Vec<f64> {
    normalize_mean_one((0..n).map(|_| (skew * normal(rng)).exp()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn highway_has_24_connected_edges() {
        let hw = highway_tollgate(1);
        assert_eq!(hw.num_edges(), 24);
        assert_eq!(hw.graph.largest_component().len(), 24);
        let mean: f64 = hw.popularity.iter().sum::<f64>() / 24.0;
        assert!((mean - 1.0).abs() < 1e-9);
    }

    #[test]
    fn city_has_172_connected_edges() {
        let ci = city_network(2);
        assert_eq!(ci.num_edges(), 172);
        assert_eq!(ci.graph.largest_component().len(), 172);
    }

    #[test]
    fn city_popularity_is_skewed() {
        let ci = city_network(3);
        let max = ci.popularity.iter().cloned().fold(0.0, f64::max);
        let min = ci.popularity.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min > 3.0, "expected skewed popularity, got {min}..{max}");
    }

    #[test]
    fn grid_edge_count() {
        let g = city_grid(3, 3);
        // 2*3 horizontal + 2*3 vertical segments, two-way: 24 edges.
        assert_eq!(g.num_edges(), 24);
    }

    #[test]
    fn scaled_city_is_connected_and_sized() {
        let ci = city_network(4);
        let s = scaled_city(&ci.graph, 3);
        assert_eq!(s.num_nodes(), 172 * 3);
        assert_eq!(s.largest_component().len(), 172 * 3);
    }

    #[test]
    fn scaled_city_scale_one_is_identity() {
        let ci = city_network(5);
        let s = scaled_city(&ci.graph, 1);
        assert_eq!(s.adjacency_dense(), ci.graph.adjacency_dense());
    }

    #[test]
    fn deterministic_generation() {
        let a = city_network(9);
        let b = city_network(9);
        assert_eq!(a.popularity, b.popularity);
        assert_eq!(a.graph.adjacency_dense(), b.graph.adjacency_dense());
    }
}
