//! Terminal visualisation helpers: ASCII histograms and sparklines for
//! inspecting stochastic weights (used by the examples and handy in a
//! REPL / debugger).

use crate::histogram::HistogramSpec;

/// Renders a speed histogram as a labelled horizontal bar chart.
pub fn histogram_bars(hist: &[f64], spec: &HistogramSpec, width: usize) -> String {
    assert_eq!(hist.len(), spec.buckets, "histogram length mismatch");
    let max = hist.iter().cloned().fold(0.0f64, f64::max).max(1e-12);
    let mut out = String::new();
    for (b, &p) in hist.iter().enumerate() {
        let lo = spec.min_speed + b as f64 * spec.bucket_width();
        let hi = lo + spec.bucket_width();
        let bar_len = ((p / max) * width as f64).round() as usize;
        out.push_str(&format!("[{lo:>4.0}-{hi:<4.0} m/s] {p:>5.2} {}\n", "#".repeat(bar_len)));
    }
    out
}

/// Renders a sequence of values as a one-line Unicode sparkline.
pub fn sparkline(values: &[f64]) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let span = (hi - lo).max(1e-12);
    values
        .iter()
        .map(|&v| {
            let idx = (((v - lo) / span) * 7.0).round() as usize;
            BLOCKS[idx.min(7)]
        })
        .collect()
}

/// Renders a compact comparison row: name, value, and a bar scaled
/// against `max_value`.
pub fn metric_bar(name: &str, value: f64, max_value: f64, width: usize) -> String {
    let frac = (value / max_value.max(1e-12)).clamp(0.0, 1.0);
    let bar = "#".repeat((frac * width as f64).round() as usize);
    format!("{name:<10} {value:>7.3} {bar}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bars_shape() {
        let spec = HistogramSpec::hist4();
        let out = histogram_bars(&[0.5, 0.25, 0.25, 0.0], &spec, 20);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("0-10"));
        // The dominant bucket gets the full-width bar.
        assert!(lines[0].matches('#').count() == 20);
        assert!(lines[3].matches('#').count() == 0);
    }

    #[test]
    fn sparkline_maps_extremes() {
        let s = sparkline(&[0.0, 1.0, 0.5]);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars.len(), 3);
        assert_eq!(chars[0], '▁');
        assert_eq!(chars[1], '█');
    }

    #[test]
    fn sparkline_constant_series_is_flat() {
        let s = sparkline(&[2.0, 2.0, 2.0]);
        assert_eq!(s.chars().collect::<Vec<_>>(), vec!['▁', '▁', '▁']);
    }

    #[test]
    fn sparkline_empty_is_empty() {
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn metric_bar_scales() {
        let full = metric_bar("GCWC", 1.0, 1.0, 10);
        assert!(full.ends_with("##########"));
        let half = metric_bar("HA", 0.5, 1.0, 10);
        assert_eq!(half.matches('#').count(), 5);
    }
}
