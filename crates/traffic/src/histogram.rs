//! Equi-width speed histograms (the paper's stochastic weights, §III-B).

/// Specification of an equi-width speed histogram.
///
/// ```
/// use gcwc_traffic::HistogramSpec;
/// let spec = HistogramSpec::hist8(); // 8 buckets of 5 m/s over [0, 40)
/// let hist = spec.build(&[3.0, 4.0, 11.0, 12.0]).unwrap();
/// assert_eq!(hist, vec![0.5, 0.0, 0.5, 0.0, 0.0, 0.0, 0.0, 0.0]);
/// assert_eq!(spec.mean_speed(&hist), (2.5 + 12.5) / 2.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistogramSpec {
    /// Lower bound of the first bucket (m/s).
    pub min_speed: f64,
    /// Upper bound of the last bucket (m/s).
    pub max_speed: f64,
    /// Number of buckets `m`.
    pub buckets: usize,
}

impl HistogramSpec {
    /// The paper's HIST-8 setting: 8 buckets of 5 m/s over `[0, 40)`.
    pub fn hist8() -> Self {
        Self { min_speed: 0.0, max_speed: 40.0, buckets: 8 }
    }

    /// The paper's HIST-4 setting: 4 buckets of 10 m/s over `[0, 40)`.
    pub fn hist4() -> Self {
        Self { min_speed: 0.0, max_speed: 40.0, buckets: 4 }
    }

    /// Width of each bucket.
    pub fn bucket_width(&self) -> f64 {
        (self.max_speed - self.min_speed) / self.buckets as f64
    }

    /// The bucket index for a speed, clamping out-of-range speeds into
    /// the edge buckets.
    pub fn bucket_of(&self, speed: f64) -> usize {
        let w = self.bucket_width();
        let raw = ((speed - self.min_speed) / w).floor();
        (raw.max(0.0) as usize).min(self.buckets - 1)
    }

    /// Midpoint speed of bucket `b`.
    pub fn bucket_midpoint(&self, b: usize) -> f64 {
        assert!(b < self.buckets, "bucket {b} out of range");
        self.min_speed + (b as f64 + 0.5) * self.bucket_width()
    }

    /// Builds a normalised histogram from raw speed records.
    ///
    /// Returns `None` when `records` is empty (no distribution can be
    /// instantiated).
    pub fn build(&self, records: &[f64]) -> Option<Vec<f64>> {
        if records.is_empty() {
            return None;
        }
        let mut h = vec![0.0; self.buckets];
        for &r in records {
            h[self.bucket_of(r)] += 1.0;
        }
        let total = records.len() as f64;
        for v in &mut h {
            *v /= total;
        }
        Some(h)
    }

    /// Probability that a histogram assigns to observing `speed`
    /// (its bucket's probability mass).
    pub fn likelihood(&self, hist: &[f64], speed: f64) -> f64 {
        assert_eq!(hist.len(), self.buckets, "histogram length mismatch");
        hist[self.bucket_of(speed)]
    }

    /// Expected speed under a histogram (bucket midpoints).
    pub fn mean_speed(&self, hist: &[f64]) -> f64 {
        assert_eq!(hist.len(), self.buckets, "histogram length mismatch");
        hist.iter().enumerate().map(|(b, &p)| p * self.bucket_midpoint(b)).sum()
    }
}

/// Whether a vector is a valid histogram: non-negative and summing to 1
/// within `tol`.
pub fn is_valid_histogram(hist: &[f64], tol: f64) -> bool {
    hist.iter().all(|&p| p >= -tol) && (hist.iter().sum::<f64>() - 1.0).abs() <= tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hist8_shape() {
        let s = HistogramSpec::hist8();
        assert_eq!(s.buckets, 8);
        assert_eq!(s.bucket_width(), 5.0);
        assert_eq!(s.bucket_of(0.0), 0);
        assert_eq!(s.bucket_of(4.99), 0);
        assert_eq!(s.bucket_of(5.0), 1);
        assert_eq!(s.bucket_of(39.9), 7);
    }

    #[test]
    fn out_of_range_clamps() {
        let s = HistogramSpec::hist8();
        assert_eq!(s.bucket_of(-3.0), 0);
        assert_eq!(s.bucket_of(55.0), 7);
    }

    #[test]
    fn build_normalises() {
        let s = HistogramSpec::hist4();
        let h = s.build(&[1.0, 2.0, 11.0, 25.0]).unwrap();
        assert_eq!(h, vec![0.5, 0.25, 0.25, 0.0]);
        assert!(is_valid_histogram(&h, 1e-12));
    }

    #[test]
    fn build_empty_is_none() {
        assert!(HistogramSpec::hist8().build(&[]).is_none());
    }

    #[test]
    fn paper_figure1_example() {
        // e5's histogram over [5,10), [10,15), [15,20) with probabilities
        // 0.3 / 0.5 / 0.2: three of ten records in [5,10), five in
        // [10,15), two in [15,20).
        let s = HistogramSpec { min_speed: 5.0, max_speed: 20.0, buckets: 3 };
        let records = [6.0, 7.0, 8.0, 11.0, 12.0, 12.5, 13.0, 14.0, 16.0, 18.0];
        let h = s.build(&records).unwrap();
        assert_eq!(h, vec![0.3, 0.5, 0.2]);
    }

    #[test]
    fn likelihood_reads_bucket_mass() {
        let s = HistogramSpec::hist4();
        let h = vec![0.5, 0.25, 0.25, 0.0];
        assert_eq!(s.likelihood(&h, 3.0), 0.5);
        assert_eq!(s.likelihood(&h, 35.0), 0.0);
    }

    #[test]
    fn mean_speed_midpoints() {
        let s = HistogramSpec::hist4();
        // All mass in bucket 1 ([10, 20)) -> mean = 15.
        let h = vec![0.0, 1.0, 0.0, 0.0];
        assert_eq!(s.mean_speed(&h), 15.0);
        // Uniform -> overall midpoint 20.
        let u = vec![0.25; 4];
        assert_eq!(s.mean_speed(&u), 20.0);
    }

    #[test]
    fn valid_histogram_detection() {
        assert!(is_valid_histogram(&[0.2, 0.8], 1e-9));
        assert!(!is_valid_histogram(&[0.2, 0.7], 1e-9));
        assert!(!is_valid_histogram(&[-0.1, 1.1], 1e-9));
    }
}
