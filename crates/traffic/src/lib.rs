//! # gcwc-traffic
//!
//! Traffic-data substrate for the GCWC reproduction: synthetic road
//! networks standing in for the paper's HW (highway tollgate loop
//! detectors) and CI (Chengdu taxi GPS) datasets, a stochastic traffic
//! simulator with spatially correlated congestion, equi-width speed
//! histograms, stochastic weight matrices with the §VI-A.2 removal
//! protocol, contexts, and time-ordered cross-validation datasets.

#![warn(missing_docs)]

pub mod context;
pub mod dataset;
pub mod edge_graph_ext;
pub mod generators;
pub mod gmm;
pub mod histogram;
pub mod io;
pub mod sim;
pub mod view;
pub mod viz;
pub mod weights;

pub use context::Context;
pub use dataset::{Dataset, Fold, Snapshot};
pub use gcwc_graph::{RoadClass, RoadNetwork};
pub use generators::NetworkInstance;
pub use gmm::GaussianMixture;
pub use histogram::HistogramSpec;
pub use sim::{simulate, SimConfig, TrafficData};
pub use view::{view_context, view_dataset, view_snapshot, view_weights};
pub use weights::WeightMatrix;
