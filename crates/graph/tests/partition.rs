//! Property tests for edge-owned partitioning: ownership is a
//! partition of the node set, halos are exactly the 1-hop
//! out-of-partition neighbourhood, local→global maps round-trip, and
//! local subgraphs restrict the global adjacency — over random graphs
//! and K ∈ {1, 2, 4, 7}.

use gcwc_graph::{shard_seed, EdgeGraph, PartitionSet, RowView};
use gcwc_linalg::{CsrMatrix, Matrix};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Strategy: a random symmetric adjacency on `n` nodes (each undirected
/// pair present with probability ~0.3).
fn random_adjacency(max_n: usize) -> impl Strategy<Value = CsrMatrix> {
    (3usize..max_n).prop_flat_map(|n| {
        proptest::collection::vec(proptest::bool::weighted(0.3), n * (n - 1) / 2).prop_map(
            move |bits| {
                let mut triplets = Vec::new();
                let mut k = 0;
                for i in 0..n {
                    for j in i + 1..n {
                        if bits[k] {
                            triplets.push((i, j, 1.0));
                            triplets.push((j, i, 1.0));
                        }
                        k += 1;
                    }
                }
                CsrMatrix::from_triplets(n, n, triplets)
            },
        )
    })
}

fn shard_counts() -> impl Strategy<Value = usize> {
    (0usize..4).prop_map(|i| [1usize, 2, 4, 7][i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every node is owned by exactly one partition, and `owner_of`
    /// agrees with the owned lists.
    #[test]
    fn ownership_is_a_partition(a in random_adjacency(14), k in shard_counts()) {
        let g = EdgeGraph::from_adjacency(a);
        let n = g.num_nodes();
        let ps = PartitionSet::build(&g, k);
        prop_assert_eq!(ps.num_partitions(), k);
        prop_assert_eq!(ps.num_nodes(), n);
        let mut owners = vec![0usize; n];
        for (b, p) in ps.partitions().iter().enumerate() {
            for &u in p.owned() {
                owners[u] += 1;
                prop_assert_eq!(ps.owner_of(u), b);
            }
        }
        prop_assert!(owners.iter().all(|&c| c == 1), "owners: {:?}", owners);
    }

    /// Halos are exactly the 1-hop neighbourhood of the owned set
    /// minus the owned set itself.
    #[test]
    fn halo_is_exact_one_hop_neighbourhood(a in random_adjacency(14), k in shard_counts()) {
        let g = EdgeGraph::from_adjacency(a);
        let ps = PartitionSet::build(&g, k);
        for p in ps.partitions() {
            let owned: BTreeSet<usize> = p.owned().iter().copied().collect();
            let expected: BTreeSet<usize> = p
                .owned()
                .iter()
                .flat_map(|&u| g.neighbors(u).iter().copied())
                .filter(|v| !owned.contains(v))
                .collect();
            let halo: BTreeSet<usize> = p.halo().iter().copied().collect();
            prop_assert_eq!(halo, expected);
        }
    }

    /// Owned + halo local→global maps are injective, sorted within
    /// each group, and round-trip through select/scatter.
    #[test]
    fn local_global_maps_roundtrip(a in random_adjacency(14), k in shard_counts()) {
        let g = EdgeGraph::from_adjacency(a);
        let n = g.num_nodes();
        let ps = PartitionSet::build(&g, k);
        let global = Matrix::from_fn(n, 3, |i, j| (i * 7 + j) as f64 + 0.25);
        let mut gathered = Matrix::zeros(n, 3);
        for p in ps.partitions() {
            let view = p.view();
            let ltg = view.local_to_global();
            // Injective: no global row appears twice locally.
            let distinct: BTreeSet<usize> = ltg.iter().copied().collect();
            prop_assert_eq!(distinct.len(), ltg.len());
            prop_assert!(view.owned().windows(2).all(|w| w[0] < w[1]));
            prop_assert!(view.halo().windows(2).all(|w| w[0] < w[1]));
            // Select pulls the mapped rows; scatter returns the owned
            // prefix to its global rows.
            let local = view.select(&global);
            for (l, &gidx) in ltg.iter().enumerate() {
                prop_assert_eq!(local.row(l), global.row(gidx));
            }
            view.scatter_owned(&local, &mut gathered);
        }
        // All partitions together reconstruct the full matrix.
        prop_assert_eq!(gathered, global);
    }

    /// The local subgraph is exactly the induced restriction of the
    /// global adjacency to owned + halo rows; for K = 1 it matches the
    /// global graph verbatim.
    #[test]
    fn local_graphs_restrict_global(a in random_adjacency(12), k in shard_counts()) {
        let g = EdgeGraph::from_adjacency(a);
        let ps = PartitionSet::build(&g, k);
        let dense = g.adjacency_dense();
        for p in ps.partitions() {
            let ltg = p.view().local_to_global();
            let local = p.graph().adjacency_dense();
            prop_assert_eq!(local.rows(), ltg.len());
            for (li, &gi) in ltg.iter().enumerate() {
                for (lj, &gj) in ltg.iter().enumerate() {
                    prop_assert_eq!(local[(li, lj)], dense[(gi, gj)]);
                }
            }
        }
        if k == 1 {
            prop_assert!(ps.partition(0).view().is_identity());
            prop_assert_eq!(ps.partition(0).graph().adjacency_dense(), dense);
        }
    }

    /// Building twice yields identical partitions (determinism), and
    /// boundary nodes are exactly those with a foreign-owned
    /// neighbour.
    #[test]
    fn deterministic_with_consistent_boundary(a in random_adjacency(12), k in shard_counts()) {
        let g = EdgeGraph::from_adjacency(a);
        let p1 = PartitionSet::build(&g, k);
        let p2 = PartitionSet::build(&g, k);
        for (x, y) in p1.partitions().iter().zip(p2.partitions()) {
            prop_assert_eq!(x.view(), y.view());
        }
        for u in 0..g.num_nodes() {
            let expected =
                g.neighbors(u).iter().any(|&v| p1.owner_of(v) != p1.owner_of(u));
            prop_assert_eq!(p1.is_boundary(u), expected, "node {}", u);
        }
    }
}

/// A 20×43 4-connected grid — 860 nodes, the same node count the
/// scale-sweep's ×5 city reaches. Large enough that the coarsening
/// inside `pack_bins` runs several levels, unlike the small random
/// graphs above.
fn grid_860() -> EdgeGraph {
    const ROWS: usize = 20;
    const COLS: usize = 43;
    let n = ROWS * COLS;
    let mut triplets = Vec::new();
    for r in 0..ROWS {
        for c in 0..COLS {
            let u = r * COLS + c;
            if c + 1 < COLS {
                triplets.push((u, u + 1, 1.0));
                triplets.push((u + 1, u, 1.0));
            }
            if r + 1 < ROWS {
                triplets.push((u, u + COLS, 1.0));
                triplets.push((u + COLS, u, 1.0));
            }
        }
    }
    EdgeGraph::from_adjacency(CsrMatrix::from_triplets(n, n, triplets))
}

/// At the scale-sweep's n = 860, every node is owned exactly once and
/// halos are exactly the 1-hop out-of-partition neighbourhood, for
/// both a small and a non-power-of-two shard count.
#[test]
fn enlarged_grid_ownership_and_halos_are_exact() {
    let g = grid_860();
    let n = g.num_nodes();
    assert_eq!(n, 860);
    for k in [2usize, 7] {
        let ps = PartitionSet::build(&g, k);
        assert_eq!(ps.num_partitions(), k);
        assert_eq!(ps.num_nodes(), n);
        let mut owners = vec![0usize; n];
        for (b, p) in ps.partitions().iter().enumerate() {
            assert!(!p.owned().is_empty(), "empty partition {b} at k={k}");
            for &u in p.owned() {
                owners[u] += 1;
                assert_eq!(ps.owner_of(u), b);
            }
            let owned: BTreeSet<usize> = p.owned().iter().copied().collect();
            let expected: BTreeSet<usize> = p
                .owned()
                .iter()
                .flat_map(|&u| g.neighbors(u).iter().copied())
                .filter(|v| !owned.contains(v))
                .collect();
            let halo: BTreeSet<usize> = p.halo().iter().copied().collect();
            assert_eq!(halo, expected, "halo mismatch in partition {b} at k={k}");
        }
        assert!(owners.iter().all(|&c| c == 1), "k={k}: every node owned exactly once");
    }
}

/// Partitioning the 860-node grid is deterministic across rebuilds.
#[test]
fn enlarged_grid_partitioning_is_deterministic() {
    let g = grid_860();
    for k in [2usize, 7] {
        let p1 = PartitionSet::build(&g, k);
        let p2 = PartitionSet::build(&g, k);
        for (x, y) in p1.partitions().iter().zip(p2.partitions()) {
            assert_eq!(x.view(), y.view());
        }
    }
}

/// Shard seeds are pure in `(seed, shard)`, keep shard 0 on the base
/// seed (the K = 1 bit-identity hook), and never collide across the
/// shard counts the sweep uses.
#[test]
fn shard_seed_is_deterministic_and_distinct() {
    assert_eq!(shard_seed(42, 0), 42);
    assert_eq!(shard_seed(0xDEAD_BEEF, 0), 0xDEAD_BEEF);
    for seed in [0u64, 42, u64::MAX] {
        let seeds: Vec<u64> = (0..8).map(|s| shard_seed(seed, s)).collect();
        let again: Vec<u64> = (0..8).map(|s| shard_seed(seed, s)).collect();
        assert_eq!(seeds, again, "shard_seed must be pure");
        let distinct: BTreeSet<u64> = seeds.iter().copied().collect();
        assert_eq!(distinct.len(), seeds.len(), "seed collision for base {seed}");
    }
}

#[test]
fn identity_view_helpers() {
    let v = RowView::identity(5);
    assert!(v.is_identity());
    assert_eq!(v.num_owned(), 5);
    assert_eq!(v.num_halo(), 0);
    assert_eq!(v.select_slice(&[1.0, 2.0, 3.0, 4.0, 5.0]), vec![1.0, 2.0, 3.0, 4.0, 5.0]);
}
