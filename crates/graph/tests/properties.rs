//! Property-based tests for graph machinery on random graphs.

use gcwc_graph::{
    laplacian, ConvPlan, EdgeGraph, GraphHierarchy, PolyBasis, PoolingMap, StageSpec,
};
use gcwc_linalg::{eigen, CsrMatrix, Matrix};
use proptest::prelude::*;

/// Strategy: a random symmetric adjacency on `n` nodes (each undirected
/// pair present with probability ~0.3).
fn random_adjacency(max_n: usize) -> impl Strategy<Value = CsrMatrix> {
    (3usize..max_n).prop_flat_map(|n| {
        proptest::collection::vec(proptest::bool::weighted(0.3), n * (n - 1) / 2).prop_map(
            move |bits| {
                let mut triplets = Vec::new();
                let mut k = 0;
                for i in 0..n {
                    for j in i + 1..n {
                        if bits[k] {
                            triplets.push((i, j, 1.0));
                            triplets.push((j, i, 1.0));
                        }
                        k += 1;
                    }
                }
                CsrMatrix::from_triplets(n, n, triplets)
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The Laplacian of any graph annihilates the constant vector.
    #[test]
    fn laplacian_kernel_contains_ones(a in random_adjacency(10)) {
        let l = laplacian::laplacian(&a);
        let ones = vec![1.0; a.rows()];
        for v in l.matvec(&ones) {
            prop_assert!(v.abs() < 1e-9);
        }
    }

    /// The scaled Laplacian's spectrum stays within [−1, 1 + ε]. The
    /// basis comes from the shared [`ConvPlan`] constructor — the same
    /// construction the model encoder uses — and must match a direct
    /// scaling bit for bit.
    #[test]
    fn scaled_laplacian_spectral_bound(a in random_adjacency(10)) {
        let plan = ConvPlan::build(&a, &[StageSpec { cheb_order: 2, pool: 1 }]);
        let lt = plan.stages()[0].basis.scaled_laplacian();
        prop_assert_eq!(lt.to_dense(), laplacian::scaled_laplacian(&a).to_dense());
        let lmax = eigen::largest_eigenvalue(lt, 2000, 1e-10);
        prop_assert!(lmax <= 1.0 + 1e-5, "λmax(L̃) = {lmax}");
    }

    /// Coarsening always partitions the node set at every level.
    #[test]
    fn hierarchy_partitions_nodes(a in random_adjacency(12), levels in 1usize..4) {
        let n = a.rows();
        let h = GraphHierarchy::build(&a, levels);
        for l in 1..=levels {
            let composed = h.compose(0, l);
            let mut all: Vec<usize> = composed.iter().flatten().copied().collect();
            all.sort_unstable();
            prop_assert_eq!(all, (0..n).collect::<Vec<_>>(), "level {}", l);
        }
    }

    /// Pooling then gradient routing conserves gradient mass.
    #[test]
    fn pooling_gradient_mass_conserved(a in random_adjacency(10), cols in 1usize..5) {
        let h = GraphHierarchy::build(&a, 1);
        let map = PoolingMap::from_hierarchy(&h, 0, 1);
        let x = Matrix::from_fn(a.rows(), cols, |i, j| ((i * 13 + j * 7) % 23) as f64);
        let (_, argmax) = map.max_forward(&x);
        let g = Matrix::from_fn(map.num_outputs(), cols, |i, j| (i + j) as f64 * 0.5 + 1.0);
        let gi = map.max_backward(&g, &argmax);
        prop_assert!((gi.sum() - g.sum()).abs() < 1e-9);
    }

    /// Chebyshev forward/adjoint satisfy the inner-product adjoint
    /// identity: ⟨T(x), b⟩ = ⟨x, Tᵀ(b)⟩.
    #[test]
    fn chebyshev_adjoint_identity(a in random_adjacency(8), k in 2usize..5) {
        let n = a.rows();
        let plan = ConvPlan::build(&a, &[StageSpec { cheb_order: k, pool: 1 }]);
        let basis = &plan.stages()[0].basis;
        let x = Matrix::from_fn(n, 2, |i, j| (i as f64 - j as f64) * 0.3);
        let b: Vec<Matrix> =
            (0..k).map(|t| Matrix::from_fn(n, 2, |i, j| ((t + i + j) % 5) as f64 * 0.2)).collect();
        let fwd = basis.forward(&x);
        let lhs: f64 = fwd
            .iter()
            .zip(&b)
            .map(|(tx, bt)| {
                tx.as_slice().iter().zip(bt.as_slice()).map(|(p, q)| p * q).sum::<f64>()
            })
            .sum();
        let adj = basis.adjoint_combine(&b);
        let rhs: f64 =
            x.as_slice().iter().zip(adj.as_slice()).map(|(p, q)| p * q).sum();
        prop_assert!((lhs - rhs).abs() < 1e-8, "{lhs} vs {rhs}");
    }

    /// Induced subgraphs preserve symmetry and drop external edges.
    #[test]
    fn induced_subgraph_properties(a in random_adjacency(10)) {
        let g = EdgeGraph::from_adjacency(a);
        let n = g.num_nodes();
        let keep: Vec<usize> = (0..n).step_by(2).collect();
        let sub = g.induced_subgraph(&keep);
        let d = sub.adjacency_dense();
        prop_assert_eq!(d.clone(), d.transpose());
        // Edges in the subgraph must exist between the kept originals.
        for i in 0..keep.len() {
            for j in 0..keep.len() {
                if d[(i, j)] != 0.0 {
                    prop_assert!(g.neighbors(keep[i]).contains(&keep[j]));
                }
            }
        }
    }
}
