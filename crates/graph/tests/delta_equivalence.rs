//! The incremental-repair pin: applying a [`GraphDelta`] to a
//! partition set must be `to_bits`-identical to rebuilding the
//! partition set from scratch on the post-delta graph — for K ∈
//! {1, 2, 4}, over random graphs and random (valid) deltas — while
//! reusing the `Arc` of every partition the delta does not touch.

use std::sync::Arc;

use gcwc_graph::{ConvPlan, EdgeGraph, GraphDelta, PartitionSet, StageSpec};
use gcwc_linalg::{CsrMatrix, Matrix};
use proptest::prelude::*;

/// Strategy: a random symmetric adjacency on `n` nodes plus a delta
/// that is valid by construction — each undirected pair is toggled
/// (present → removed, absent → added) with small probability, and
/// optionally one appended node linked to an existing one.
fn graph_and_delta(max_n: usize) -> impl Strategy<Value = (EdgeGraph, GraphDelta)> {
    (4usize..max_n).prop_flat_map(|n| {
        let pairs = n * (n - 1) / 2;
        (
            proptest::collection::vec(proptest::bool::weighted(0.3), pairs),
            proptest::collection::vec(proptest::bool::weighted(0.12), pairs),
            proptest::bool::weighted(0.3),
            0usize..n,
        )
            .prop_map(move |(bits, toggles, append, attach)| {
                let mut triplets = Vec::new();
                let mut added = Vec::new();
                let mut removed = Vec::new();
                let mut k = 0;
                for i in 0..n {
                    for j in i + 1..n {
                        if bits[k] {
                            triplets.push((i, j, 1.0));
                            triplets.push((j, i, 1.0));
                            if toggles[k] {
                                removed.push((i, j));
                            }
                        } else if toggles[k] {
                            added.push((i, j));
                        }
                        k += 1;
                    }
                }
                if append {
                    added.push((attach, n)); // appends node n
                }
                let graph = EdgeGraph::from_adjacency(CsrMatrix::from_triplets(n, n, triplets));
                (graph, GraphDelta { added_edges: added, removed_edges: removed })
            })
    })
}

fn assert_matrix_bits_eq(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "{what}: shape");
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: entry bits differ");
    }
}

fn assert_graph_bits_eq(a: &EdgeGraph, b: &EdgeGraph, what: &str) {
    assert_eq!(a.num_nodes(), b.num_nodes(), "{what}: node count");
    assert_matrix_bits_eq(&a.adjacency_dense(), &b.adjacency_dense(), what);
    for u in 0..a.num_nodes() {
        assert_eq!(a.neighbors(u), b.neighbors(u), "{what}: neighbours of {u}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Incremental apply == from-scratch rebuild, bit for bit, at
    /// every K — and untouched partitions are the *same allocation*.
    #[test]
    fn incremental_repair_matches_from_scratch((graph, delta) in graph_and_delta(12)) {
        for k in [1usize, 2, 4] {
            let ps = PartitionSet::build(&graph, k);
            let repair = match ps.apply_delta(&graph, &delta) {
                Ok(r) => r,
                Err(e) => panic!("valid-by-construction delta rejected: {e}"),
            };

            // The post-delta graph itself must equal a from-scratch
            // construction of the same link set.
            let fresh_graph = delta.apply(&graph).unwrap();
            assert_graph_bits_eq(&repair.graph, &fresh_graph, "global graph");

            // From-scratch reference: same ownership, post-delta graph.
            let reference = PartitionSet::from_owner_of(
                &repair.graph,
                repair.partitions.owners().to_vec(),
                k,
            );
            prop_assert_eq!(repair.partitions.num_partitions(), k);
            prop_assert_eq!(repair.partitions.owners(), reference.owners());
            for u in 0..repair.graph.num_nodes() {
                prop_assert_eq!(
                    repair.partitions.is_boundary(u),
                    reference.is_boundary(u),
                    "boundary flag of node {}", u
                );
            }
            for b in 0..k {
                let (inc, refp) = (repair.partitions.partition(b), reference.partition(b));
                prop_assert_eq!(inc.view(), refp.view(), "view of partition {}", b);
                assert_graph_bits_eq(inc.graph(), refp.graph(), "local graph");
                // The downstream ladder rebuilt on the repaired local
                // graph matches the reference ladder bit for bit.
                let spec = [StageSpec { cheb_order: 2, pool: 1 }];
                let (pi, pr) = (inc.conv_plan(&spec), refp.conv_plan(&spec));
                assert_matrix_bits_eq(
                    &pi.stages()[0].basis.scaled_laplacian().to_dense(),
                    &pr.stages()[0].basis.scaled_laplacian().to_dense(),
                    "scaled Laplacian",
                );
            }

            // Arc reuse: exactly the non-repaired partitions are shared.
            for b in 0..k {
                let reused = Arc::ptr_eq(&ps.partitions()[b], &repair.partitions.partitions()[b]);
                prop_assert_eq!(reused, !repair.repaired.contains(&b), "partition {}", b);
            }

            // Plan repair keeps untouched plan Arcs and rebuilds the rest.
            let spec = [StageSpec { cheb_order: 2, pool: 1 }];
            let old_plans: Vec<Arc<ConvPlan>> =
                (0..k).map(|b| Arc::new(ps.partition(b).conv_plan(&spec))).collect();
            let new_plans = gcwc_graph::repair_plans(&old_plans, &repair, &spec);
            for b in 0..k {
                let kept = Arc::ptr_eq(&old_plans[b], &new_plans[b]);
                prop_assert_eq!(kept, !repair.repaired.contains(&b), "plan {}", b);
                assert_matrix_bits_eq(
                    &new_plans[b].stages()[0].basis.scaled_laplacian().to_dense(),
                    &reference.partition(b).conv_plan(&spec).stages()[0]
                        .basis
                        .scaled_laplacian()
                        .to_dense(),
                    "repaired plan Laplacian",
                );
            }
        }
    }
}
