//! Polynomial filter bases on graphs.
//!
//! Simplified ChebNet (paper §IV-B) filters a signal `x` with
//! `Σ_k θ_k T_k(L̃) x` where `T_k` is the Chebyshev polynomial of the
//! scaled Laplacian: `x̂_0 = x`, `x̂_1 = L̃x`, `x̂_k = 2L̃x̂_{k−1} − x̂_{k−2}`.
//! The DR baseline uses the same machinery with random-walk powers
//! `P^k = (D⁻¹A)^k` instead.
//!
//! Both bases are exposed through [`PolyBasis`], which provides the
//! forward expansion and the adjoint combination needed for
//! back-propagation (`Σ_k B_kᵀ`-weighted recombination).

use crate::laplacian;
use gcwc_linalg::{CsrMatrix, Matrix};

/// A family `{M_0, …, M_{K−1}}` of fixed graph operators applied to node
/// signals, with an efficient adjoint.
pub trait PolyBasis: Send + Sync {
    /// Number of taps `K`.
    fn order(&self) -> usize;

    /// Number of graph nodes `n`.
    fn num_nodes(&self) -> usize;

    /// Computes `[M_0 x, …, M_{K−1} x]` for a dense signal `x ∈ R^{n×c}`.
    fn forward(&self, x: &Matrix) -> Vec<Matrix>;

    /// Computes `Σ_k M_kᵀ b_k` for dense `b_k ∈ R^{n×c}` (the adjoint of
    /// [`PolyBasis::forward`] contracted with cotangents `b_k`).
    fn adjoint_combine(&self, b: &[Matrix]) -> Matrix;
}

/// Chebyshev polynomials of the scaled Laplacian `L̃ = 2L/λmax − I`.
#[derive(Clone, Debug)]
pub struct ChebyshevBasis {
    lt: CsrMatrix,
    k: usize,
}

impl ChebyshevBasis {
    /// Builds the order-`k` basis from a symmetric adjacency matrix.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn from_adjacency(a: &CsrMatrix, k: usize) -> Self {
        assert!(k >= 1, "Chebyshev order must be at least 1");
        Self { lt: laplacian::scaled_laplacian(a), k }
    }

    /// Builds the basis from a precomputed scaled Laplacian.
    pub fn from_scaled_laplacian(lt: CsrMatrix, k: usize) -> Self {
        assert!(k >= 1, "Chebyshev order must be at least 1");
        assert_eq!(lt.rows(), lt.cols(), "Laplacian must be square");
        Self { lt, k }
    }

    /// The scaled Laplacian.
    pub fn scaled_laplacian(&self) -> &CsrMatrix {
        &self.lt
    }
}

impl PolyBasis for ChebyshevBasis {
    fn order(&self) -> usize {
        self.k
    }

    fn num_nodes(&self) -> usize {
        self.lt.rows()
    }

    fn forward(&self, x: &Matrix) -> Vec<Matrix> {
        assert_eq!(x.rows(), self.lt.rows(), "signal row count mismatch");
        let mut out = Vec::with_capacity(self.k);
        out.push(x.clone()); // T_0 x = x
        if self.k >= 2 {
            out.push(self.lt.matmul_dense(x)); // T_1 x = L̃x
        }
        for k in 2..self.k {
            let next = &self.lt.matmul_dense(&out[k - 1]).scale(2.0) - &out[k - 2];
            out.push(next);
        }
        out
    }

    fn adjoint_combine(&self, b: &[Matrix]) -> Matrix {
        assert_eq!(b.len(), self.k, "cotangent count mismatch");
        // L̃ is symmetric, so T_k(L̃)ᵀ = T_k(L̃); evaluate Σ_k T_k(L̃) b_k
        // with Clenshaw's recurrence: c_k = b_k + 2L̃c_{k+1} − c_{k+2},
        // result = b_0 + L̃c_1 − c_2.
        let kk = self.k;
        if kk == 1 {
            return b[0].clone();
        }
        let zero = Matrix::zeros(b[0].rows(), b[0].cols());
        let mut c_next = zero.clone(); // c_{k+1}
        let mut c_next2 = zero; // c_{k+2}
        for k in (1..kk).rev() {
            let c_k = &(&b[k] + &self.lt.matmul_dense(&c_next).scale(2.0)) - &c_next2;
            c_next2 = std::mem::replace(&mut c_next, c_k);
        }
        &(&b[0] + &self.lt.matmul_dense(&c_next)) - &c_next2
    }
}

/// Random-walk diffusion powers `P^k` with `P = D⁻¹A` (rows of zero degree
/// get a zero row, i.e. no diffusion), used by the DR baseline.
#[derive(Clone, Debug)]
pub struct RandomWalkBasis {
    p: CsrMatrix,
    pt: CsrMatrix,
    k: usize,
}

impl RandomWalkBasis {
    /// Builds the order-`k` basis (`[I, P, …, P^{k−1}]`) from an adjacency
    /// matrix.
    pub fn from_adjacency(a: &CsrMatrix, k: usize) -> Self {
        assert!(k >= 1, "diffusion order must be at least 1");
        assert_eq!(a.rows(), a.cols(), "adjacency must be square");
        let deg = a.row_sums();
        let p = CsrMatrix::from_triplets(
            a.rows(),
            a.cols(),
            a.iter().map(|(i, j, v)| (i, j, if deg[i] > 0.0 { v / deg[i] } else { 0.0 })),
        );
        let pt = p.transpose();
        Self { p, pt, k }
    }

    /// The random-walk matrix `P`.
    pub fn walk_matrix(&self) -> &CsrMatrix {
        &self.p
    }
}

impl PolyBasis for RandomWalkBasis {
    fn order(&self) -> usize {
        self.k
    }

    fn num_nodes(&self) -> usize {
        self.p.rows()
    }

    fn forward(&self, x: &Matrix) -> Vec<Matrix> {
        assert_eq!(x.rows(), self.p.rows(), "signal row count mismatch");
        let mut out = Vec::with_capacity(self.k);
        out.push(x.clone());
        for k in 1..self.k {
            let next = self.p.matmul_dense(&out[k - 1]);
            out.push(next);
        }
        out
    }

    fn adjoint_combine(&self, b: &[Matrix]) -> Matrix {
        assert_eq!(b.len(), self.k, "cotangent count mismatch");
        // Σ_k (P^k)ᵀ b_k = Σ_k (Pᵀ)^k b_k via Horner: s = b_{K−1};
        // s = Pᵀ s + b_k for k = K−2 … 0.
        let mut s = b[self.k - 1].clone();
        for k in (0..self.k - 1).rev() {
            s = &self.pt.matmul_dense(&s) + &b[k];
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> CsrMatrix {
        CsrMatrix::from_dense(&Matrix::from_rows(&[
            &[0.0, 1.0, 0.0],
            &[1.0, 0.0, 1.0],
            &[0.0, 1.0, 0.0],
        ]))
    }

    /// Dense reference: explicit T_k(L̃) matrices.
    fn dense_cheb_mats(lt: &Matrix, k: usize) -> Vec<Matrix> {
        let n = lt.rows();
        let mut out = vec![Matrix::identity(n)];
        if k >= 2 {
            out.push(lt.clone());
        }
        for i in 2..k {
            let next = &lt.matmul(&out[i - 1]).scale(2.0) - &out[i - 2];
            out.push(next);
        }
        out
    }

    #[test]
    fn forward_matches_dense_reference() {
        let a = path3();
        let k = 5;
        let basis = ChebyshevBasis::from_adjacency(&a, k);
        let lt = basis.scaled_laplacian().to_dense();
        let mats = dense_cheb_mats(&lt, k);
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[0.5, -1.0], &[3.0, 0.0]]);
        let fwd = basis.forward(&x);
        for (t, m) in fwd.iter().zip(&mats) {
            assert!(t.approx_eq(&m.matmul(&x), 1e-10));
        }
    }

    #[test]
    fn adjoint_matches_dense_reference() {
        let a = path3();
        let k = 6;
        let basis = ChebyshevBasis::from_adjacency(&a, k);
        let lt = basis.scaled_laplacian().to_dense();
        let mats = dense_cheb_mats(&lt, k);
        let b: Vec<Matrix> = (0..k)
            .map(|i| Matrix::from_fn(3, 2, |r, c| (i + r * 2 + c) as f64 * 0.3 - 1.0))
            .collect();
        let got = basis.adjoint_combine(&b);
        let mut want = Matrix::zeros(3, 2);
        for (m, bi) in mats.iter().zip(&b) {
            want = &want + &m.transpose().matmul(bi);
        }
        assert!(got.approx_eq(&want, 1e-9), "{got:?} vs {want:?}");
    }

    #[test]
    fn order_one_is_identity() {
        let basis = ChebyshevBasis::from_adjacency(&path3(), 1);
        let x = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let fwd = basis.forward(&x);
        assert_eq!(fwd.len(), 1);
        assert_eq!(fwd[0], x);
        assert_eq!(basis.adjoint_combine(std::slice::from_ref(&x)), x);
    }

    #[test]
    fn chebyshev_propagates_to_neighbors() {
        // A signal on one node must reach its neighbours through T_1.
        let basis = ChebyshevBasis::from_adjacency(&path3(), 2);
        let x = Matrix::from_rows(&[&[0.0], &[0.0], &[1.0]]);
        let fwd = basis.forward(&x);
        // T_1 x = L̃x: node 1 (the neighbour of node 2) gets a non-zero.
        assert!(fwd[1][(1, 0)].abs() > 1e-9);
    }

    #[test]
    fn random_walk_rows_are_stochastic() {
        let basis = RandomWalkBasis::from_adjacency(&path3(), 3);
        let p = basis.walk_matrix();
        for s in p.row_sums() {
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn random_walk_forward_and_adjoint_match_dense() {
        let a = path3();
        let k = 4;
        let basis = RandomWalkBasis::from_adjacency(&a, k);
        let p = basis.walk_matrix().to_dense();
        let mut pows = vec![Matrix::identity(3)];
        for i in 1..k {
            pows.push(p.matmul(&pows[i - 1]));
        }
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[2.0, -1.0]]);
        for (f, m) in basis.forward(&x).iter().zip(&pows) {
            assert!(f.approx_eq(&m.matmul(&x), 1e-10));
        }
        let b: Vec<Matrix> = (0..k)
            .map(|i| Matrix::from_fn(3, 2, |r, c| (i * 6 + r * 2 + c) as f64 * 0.1))
            .collect();
        let got = basis.adjoint_combine(&b);
        let mut want = Matrix::zeros(3, 2);
        for (m, bi) in pows.iter().zip(&b) {
            want = &want + &m.transpose().matmul(bi);
        }
        assert!(got.approx_eq(&want, 1e-10));
    }

    #[test]
    fn random_walk_isolated_node_does_not_diffuse() {
        // Node 2 isolated.
        let a = CsrMatrix::from_triplets(3, 3, [(0, 1, 1.0), (1, 0, 1.0)]);
        let basis = RandomWalkBasis::from_adjacency(&a, 2);
        let x = Matrix::from_rows(&[&[1.0], &[1.0], &[1.0]]);
        let fwd = basis.forward(&x);
        assert_eq!(fwd[1][(2, 0)], 0.0, "isolated node receives nothing");
    }
}
