//! Polynomial filter bases on graphs.
//!
//! Simplified ChebNet (paper §IV-B) filters a signal `x` with
//! `Σ_k θ_k T_k(L̃) x` where `T_k` is the Chebyshev polynomial of the
//! scaled Laplacian: `x̂_0 = x`, `x̂_1 = L̃x`, `x̂_k = 2L̃x̂_{k−1} − x̂_{k−2}`.
//! The DR baseline uses the same machinery with random-walk powers
//! `P^k = (D⁻¹A)^k` instead.
//!
//! Both bases are exposed through [`PolyBasis`], which provides the
//! forward expansion and the adjoint combination needed for
//! back-propagation (`Σ_k B_kᵀ`-weighted recombination).

use crate::laplacian;
use gcwc_linalg::{BufferPool, CsrMatrix, Matrix};

/// A family `{M_0, …, M_{K−1}}` of fixed graph operators applied to node
/// signals, with an efficient adjoint.
pub trait PolyBasis: Send + Sync {
    /// Number of taps `K`.
    fn order(&self) -> usize;

    /// Number of graph nodes `n`.
    fn num_nodes(&self) -> usize;

    /// Computes `[M_0 x, …, M_{K−1} x]` for a dense signal `x ∈ R^{n×c}`.
    fn forward(&self, x: &Matrix) -> Vec<Matrix>;

    /// Computes `Σ_k M_kᵀ b_k` for dense `b_k ∈ R^{n×c}` (the adjoint of
    /// [`PolyBasis::forward`] contracted with cotangents `b_k`).
    fn adjoint_combine(&self, b: &[Matrix]) -> Matrix;

    /// Pool-backed [`PolyBasis::forward`]: appends the `K` taps to `out`
    /// using buffers drawn from `pool` (bit-identical results). The
    /// default falls back to the allocating path.
    fn forward_pooled(&self, x: &Matrix, pool: &mut BufferPool, out: &mut Vec<Matrix>) {
        let _ = pool;
        out.extend(self.forward(x));
    }

    /// Pool-backed [`PolyBasis::adjoint_combine`]: the returned matrix is
    /// drawn from `pool` (bit-identical results). The default falls back
    /// to the allocating path.
    fn adjoint_combine_pooled(&self, b: &[Matrix], pool: &mut BufferPool) -> Matrix {
        let _ = pool;
        self.adjoint_combine(b)
    }
}

/// Chebyshev polynomials of the scaled Laplacian `L̃ = 2L/λmax − I`.
#[derive(Clone, Debug)]
pub struct ChebyshevBasis {
    lt: CsrMatrix,
    k: usize,
}

impl ChebyshevBasis {
    /// Builds the order-`k` basis from a symmetric adjacency matrix.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn from_adjacency(a: &CsrMatrix, k: usize) -> Self {
        assert!(k >= 1, "Chebyshev order must be at least 1");
        Self { lt: laplacian::scaled_laplacian(a), k }
    }

    /// Builds the basis from a precomputed scaled Laplacian.
    pub fn from_scaled_laplacian(lt: CsrMatrix, k: usize) -> Self {
        assert!(k >= 1, "Chebyshev order must be at least 1");
        assert_eq!(lt.rows(), lt.cols(), "Laplacian must be square");
        Self { lt, k }
    }

    /// The scaled Laplacian.
    pub fn scaled_laplacian(&self) -> &CsrMatrix {
        &self.lt
    }
}

impl PolyBasis for ChebyshevBasis {
    fn order(&self) -> usize {
        self.k
    }

    fn num_nodes(&self) -> usize {
        self.lt.rows()
    }

    fn forward(&self, x: &Matrix) -> Vec<Matrix> {
        let mut pool = BufferPool::new();
        let mut out = Vec::with_capacity(self.k);
        self.forward_pooled(x, &mut pool, &mut out);
        out
    }

    fn adjoint_combine(&self, b: &[Matrix]) -> Matrix {
        let mut pool = BufferPool::new();
        self.adjoint_combine_pooled(b, &mut pool)
    }

    fn forward_pooled(&self, x: &Matrix, pool: &mut BufferPool, out: &mut Vec<Matrix>) {
        assert_eq!(x.rows(), self.lt.rows(), "signal row count mismatch");
        let (n, c) = x.shape();
        let base = out.len();
        let mut t0 = pool.take_raw(n, c);
        t0.copy_from(x); // T_0 x = x
        out.push(t0);
        if self.k >= 2 {
            let mut t1 = pool.take_raw(n, c);
            self.lt.matmul_dense_into(x, &mut t1); // T_1 x = L̃x
            out.push(t1);
        }
        for k in 2..self.k {
            // T_k x = 2·L̃·T_{k−1}x − T_{k−2}x, fused in one pass.
            let mut next = pool.take_raw(n, c);
            self.lt.cheb_step_into(&out[base + k - 1], &out[base + k - 2], &mut next);
            out.push(next);
        }
    }

    fn adjoint_combine_pooled(&self, b: &[Matrix], pool: &mut BufferPool) -> Matrix {
        assert_eq!(b.len(), self.k, "cotangent count mismatch");
        // L̃ is symmetric, so T_k(L̃)ᵀ = T_k(L̃); evaluate Σ_k T_k(L̃) b_k
        // with Clenshaw's recurrence: c_k = b_k + 2L̃c_{k+1} − c_{k+2},
        // result = b_0 + L̃c_1 − c_2. Each step writes into the retiring
        // c_{k+2} buffer, so only two matrices live at any time.
        let kk = self.k;
        let (n, c) = b[0].shape();
        if kk == 1 {
            let mut out = pool.take_raw(n, c);
            out.copy_from(&b[0]);
            return out;
        }
        let mut c_next = pool.take(n, c); // c_{k+1}
        let mut c_next2 = pool.take(n, c); // c_{k+2}
        for k in (1..kk).rev() {
            self.lt.clenshaw_step(&b[k], &c_next, 2.0, &mut c_next2);
            std::mem::swap(&mut c_next, &mut c_next2);
        }
        self.lt.clenshaw_step(&b[0], &c_next, 1.0, &mut c_next2);
        pool.give(c_next);
        c_next2
    }
}

/// Random-walk diffusion powers `P^k` with `P = D⁻¹A` (rows of zero degree
/// get a zero row, i.e. no diffusion), used by the DR baseline.
#[derive(Clone, Debug)]
pub struct RandomWalkBasis {
    p: CsrMatrix,
    pt: CsrMatrix,
    k: usize,
}

impl RandomWalkBasis {
    /// Builds the order-`k` basis (`[I, P, …, P^{k−1}]`) from an adjacency
    /// matrix.
    pub fn from_adjacency(a: &CsrMatrix, k: usize) -> Self {
        assert!(k >= 1, "diffusion order must be at least 1");
        assert_eq!(a.rows(), a.cols(), "adjacency must be square");
        let deg = a.row_sums();
        let p = CsrMatrix::from_triplets(
            a.rows(),
            a.cols(),
            a.iter().map(|(i, j, v)| (i, j, if deg[i] > 0.0 { v / deg[i] } else { 0.0 })),
        );
        let pt = p.transpose();
        Self { p, pt, k }
    }

    /// The random-walk matrix `P`.
    pub fn walk_matrix(&self) -> &CsrMatrix {
        &self.p
    }
}

impl PolyBasis for RandomWalkBasis {
    fn order(&self) -> usize {
        self.k
    }

    fn num_nodes(&self) -> usize {
        self.p.rows()
    }

    fn forward(&self, x: &Matrix) -> Vec<Matrix> {
        let mut pool = BufferPool::new();
        let mut out = Vec::with_capacity(self.k);
        self.forward_pooled(x, &mut pool, &mut out);
        out
    }

    fn adjoint_combine(&self, b: &[Matrix]) -> Matrix {
        let mut pool = BufferPool::new();
        self.adjoint_combine_pooled(b, &mut pool)
    }

    fn forward_pooled(&self, x: &Matrix, pool: &mut BufferPool, out: &mut Vec<Matrix>) {
        assert_eq!(x.rows(), self.p.rows(), "signal row count mismatch");
        let (n, c) = x.shape();
        let base = out.len();
        let mut p0 = pool.take_raw(n, c);
        p0.copy_from(x);
        out.push(p0);
        for k in 1..self.k {
            let mut next = pool.take_raw(n, c);
            self.p.matmul_dense_into(&out[base + k - 1], &mut next);
            out.push(next);
        }
    }

    fn adjoint_combine_pooled(&self, b: &[Matrix], pool: &mut BufferPool) -> Matrix {
        assert_eq!(b.len(), self.k, "cotangent count mismatch");
        // Σ_k (P^k)ᵀ b_k = Σ_k (Pᵀ)^k b_k via Horner: s = b_{K−1};
        // s = Pᵀ s + b_k for k = K−2 … 0. Ping-pong two pooled buffers.
        let (n, c) = b[0].shape();
        let mut s = pool.take_raw(n, c);
        s.copy_from(&b[self.k - 1]);
        if self.k == 1 {
            return s;
        }
        let mut tmp = pool.take_raw(n, c);
        for k in (0..self.k - 1).rev() {
            self.pt.matmul_dense_into(&s, &mut tmp);
            tmp.add_assign(&b[k]);
            std::mem::swap(&mut s, &mut tmp);
        }
        pool.give(tmp);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> CsrMatrix {
        CsrMatrix::from_dense(&Matrix::from_rows(&[
            &[0.0, 1.0, 0.0],
            &[1.0, 0.0, 1.0],
            &[0.0, 1.0, 0.0],
        ]))
    }

    /// Dense reference: explicit T_k(L̃) matrices.
    fn dense_cheb_mats(lt: &Matrix, k: usize) -> Vec<Matrix> {
        let n = lt.rows();
        let mut out = vec![Matrix::identity(n)];
        if k >= 2 {
            out.push(lt.clone());
        }
        for i in 2..k {
            let next = &lt.matmul(&out[i - 1]).scale(2.0) - &out[i - 2];
            out.push(next);
        }
        out
    }

    #[test]
    fn forward_matches_dense_reference() {
        let a = path3();
        let k = 5;
        let basis = ChebyshevBasis::from_adjacency(&a, k);
        let lt = basis.scaled_laplacian().to_dense();
        let mats = dense_cheb_mats(&lt, k);
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[0.5, -1.0], &[3.0, 0.0]]);
        let fwd = basis.forward(&x);
        for (t, m) in fwd.iter().zip(&mats) {
            assert!(t.approx_eq(&m.matmul(&x), 1e-10));
        }
    }

    #[test]
    fn adjoint_matches_dense_reference() {
        let a = path3();
        let k = 6;
        let basis = ChebyshevBasis::from_adjacency(&a, k);
        let lt = basis.scaled_laplacian().to_dense();
        let mats = dense_cheb_mats(&lt, k);
        let b: Vec<Matrix> = (0..k)
            .map(|i| Matrix::from_fn(3, 2, |r, c| (i + r * 2 + c) as f64 * 0.3 - 1.0))
            .collect();
        let got = basis.adjoint_combine(&b);
        let mut want = Matrix::zeros(3, 2);
        for (m, bi) in mats.iter().zip(&b) {
            want = &want + &m.transpose().matmul(bi);
        }
        assert!(got.approx_eq(&want, 1e-9), "{got:?} vs {want:?}");
    }

    #[test]
    fn order_one_is_identity() {
        let basis = ChebyshevBasis::from_adjacency(&path3(), 1);
        let x = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let fwd = basis.forward(&x);
        assert_eq!(fwd.len(), 1);
        assert_eq!(fwd[0], x);
        assert_eq!(basis.adjoint_combine(std::slice::from_ref(&x)), x);
    }

    #[test]
    fn chebyshev_propagates_to_neighbors() {
        // A signal on one node must reach its neighbours through T_1.
        let basis = ChebyshevBasis::from_adjacency(&path3(), 2);
        let x = Matrix::from_rows(&[&[0.0], &[0.0], &[1.0]]);
        let fwd = basis.forward(&x);
        // T_1 x = L̃x: node 1 (the neighbour of node 2) gets a non-zero.
        assert!(fwd[1][(1, 0)].abs() > 1e-9);
    }

    #[test]
    fn random_walk_rows_are_stochastic() {
        let basis = RandomWalkBasis::from_adjacency(&path3(), 3);
        let p = basis.walk_matrix();
        for s in p.row_sums() {
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn random_walk_forward_and_adjoint_match_dense() {
        let a = path3();
        let k = 4;
        let basis = RandomWalkBasis::from_adjacency(&a, k);
        let p = basis.walk_matrix().to_dense();
        let mut pows = vec![Matrix::identity(3)];
        for i in 1..k {
            pows.push(p.matmul(&pows[i - 1]));
        }
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[2.0, -1.0]]);
        for (f, m) in basis.forward(&x).iter().zip(&pows) {
            assert!(f.approx_eq(&m.matmul(&x), 1e-10));
        }
        let b: Vec<Matrix> = (0..k)
            .map(|i| Matrix::from_fn(3, 2, |r, c| (i * 6 + r * 2 + c) as f64 * 0.1))
            .collect();
        let got = basis.adjoint_combine(&b);
        let mut want = Matrix::zeros(3, 2);
        for (m, bi) in pows.iter().zip(&b) {
            want = &want + &m.transpose().matmul(bi);
        }
        assert!(got.approx_eq(&want, 1e-10));
    }

    fn bits(m: &Matrix) -> Vec<u64> {
        m.as_slice().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn fused_forward_bit_matches_legacy_composition() {
        let k = 5;
        let basis = ChebyshevBasis::from_adjacency(&path3(), k);
        let lt = basis.scaled_laplacian();
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[0.5, -1.0], &[3.0, 0.0]]);
        // Pre-fusion three-pass composition.
        let mut legacy = vec![x.clone(), lt.matmul_dense(&x)];
        for i in 2..k {
            legacy.push(&lt.matmul_dense(&legacy[i - 1]).scale(2.0) - &legacy[i - 2]);
        }
        for (f, l) in basis.forward(&x).iter().zip(&legacy) {
            assert_eq!(bits(f), bits(l));
        }
        // Pooled path with stale reused buffers gives the same bits.
        let mut pool = BufferPool::new();
        let mut taps = Vec::new();
        basis.forward_pooled(&x, &mut pool, &mut taps);
        for m in taps.drain(..) {
            pool.give(m);
        }
        basis.forward_pooled(&x, &mut pool, &mut taps);
        assert!(pool.hits() > 0, "second pass must reuse pooled storage");
        for (f, l) in taps.iter().zip(&legacy) {
            assert_eq!(bits(f), bits(l));
        }
    }

    #[test]
    fn fused_adjoint_bit_matches_legacy_composition() {
        let k = 6;
        let basis = ChebyshevBasis::from_adjacency(&path3(), k);
        let lt = basis.scaled_laplacian();
        let b: Vec<Matrix> = (0..k)
            .map(|i| Matrix::from_fn(3, 2, |r, c| (i + r * 2 + c) as f64 * 0.3 - 1.0))
            .collect();
        // Pre-fusion Clenshaw composition.
        let zero = Matrix::zeros(3, 2);
        let mut c_next = zero.clone();
        let mut c_next2 = zero;
        for i in (1..k).rev() {
            let c_k = &(&b[i] + &lt.matmul_dense(&c_next).scale(2.0)) - &c_next2;
            c_next2 = std::mem::replace(&mut c_next, c_k);
        }
        let legacy = &(&b[0] + &lt.matmul_dense(&c_next)) - &c_next2;
        assert_eq!(bits(&basis.adjoint_combine(&b)), bits(&legacy));
        let mut pool = BufferPool::new();
        let first = basis.adjoint_combine_pooled(&b, &mut pool);
        assert_eq!(bits(&first), bits(&legacy));
        pool.give(first);
        let again = basis.adjoint_combine_pooled(&b, &mut pool);
        assert_eq!(bits(&again), bits(&legacy));
    }

    #[test]
    fn random_walk_fused_bit_matches_legacy_composition() {
        let k = 4;
        let basis = RandomWalkBasis::from_adjacency(&path3(), k);
        let p = basis.walk_matrix();
        let pt = p.transpose();
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[2.0, -1.0]]);
        let mut legacy = vec![x.clone()];
        for i in 1..k {
            legacy.push(p.matmul_dense(&legacy[i - 1]));
        }
        for (f, l) in basis.forward(&x).iter().zip(&legacy) {
            assert_eq!(bits(f), bits(l));
        }
        let b: Vec<Matrix> = (0..k)
            .map(|i| Matrix::from_fn(3, 2, |r, c| (i * 6 + r * 2 + c) as f64 * 0.1))
            .collect();
        let mut s = b[k - 1].clone();
        for i in (0..k - 1).rev() {
            s = &pt.matmul_dense(&s) + &b[i];
        }
        assert_eq!(bits(&basis.adjoint_combine(&b)), bits(&s));
        let mut pool = BufferPool::new();
        assert_eq!(bits(&basis.adjoint_combine_pooled(&b, &mut pool)), bits(&s));
    }

    #[test]
    fn random_walk_isolated_node_does_not_diffuse() {
        // Node 2 isolated.
        let a = CsrMatrix::from_triplets(3, 3, [(0, 1, 1.0), (1, 0, 1.0)]);
        let basis = RandomWalkBasis::from_adjacency(&a, 2);
        let x = Matrix::from_rows(&[&[1.0], &[1.0], &[1.0]]);
        let fwd = basis.forward(&x);
        assert_eq!(fwd[1][(2, 0)], 0.0, "isolated node receives nothing");
    }
}
