//! Graph max-pooling maps.
//!
//! A [`PoolingMap`] records, for each coarse node, which fine nodes it
//! covers; pooling takes the per-column maximum over the covered rows.
//! The argmax positions are returned so back-propagation can route
//! gradients to the winning rows.

use crate::coarsen::GraphHierarchy;
use gcwc_linalg::Matrix;

/// A row-pooling map from `num_inputs` fine nodes to `clusters.len()`
/// coarse nodes.
#[derive(Clone, Debug)]
pub struct PoolingMap {
    clusters: Vec<Vec<usize>>,
    num_inputs: usize,
}

impl PoolingMap {
    /// Builds a pooling map from explicit clusters over `num_inputs`
    /// fine nodes.
    ///
    /// # Panics
    /// Panics if any cluster is empty or references an out-of-range node.
    pub fn new(clusters: Vec<Vec<usize>>, num_inputs: usize) -> Self {
        for c in &clusters {
            assert!(!c.is_empty(), "empty pooling cluster");
            assert!(c.iter().all(|&m| m < num_inputs), "cluster member out of range");
        }
        Self { clusters, num_inputs }
    }

    /// Builds the map that pools hierarchy level `from` down to level `to`.
    pub fn from_hierarchy(h: &GraphHierarchy, from: usize, to: usize) -> Self {
        Self::new(h.compose(from, to), h.num_nodes(from))
    }

    /// Number of coarse nodes.
    pub fn num_outputs(&self) -> usize {
        self.clusters.len()
    }

    /// Number of fine nodes.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// The clusters.
    pub fn clusters(&self) -> &[Vec<usize>] {
        &self.clusters
    }

    /// Max-pools the rows of `x` (`num_inputs × c`), returning the pooled
    /// matrix (`num_outputs × c`) and for every output entry the winning
    /// input row (row-major over the output shape).
    pub fn max_forward(&self, x: &Matrix) -> (Matrix, Vec<usize>) {
        let mut out = Matrix::zeros(self.clusters.len(), x.cols());
        let mut argmax = vec![0usize; self.clusters.len() * x.cols()];
        self.max_forward_into(x, &mut out, &mut argmax);
        (out, argmax)
    }

    /// [`PoolingMap::max_forward`] into existing buffers (every element of
    /// both is overwritten; stale pooled buffers are fine). `argmax` must
    /// already have length `num_outputs · c`.
    pub fn max_forward_into(&self, x: &Matrix, out: &mut Matrix, argmax: &mut [usize]) {
        assert_eq!(x.rows(), self.num_inputs, "pooling input row mismatch");
        let c = x.cols();
        assert_eq!(out.shape(), (self.clusters.len(), c), "pooling output shape mismatch");
        assert_eq!(argmax.len(), self.clusters.len() * c, "argmax length mismatch");
        for (ci, members) in self.clusters.iter().enumerate() {
            for j in 0..c {
                let mut best_row = members[0];
                let mut best = x[(best_row, j)];
                for &m in &members[1..] {
                    if x[(m, j)] > best {
                        best = x[(m, j)];
                        best_row = m;
                    }
                }
                out[(ci, j)] = best;
                argmax[ci * c + j] = best_row;
            }
        }
    }

    /// Routes output gradients back to the argmax input rows.
    pub fn max_backward(&self, grad_out: &Matrix, argmax: &[usize]) -> Matrix {
        let mut grad_in = Matrix::zeros(self.num_inputs, grad_out.cols());
        self.max_backward_into(grad_out, argmax, &mut grad_in);
        grad_in
    }

    /// [`PoolingMap::max_backward`] accumulating into a caller-provided
    /// **zeroed** `num_inputs × c` buffer.
    pub fn max_backward_into(&self, grad_out: &Matrix, argmax: &[usize], grad_in: &mut Matrix) {
        assert_eq!(grad_out.rows(), self.clusters.len(), "grad row mismatch");
        let c = grad_out.cols();
        assert_eq!(argmax.len(), grad_out.rows() * c, "argmax length mismatch");
        assert_eq!(grad_in.shape(), (self.num_inputs, c), "grad input shape mismatch");
        for ci in 0..grad_out.rows() {
            for j in 0..c {
                let src = argmax[ci * c + j];
                grad_in[(src, j)] += grad_out[(ci, j)];
            }
        }
    }

    /// Mean-pools the rows of `x` (used by ablations).
    pub fn mean_forward(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.rows(), self.num_inputs, "pooling input row mismatch");
        let c = x.cols();
        let mut out = Matrix::zeros(self.clusters.len(), c);
        for (ci, members) in self.clusters.iter().enumerate() {
            for j in 0..c {
                let s: f64 = members.iter().map(|&m| x[(m, j)]).sum();
                out[(ci, j)] = s / members.len() as f64;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> PoolingMap {
        PoolingMap::new(vec![vec![0, 2], vec![1, 3], vec![4]], 5)
    }

    #[test]
    fn max_forward_picks_maxima() {
        let x =
            Matrix::from_rows(&[&[1.0, 9.0], &[2.0, 0.0], &[5.0, -1.0], &[3.0, 7.0], &[4.0, 4.0]]);
        let (out, argmax) = map().max_forward(&x);
        assert_eq!(out, Matrix::from_rows(&[&[5.0, 9.0], &[3.0, 7.0], &[4.0, 4.0]]));
        assert_eq!(argmax, vec![2, 0, 3, 3, 4, 4]);
    }

    #[test]
    fn max_backward_routes_to_winners() {
        let x =
            Matrix::from_rows(&[&[1.0, 9.0], &[2.0, 0.0], &[5.0, -1.0], &[3.0, 7.0], &[4.0, 4.0]]);
        let m = map();
        let (_, argmax) = m.max_forward(&x);
        let g = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let gi = m.max_backward(&g, &argmax);
        assert_eq!(gi[(2, 0)], 1.0); // winner of cluster 0 col 0
        assert_eq!(gi[(0, 1)], 2.0);
        assert_eq!(gi[(3, 0)], 3.0);
        assert_eq!(gi[(3, 1)], 4.0);
        assert_eq!(gi[(4, 0)], 5.0);
        assert_eq!(gi[(4, 1)], 6.0);
        assert_eq!(gi[(1, 0)], 0.0); // losers get nothing
    }

    #[test]
    fn gradient_mass_is_preserved() {
        let x = Matrix::from_fn(5, 3, |i, j| (i * 3 + j) as f64);
        let m = map();
        let (_, argmax) = m.max_forward(&x);
        let g = Matrix::filled(3, 3, 1.0);
        let gi = m.max_backward(&g, &argmax);
        assert_eq!(gi.sum(), g.sum());
    }

    #[test]
    fn mean_forward_averages() {
        let x = Matrix::from_rows(&[&[2.0], &[4.0], &[6.0], &[8.0], &[1.0]]);
        let out = map().mean_forward(&x);
        assert_eq!(out, Matrix::from_rows(&[&[4.0], &[6.0], &[1.0]]));
    }

    #[test]
    #[should_panic(expected = "empty pooling cluster")]
    fn rejects_empty_cluster() {
        PoolingMap::new(vec![vec![]], 3);
    }

    #[test]
    fn singleton_identity() {
        let m = PoolingMap::new(vec![vec![0], vec![1]], 2);
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let (out, _) = m.max_forward(&x);
        assert_eq!(out, x);
    }
}
