//! Multilevel graph coarsening for graph pooling.
//!
//! The paper (§IV-C) pools convolved features over clusters of edges
//! identified from the graph topology, following the multi-level pooling
//! of Defferrard et al. We implement deterministic heavy-edge matching
//! (the Graclus kernel): nodes are visited in order of increasing degree
//! and matched with the unmatched neighbour maximising the normalised
//! edge weight `w(u,v)·(1/d(u) + 1/d(v))`; unmatched nodes become
//! singleton clusters. Each level roughly halves the node count, so a
//! pooling of size `2^ℓ` consumes `ℓ` levels.

use gcwc_linalg::CsrMatrix;

/// One coarsening level: the cluster membership and the coarse graph.
#[derive(Clone, Debug)]
pub struct CoarsenLevel {
    /// `clusters[c]` lists the finer-level nodes merged into coarse node
    /// `c` (length 1 or 2).
    pub clusters: Vec<Vec<usize>>,
    /// Adjacency of the coarse graph (cluster-to-cluster edge weights
    /// summed; intra-cluster edges dropped).
    pub graph: CsrMatrix,
}

/// A multilevel coarsening hierarchy.
///
/// `graph(0)` is the original graph; `graph(l)` for `l ≥ 1` the graph
/// after `l` rounds of matching.
#[derive(Clone, Debug)]
pub struct GraphHierarchy {
    graphs: Vec<CsrMatrix>,
    levels: Vec<CoarsenLevel>,
}

impl GraphHierarchy {
    /// Builds `levels` rounds of coarsening on top of `adjacency`.
    pub fn build(adjacency: &CsrMatrix, levels: usize) -> Self {
        let mut graphs = vec![adjacency.clone()];
        let mut lvls = Vec::with_capacity(levels);
        for _ in 0..levels {
            let lvl = coarsen_once(graphs.last().expect("non-empty"));
            graphs.push(lvl.graph.clone());
            lvls.push(lvl);
        }
        Self { graphs, levels: lvls }
    }

    /// Number of coarsening levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Adjacency at level `l` (0 = original).
    pub fn graph(&self, l: usize) -> &CsrMatrix {
        &self.graphs[l]
    }

    /// Clusters merging level `l` nodes into level `l+1` nodes.
    pub fn clusters(&self, l: usize) -> &[Vec<usize>] {
        &self.levels[l].clusters
    }

    /// Number of nodes at level `l`.
    pub fn num_nodes(&self, l: usize) -> usize {
        self.graphs[l].rows()
    }

    /// Composes clusters from level `from` to level `to`:
    /// `result[c]` lists the level-`from` nodes belonging to level-`to`
    /// node `c`.
    ///
    /// # Panics
    /// Panics unless `from < to ≤ num_levels()`.
    pub fn compose(&self, from: usize, to: usize) -> Vec<Vec<usize>> {
        assert!(from < to && to <= self.levels.len(), "invalid level range {from}..{to}");
        let mut composed: Vec<Vec<usize>> = self.levels[from].clusters.to_vec();
        for l in from + 1..to {
            composed = self.levels[l]
                .clusters
                .iter()
                .map(|members| {
                    let mut flat = Vec::new();
                    for &m in members {
                        flat.extend_from_slice(&composed[m]);
                    }
                    flat
                })
                .collect();
        }
        composed
    }
}

/// Performs one round of deterministic heavy-edge matching.
pub fn coarsen_once(adj: &CsrMatrix) -> CoarsenLevel {
    let n = adj.rows();
    let degrees: Vec<f64> = adj.row_sums();
    // Visit order: increasing degree, ties by index — low-degree nodes
    // match first so peripheral structure is not absorbed greedily.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        degrees[a].partial_cmp(&degrees[b]).expect("finite degrees").then(a.cmp(&b))
    });

    let mut matched = vec![false; n];
    let mut clusters: Vec<Vec<usize>> = Vec::with_capacity(n / 2 + 1);
    let mut assignment = vec![usize::MAX; n];
    for &u in &order {
        if matched[u] {
            continue;
        }
        matched[u] = true;
        // Best unmatched neighbour by normalised cut weight.
        let mut best: Option<(usize, f64)> = None;
        for (v, w) in adj.row_entries(u) {
            if matched[v] {
                continue;
            }
            let du = degrees[u].max(1e-12);
            let dv = degrees[v].max(1e-12);
            let score = w * (1.0 / du + 1.0 / dv);
            let better = match best {
                None => true,
                Some((bv, bs)) => score > bs || (score == bs && v < bv),
            };
            if better {
                best = Some((v, score));
            }
        }
        let c = clusters.len();
        match best {
            Some((v, _)) => {
                matched[v] = true;
                assignment[u] = c;
                assignment[v] = c;
                clusters.push(vec![u, v]);
            }
            None => {
                assignment[u] = c;
                clusters.push(vec![u]);
            }
        }
    }

    // Coarse graph: sum inter-cluster weights, drop intra-cluster edges.
    let nc = clusters.len();
    let triplets = adj.iter().filter_map(|(i, j, v)| {
        let (ci, cj) = (assignment[i], assignment[j]);
        (ci != cj).then_some((ci, cj, v))
    });
    let graph = CsrMatrix::from_triplets(nc, nc, triplets);
    CoarsenLevel { clusters, graph }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcwc_linalg::Matrix;

    fn path(n: usize) -> CsrMatrix {
        CsrMatrix::from_triplets(n, n, (0..n - 1).flat_map(|i| [(i, i + 1, 1.0), (i + 1, i, 1.0)]))
    }

    #[test]
    fn one_level_roughly_halves() {
        let lvl = coarsen_once(&path(8));
        assert!(lvl.clusters.len() <= 5 && lvl.clusters.len() >= 4);
        // Every original node appears exactly once.
        let mut seen = [0usize; 8];
        for c in &lvl.clusters {
            assert!(!c.is_empty() && c.len() <= 2);
            for &m in c {
                seen[m] += 1;
            }
        }
        assert!(seen.iter().all(|&s| s == 1));
    }

    #[test]
    fn coarse_graph_is_symmetric_without_self_loops() {
        let lvl = coarsen_once(&path(9));
        let d = lvl.graph.to_dense();
        assert!(d.approx_eq(&d.transpose(), 1e-12));
        for i in 0..d.rows() {
            assert_eq!(d[(i, i)], 0.0);
        }
    }

    #[test]
    fn hierarchy_levels_shrink() {
        let h = GraphHierarchy::build(&path(16), 3);
        assert_eq!(h.num_nodes(0), 16);
        assert!(h.num_nodes(1) < 16);
        assert!(h.num_nodes(2) < h.num_nodes(1));
        assert!(h.num_nodes(3) < h.num_nodes(2));
    }

    #[test]
    fn compose_partitions_original_nodes() {
        let h = GraphHierarchy::build(&path(12), 2);
        let composed = h.compose(0, 2);
        assert_eq!(composed.len(), h.num_nodes(2));
        let mut all: Vec<usize> = composed.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..12).collect::<Vec<_>>());
        // Pools of size ≤ 4 after two pairing levels.
        assert!(composed.iter().all(|c| (1..=4).contains(&c.len())));
    }

    #[test]
    fn disconnected_nodes_become_singletons() {
        // 3 isolated nodes: no matching possible.
        let adj = CsrMatrix::from_triplets(3, 3, []);
        let lvl = coarsen_once(&adj);
        assert_eq!(lvl.clusters.len(), 3);
        assert!(lvl.clusters.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn deterministic() {
        let a = path(10);
        let h1 = GraphHierarchy::build(&a, 2);
        let h2 = GraphHierarchy::build(&a, 2);
        for l in 0..2 {
            assert_eq!(h1.clusters(l), h2.clusters(l));
        }
    }

    #[test]
    fn triangle_coarsens_to_two() {
        let a = CsrMatrix::from_dense(&Matrix::from_rows(&[
            &[0.0, 1.0, 1.0],
            &[1.0, 0.0, 1.0],
            &[1.0, 1.0, 0.0],
        ]));
        let lvl = coarsen_once(&a);
        assert_eq!(lvl.clusters.len(), 2);
        // The coarse graph keeps the pair-singleton connection.
        assert!(lvl.graph.nnz() > 0);
    }
}
