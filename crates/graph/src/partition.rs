//! Edge-graph partitioning for sharded completion.
//!
//! [`PartitionSet::build`] cuts the edge graph into `K` partitions
//! that each *own* a disjoint set of edges (edge-graph nodes) and
//! carry the 1-hop neighbourhood of their owned set as read-only
//! *halo* rows, so a `K`-tap graph convolution over a partition's
//! local subgraph sees the same immediate neighbourhood a global
//! convolution would. Ownership comes from the same Graclus-style
//! heavy-edge coarsening the pooling hierarchy uses: the graph is
//! coarsened until a few clusters per partition remain, the coarse
//! clusters are walked in BFS order (so bins are contiguous regions,
//! not striped samples), and packed greedily into `K` balanced bins.
//!
//! Locally, every partition orders its **owned rows first** (both
//! groups sorted by global index), so "the owned block" is always the
//! prefix `0..num_owned` — scatter-gather and loss masking never need
//! an indirection per row. The construction is deterministic, and for
//! `K = 1` the single partition's local graph is a verbatim clone of
//! the global graph: the downstream pipeline (Laplacian scaling,
//! Chebyshev recurrences, coarsening, training) is bit-identical to
//! the unsharded path.

use std::collections::VecDeque;
use std::sync::Arc;

use gcwc_linalg::Matrix;

use crate::coarsen::coarsen_once;
use crate::edge_graph::EdgeGraph;
use crate::plan::{ConvPlan, StageSpec};

/// A row-selection view mapping a partition's local rows back to
/// global rows: owned rows first, halo rows after.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RowView {
    local_to_global: Vec<usize>,
    num_owned: usize,
    identity: bool,
}

impl RowView {
    /// Builds a view from the local→global map; the first `num_owned`
    /// entries are the owned rows.
    ///
    /// # Panics
    /// Panics when `num_owned` exceeds the map length.
    pub fn new(local_to_global: Vec<usize>, num_owned: usize) -> Self {
        assert!(num_owned <= local_to_global.len(), "owned rows exceed the view");
        let identity = num_owned == local_to_global.len()
            && local_to_global.iter().enumerate().all(|(l, &g)| l == g);
        Self { local_to_global, num_owned, identity }
    }

    /// The identity view over `n` rows (all owned, no halo).
    pub fn identity(n: usize) -> Self {
        Self { local_to_global: (0..n).collect(), num_owned: n, identity: true }
    }

    /// True when the view is the identity map (every global row owned,
    /// in order) — the `K = 1` fast path.
    pub fn is_identity(&self) -> bool {
        self.identity
    }

    /// Total local rows (owned + halo).
    pub fn num_local(&self) -> usize {
        self.local_to_global.len()
    }

    /// Owned local rows (always the prefix `0..num_owned`).
    pub fn num_owned(&self) -> usize {
        self.num_owned
    }

    /// Halo rows (the suffix).
    pub fn num_halo(&self) -> usize {
        self.local_to_global.len() - self.num_owned
    }

    /// The full local→global row map.
    pub fn local_to_global(&self) -> &[usize] {
        &self.local_to_global
    }

    /// Global indices of the owned rows (sorted ascending).
    pub fn owned(&self) -> &[usize] {
        &self.local_to_global[..self.num_owned]
    }

    /// Global indices of the halo rows (sorted ascending).
    pub fn halo(&self) -> &[usize] {
        &self.local_to_global[self.num_owned..]
    }

    /// Copies the viewed rows of `global` into `local`
    /// (`num_local × cols`, fully overwritten).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn select_into(&self, global: &Matrix, local: &mut Matrix) {
        assert_eq!(local.rows(), self.num_local(), "local row count mismatch");
        assert_eq!(local.cols(), global.cols(), "column count mismatch");
        for (l, &g) in self.local_to_global.iter().enumerate() {
            local.row_mut(l).copy_from_slice(global.row(g));
        }
    }

    /// The viewed rows of `global` as a fresh `num_local × cols` matrix.
    pub fn select(&self, global: &Matrix) -> Matrix {
        let mut local = Matrix::zeros(self.num_local(), global.cols());
        self.select_into(global, &mut local);
        local
    }

    /// The viewed entries of a per-row slice (flags, masks, …).
    pub fn select_slice(&self, global: &[f64]) -> Vec<f64> {
        self.local_to_global.iter().map(|&g| global[g]).collect()
    }

    /// A local loss mask: the viewed entries of `global_mask` with
    /// every halo row forced to `0.0`, so halo duplication never
    /// double-counts in a per-shard loss.
    pub fn owned_mask(&self, global_mask: &[f64]) -> Vec<f64> {
        let mut mask = self.select_slice(global_mask);
        for v in &mut mask[self.num_owned..] {
            *v = 0.0;
        }
        mask
    }

    /// Scatters the owned prefix of `local` into the owned global rows
    /// of `global` (halo rows are not written — their owners write
    /// them).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn scatter_owned(&self, local: &Matrix, global: &mut Matrix) {
        assert!(local.rows() >= self.num_owned, "local matrix misses owned rows");
        assert_eq!(local.cols(), global.cols(), "column count mismatch");
        for (l, &g) in self.owned().iter().enumerate() {
            global.row_mut(g).copy_from_slice(local.row(l));
        }
    }
}

/// One partition: its row view plus the induced local subgraph over
/// owned + halo rows.
#[derive(Clone, Debug)]
pub struct Partition {
    view: RowView,
    graph: EdgeGraph,
}

impl Partition {
    /// The owned/halo row view.
    pub fn view(&self) -> &RowView {
        &self.view
    }

    /// The local subgraph (owned + halo rows, owned first).
    pub fn graph(&self) -> &EdgeGraph {
        &self.graph
    }

    /// Global indices of the owned rows.
    pub fn owned(&self) -> &[usize] {
        self.view.owned()
    }

    /// Global indices of the halo rows.
    pub fn halo(&self) -> &[usize] {
        self.view.halo()
    }

    /// Owned row count.
    pub fn num_owned(&self) -> usize {
        self.view.num_owned()
    }

    /// Local row count (owned + halo).
    pub fn num_local(&self) -> usize {
        self.view.num_local()
    }

    /// This partition's own convolution ladder — scaled Laplacian,
    /// Chebyshev basis, and pooling hierarchy over the *local*
    /// subgraph.
    pub fn conv_plan(&self, specs: &[StageSpec]) -> ConvPlan {
        ConvPlan::build(self.graph.adjacency(), specs)
    }
}

/// Builds one partition from a global ownership assignment: the owned
/// set sorted ascending, its out-of-partition 1-hop neighbourhood as
/// the halo, and the induced local subgraph. This is the *only* place
/// a partition is assembled — [`PartitionSet::build`],
/// [`PartitionSet::from_owner_of`], and the delta-repair path all call
/// it, which is what makes an incrementally repaired partition
/// bit-identical to a from-scratch one.
pub(crate) fn build_partition(graph: &EdgeGraph, owner_of: &[usize], b: usize) -> Partition {
    let n = graph.num_nodes();
    let owned: Vec<usize> = (0..n).filter(|&u| owner_of[u] == b).collect();
    let mut halo: Vec<usize> = owned
        .iter()
        .flat_map(|&u| graph.neighbors(u).iter().copied())
        .filter(|&v| owner_of[v] != b)
        .collect();
    halo.sort_unstable();
    halo.dedup();
    let num_owned = owned.len();
    let mut local_to_global = owned;
    local_to_global.extend_from_slice(&halo);
    let view = RowView::new(local_to_global, num_owned);
    // The identity view clones the graph verbatim (same CSR layout),
    // which is what makes K = 1 bit-identical to the unsharded
    // pipeline end to end.
    let local = if view.num_local() == n && view.is_identity() {
        graph.clone()
    } else {
        graph.induced_subgraph(view.local_to_global())
    };
    Partition { view, graph: local }
}

/// A complete edge-owned partitioning of an edge graph.
///
/// Partitions are held behind [`Arc`] so a topology repair
/// ([`crate::delta`]) can hand untouched partitions to the new set
/// without copying them — downstream caches keyed on the partition
/// pointer stay warm.
#[derive(Clone, Debug)]
pub struct PartitionSet {
    partitions: Vec<Arc<Partition>>,
    owner_of: Vec<usize>,
    boundary: Vec<bool>,
}

impl PartitionSet {
    /// Partitions `graph` into `k` edge-owned pieces with 1-hop halos.
    ///
    /// Deterministic; every node is owned by exactly one partition,
    /// and when `graph` has at least `k` nodes every partition owns at
    /// least one. `k = 1` yields the identity partition whose local
    /// graph is a clone of `graph`.
    ///
    /// # Panics
    /// Panics when `k == 0`.
    pub fn build(graph: &EdgeGraph, k: usize) -> Self {
        assert!(k >= 1, "need at least one partition");
        let n = graph.num_nodes();
        let bins = if k == 1 { vec![(0..n).collect()] } else { pack_bins(graph, k) };

        let mut owner_of = vec![usize::MAX; n];
        for (b, bin) in bins.iter().enumerate() {
            for &u in bin {
                owner_of[u] = b;
            }
        }
        debug_assert!(owner_of.iter().all(|&o| o != usize::MAX));
        Self::assemble(graph, owner_of, k)
    }

    /// Rebuilds a partition set from an explicit ownership assignment
    /// (`owner_of[u]` = partition owning global node `u`) — the
    /// from-scratch reference the incremental delta repair is pinned
    /// against, and the constructor a repair uses for the partitions it
    /// must rebuild.
    ///
    /// # Panics
    /// Panics when `owner_of.len() != graph.num_nodes()` or an owner
    /// index is `>= k`.
    pub fn from_owner_of(graph: &EdgeGraph, owner_of: Vec<usize>, k: usize) -> Self {
        assert!(k >= 1, "need at least one partition");
        assert_eq!(owner_of.len(), graph.num_nodes(), "owner_of length mismatch");
        assert!(owner_of.iter().all(|&o| o < k), "owner index out of range");
        Self::assemble(graph, owner_of, k)
    }

    fn assemble(graph: &EdgeGraph, owner_of: Vec<usize>, k: usize) -> Self {
        let n = graph.num_nodes();
        let partitions = (0..k).map(|b| Arc::new(build_partition(graph, &owner_of, b))).collect();
        let boundary = (0..n)
            .map(|u| graph.neighbors(u).iter().any(|&v| owner_of[v] != owner_of[u]))
            .collect();
        Self { partitions, owner_of, boundary }
    }

    /// Replaces partition `b` and the ownership/boundary metadata —
    /// the delta-repair path's constructor (crate-internal).
    pub(crate) fn from_parts(
        partitions: Vec<Arc<Partition>>,
        owner_of: Vec<usize>,
        boundary: Vec<bool>,
    ) -> Self {
        Self { partitions, owner_of, boundary }
    }

    /// Number of global nodes.
    pub fn num_nodes(&self) -> usize {
        self.owner_of.len()
    }

    /// Number of partitions `K`.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// All partitions, in index order.
    pub fn partitions(&self) -> &[Arc<Partition>] {
        &self.partitions
    }

    /// Partition `p`.
    pub fn partition(&self, p: usize) -> &Partition {
        &self.partitions[p]
    }

    /// Partition `p` as a shared handle (pointer identity survives a
    /// delta repair for untouched partitions).
    pub fn partition_arc(&self, p: usize) -> Arc<Partition> {
        Arc::clone(&self.partitions[p])
    }

    /// The partition owning global node `u`.
    pub fn owner_of(&self, u: usize) -> usize {
        self.owner_of[u]
    }

    /// The full node→owner assignment.
    pub fn owners(&self) -> &[usize] {
        &self.owner_of
    }

    /// True when node `u` has a neighbour owned by another partition.
    pub fn is_boundary(&self, u: usize) -> bool {
        self.boundary[u]
    }

    /// Global nodes adjacent to a differently-owned node (ascending).
    pub fn boundary_nodes(&self) -> Vec<usize> {
        (0..self.num_nodes()).filter(|&u| self.boundary[u]).collect()
    }

    /// Clones of the per-partition row views, in partition order.
    pub fn views(&self) -> Vec<RowView> {
        self.partitions.iter().map(|p| p.view().clone()).collect()
    }
}

/// Groups nodes into `k` bins: Graclus coarsening down to a handful of
/// clusters per bin, BFS over the coarse graph for contiguity, then
/// greedy sequential packing against the balanced target size.
fn pack_bins(graph: &EdgeGraph, k: usize) -> Vec<Vec<usize>> {
    let n = graph.num_nodes();
    // Coarsen while > 4k clusters remain, composing memberships.
    let mut membership: Vec<Vec<usize>> = (0..n).map(|u| vec![u]).collect();
    let mut adj = graph.adjacency().clone();
    while adj.rows() > 4 * k {
        let lvl = coarsen_once(&adj);
        if lvl.clusters.len() == adj.rows() {
            break; // no shrink possible (e.g. fully disconnected)
        }
        membership = lvl
            .clusters
            .iter()
            .map(|c| c.iter().flat_map(|&m| membership[m].iter().copied()).collect())
            .collect();
        adj = lvl.graph;
    }

    // BFS order over the coarse graph keeps bins regionally contiguous.
    let nc = adj.rows();
    let mut order = Vec::with_capacity(nc);
    let mut seen = vec![false; nc];
    for start in 0..nc {
        if seen[start] {
            continue;
        }
        seen[start] = true;
        let mut queue = VecDeque::from([start]);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for (v, _) in adj.row_entries(u) {
                if !seen[v] {
                    seen[v] = true;
                    queue.push_back(v);
                }
            }
        }
    }

    // Greedy packing: advance to the next bin once the target is met,
    // or when exactly enough clusters remain to fill the later bins —
    // so every bin is non-empty whenever clusters ≥ k.
    let target = n.div_ceil(k);
    let mut bins: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut b = 0usize;
    let mut bin_size = 0usize;
    for (idx, &c) in order.iter().enumerate() {
        let members = &membership[c];
        let remaining = order.len() - idx;
        let bins_after = k - 1 - b;
        if b + 1 < k
            && bin_size > 0
            && (remaining <= bins_after || bin_size + members.len() > target)
        {
            b += 1;
            bin_size = 0;
        }
        bins[b].extend(members.iter().copied());
        bin_size += members.len();
    }
    bins
}

/// Derives shard `k`'s RNG seed from the base seed.
///
/// Shard 0 gets the base seed unchanged — this is what makes K = 1
/// initialisation bit-identical to the unsharded model. Later shards
/// mix the index with the golden-ratio constant so per-shard streams
/// are decorrelated but fully determined by `(seed, shard)`.
pub fn shard_seed(seed: u64, shard: usize) -> u64 {
    seed ^ (shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcwc_linalg::CsrMatrix;

    fn path_graph(n: usize) -> EdgeGraph {
        EdgeGraph::from_adjacency(CsrMatrix::from_triplets(
            n,
            n,
            (0..n - 1).flat_map(|i| [(i, i + 1, 1.0), (i + 1, i, 1.0)]),
        ))
    }

    #[test]
    fn k1_is_identity_with_cloned_graph() {
        let g = path_graph(10);
        let ps = PartitionSet::build(&g, 1);
        assert_eq!(ps.num_partitions(), 1);
        let p = ps.partition(0);
        assert!(p.view().is_identity());
        assert_eq!(p.num_owned(), 10);
        assert_eq!(p.halo(), &[] as &[usize]);
        // CSR layout must match the global graph exactly.
        let (a, b) = (p.graph().adjacency(), g.adjacency());
        assert_eq!(a.to_dense(), b.to_dense());
        assert!(ps.boundary_nodes().is_empty());
    }

    #[test]
    fn path_split_has_expected_halos() {
        let g = path_graph(8);
        let ps = PartitionSet::build(&g, 2);
        assert_eq!(ps.num_partitions(), 2);
        let mut owned_total = 0;
        for p in ps.partitions() {
            owned_total += p.num_owned();
            // Halo is exactly the out-of-partition neighbourhood.
            for &h in p.halo() {
                assert!(p.owned().iter().any(|&u| g.neighbors(u).contains(&h)));
            }
        }
        assert_eq!(owned_total, 8);
        // A path cut in two has exactly one boundary edge -> two
        // boundary nodes.
        assert_eq!(ps.boundary_nodes().len(), 2);
    }

    #[test]
    fn more_partitions_than_nodes_leaves_empties() {
        let g = path_graph(3);
        let ps = PartitionSet::build(&g, 7);
        let owned: usize = ps.partitions().iter().map(|p| p.num_owned()).sum();
        assert_eq!(owned, 3);
        assert_eq!(ps.num_partitions(), 7);
    }

    #[test]
    fn owned_mask_zeroes_halo() {
        let view = RowView::new(vec![2, 5, 0, 7], 2);
        let mask = view.owned_mask(&[1.0; 8]);
        assert_eq!(mask, vec![1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn select_scatter_roundtrip() {
        let view = RowView::new(vec![1, 3, 0], 2);
        let global = Matrix::from_fn(4, 2, |i, j| (i * 10 + j) as f64);
        let local = view.select(&global);
        assert_eq!(local.row(0), global.row(1));
        assert_eq!(local.row(2), global.row(0));
        let mut out = Matrix::zeros(4, 2);
        view.scatter_owned(&local, &mut out);
        assert_eq!(out.row(1), global.row(1));
        assert_eq!(out.row(3), global.row(3));
        assert_eq!(out.row(0), &[0.0, 0.0]); // halo row not written
    }
}
