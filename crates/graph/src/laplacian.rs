//! Graph Laplacians and the Simplified-ChebNet rescaling.
//!
//! `L = D − A` with `D` the diagonal degree matrix, and the scaled
//! Laplacian `L̃ = 2L/λmax − I` whose spectrum lies in `[−1, 1]`, as
//! required by the Chebyshev filters (paper §IV-B).

use gcwc_linalg::{eigen, CsrMatrix};

/// Builds the combinatorial Laplacian `L = D − A`.
///
/// # Panics
/// Panics if `a` is not square.
pub fn laplacian(a: &CsrMatrix) -> CsrMatrix {
    assert_eq!(a.rows(), a.cols(), "adjacency must be square");
    let n = a.rows();
    let degrees = a.row_sums();
    let triplets = a.iter().map(|(i, j, v)| (i, j, -v)).chain((0..n).map(|i| (i, i, degrees[i])));
    CsrMatrix::from_triplets(n, n, triplets)
}

/// Largest eigenvalue of the Laplacian via power iteration.
pub fn lambda_max(l: &CsrMatrix) -> f64 {
    eigen::largest_eigenvalue(l, 1_000, 1e-9)
}

/// Builds the scaled Laplacian `L̃ = 2L/λmax − I`.
///
/// When the graph has no edges (`λmax = 0`) the convention `L̃ = −I` is
/// used (the limit of the formula as `L → 0` with λmax clamped to a small
/// positive value), which keeps Chebyshev filters well defined.
pub fn scaled_laplacian(a: &CsrMatrix) -> CsrMatrix {
    let l = laplacian(a);
    let lmax = lambda_max(&l).max(1e-12);
    let n = l.rows();
    let scaled = l.scale(2.0 / lmax);
    let neg_identity = CsrMatrix::from_triplets(n, n, (0..n).map(|i| (i, i, -1.0)));
    scaled.add(&neg_identity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcwc_linalg::Matrix;

    fn path3_adjacency() -> CsrMatrix {
        CsrMatrix::from_dense(&Matrix::from_rows(&[
            &[0.0, 1.0, 0.0],
            &[1.0, 0.0, 1.0],
            &[0.0, 1.0, 0.0],
        ]))
    }

    #[test]
    fn laplacian_rows_sum_to_zero() {
        let l = laplacian(&path3_adjacency());
        for s in l.row_sums() {
            assert!(s.abs() < 1e-12);
        }
    }

    #[test]
    fn laplacian_known_values() {
        let l = laplacian(&path3_adjacency()).to_dense();
        let expected =
            Matrix::from_rows(&[&[1.0, -1.0, 0.0], &[-1.0, 2.0, -1.0], &[0.0, -1.0, 1.0]]);
        assert!(l.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn lambda_max_path3() {
        let l = laplacian(&path3_adjacency());
        assert!((lambda_max(&l) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn scaled_laplacian_spectrum_in_unit_interval() {
        let lt = scaled_laplacian(&path3_adjacency());
        // λ(L) ∈ {0, 1, 3} → λ(L̃) = 2λ/3 − 1 ∈ {−1, −1/3, 1}.
        let max = eigen::largest_eigenvalue(&lt, 1000, 1e-10);
        assert!(max <= 1.0 + 1e-6, "max eigenvalue {max}");
        // Symmetry must be preserved.
        let d = lt.to_dense();
        assert!(d.approx_eq(&d.transpose(), 1e-12));
    }

    #[test]
    fn scaled_laplacian_of_empty_graph_is_neg_identity() {
        let a = CsrMatrix::from_triplets(3, 3, []);
        let lt = scaled_laplacian(&a).to_dense();
        assert!(lt.approx_eq(&Matrix::identity(3).scale(-1.0), 1e-9));
    }
}
