//! # gcwc-graph
//!
//! Graph machinery for the GCWC reproduction: directed road networks,
//! the paper's edge-graph construction (§III-A), combinatorial and
//! scaled Laplacians, Chebyshev / random-walk polynomial filter bases,
//! Graclus-style multilevel coarsening, and graph max-pooling maps.

#![warn(missing_docs)]

pub mod chebyshev;
pub mod coarsen;
pub mod edge_graph;
pub mod laplacian;
pub mod pool;
pub mod road;

pub use chebyshev::{ChebyshevBasis, PolyBasis, RandomWalkBasis};
pub use coarsen::{coarsen_once, CoarsenLevel, GraphHierarchy};
pub use edge_graph::EdgeGraph;
pub use pool::PoolingMap;
pub use road::{RoadClass, RoadEdge, RoadNetwork, Vertex};
