//! # gcwc-graph
//!
//! Graph machinery for the GCWC reproduction: directed road networks,
//! the paper's edge-graph construction (§III-A), combinatorial and
//! scaled Laplacians, Chebyshev / random-walk polynomial filter bases,
//! Graclus-style multilevel coarsening, graph max-pooling maps, shared
//! convolution-ladder construction ([`ConvPlan`]), and edge-owned
//! partitioning with 1-hop halos for sharded completion
//! ([`PartitionSet`]).

#![warn(missing_docs)]

pub mod chebyshev;
pub mod coarsen;
pub mod delta;
pub mod edge_graph;
pub mod laplacian;
pub mod partition;
pub mod plan;
pub mod pool;
pub mod road;

pub use chebyshev::{ChebyshevBasis, PolyBasis, RandomWalkBasis};
pub use coarsen::{coarsen_once, CoarsenLevel, GraphHierarchy};
pub use delta::{repair_plans, DeltaError, DeltaRepair, GraphDelta};
pub use edge_graph::EdgeGraph;
pub use partition::{shard_seed, Partition, PartitionSet, RowView};
pub use plan::{log2_exact, ConvPlan, ConvStage, StageSpec};
pub use pool::PoolingMap;
pub use road::{RoadClass, RoadEdge, RoadNetwork, Vertex};

/// Failpoint site names this crate evaluates (see `gcwc_failpoint`;
/// sites are inert unless the `failpoints` feature is enabled *and*
/// the site is armed).
pub mod failsite {
    /// Delta application, evaluated before any graph state is built;
    /// `err` refuses the delta and the pre-delta graph keeps serving.
    pub const DELTA_APPLY: &str = crate::delta::DELTA_APPLY_SITE;
}
