//! # gcwc-graph
//!
//! Graph machinery for the GCWC reproduction: directed road networks,
//! the paper's edge-graph construction (§III-A), combinatorial and
//! scaled Laplacians, Chebyshev / random-walk polynomial filter bases,
//! Graclus-style multilevel coarsening, graph max-pooling maps, shared
//! convolution-ladder construction ([`ConvPlan`]), and edge-owned
//! partitioning with 1-hop halos for sharded completion
//! ([`PartitionSet`]).

#![warn(missing_docs)]

pub mod chebyshev;
pub mod coarsen;
pub mod edge_graph;
pub mod laplacian;
pub mod partition;
pub mod plan;
pub mod pool;
pub mod road;

pub use chebyshev::{ChebyshevBasis, PolyBasis, RandomWalkBasis};
pub use coarsen::{coarsen_once, CoarsenLevel, GraphHierarchy};
pub use edge_graph::EdgeGraph;
pub use partition::{shard_seed, Partition, PartitionSet, RowView};
pub use plan::{log2_exact, ConvPlan, ConvStage, StageSpec};
pub use pool::PoolingMap;
pub use road::{RoadClass, RoadEdge, RoadNetwork, Vertex};
