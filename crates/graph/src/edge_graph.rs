//! Edge graphs `G = (E, A)` per §III-A of the paper.
//!
//! The nodes of the edge graph are the *directed edges* of the road
//! network; `A[i][j] = 1` iff travel is possible from edge `e_i` to edge
//! `e_j` (or from `e_j` to `e_i`) through a single shared vertex — i.e.
//! `head(e_i) = tail(e_j)` or `head(e_j) = tail(e_i)`. This makes `A`
//! symmetric and the edge graph undirected, exactly as in the paper's
//! Figure 2 (where `A[5][2] = 1` but `A[2][1] = 0`).

use crate::road::RoadNetwork;
use gcwc_linalg::{CsrMatrix, Matrix};

/// The undirected edge graph of a road network.
#[derive(Clone, Debug)]
pub struct EdgeGraph {
    n: usize,
    adjacency: CsrMatrix,
    neighbors: Vec<Vec<usize>>,
}

impl EdgeGraph {
    /// Builds the edge graph of `net` following §III-A.
    pub fn from_road_network(net: &RoadNetwork) -> Self {
        let n = net.num_edges();
        let mut triplets = Vec::new();
        let mut neighbors = vec![Vec::new(); n];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let (ei, ej) = (net.edge(i), net.edge(j));
                // Travel e_i -> e_j or e_j -> e_i via one shared vertex.
                if ei.to == ej.from || ej.to == ei.from {
                    triplets.push((i, j, 1.0));
                }
            }
        }
        let adjacency = CsrMatrix::from_triplets(n, n, triplets);
        for (i, nbrs) in neighbors.iter_mut().enumerate() {
            nbrs.extend(adjacency.row_entries(i).map(|(c, _)| c));
        }
        Self { n, adjacency, neighbors }
    }

    /// Builds an edge graph directly from a symmetric adjacency matrix
    /// (used by the scalability harness to tile networks).
    ///
    /// # Panics
    /// Panics if `a` is not square or not symmetric.
    pub fn from_adjacency(a: CsrMatrix) -> Self {
        assert_eq!(a.rows(), a.cols(), "adjacency must be square");
        for (i, j, v) in a.iter() {
            assert!(
                (a.get(j, i) - v).abs() < 1e-12,
                "adjacency must be symmetric (mismatch at ({i},{j}))"
            );
        }
        let n = a.rows();
        let mut neighbors = vec![Vec::new(); n];
        for (i, nbrs) in neighbors.iter_mut().enumerate() {
            nbrs.extend(a.row_entries(i).map(|(c, _)| c));
        }
        Self { n, adjacency: a, neighbors }
    }

    /// Number of nodes (road-network edges).
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// The symmetric adjacency matrix `A`.
    pub fn adjacency(&self) -> &CsrMatrix {
        &self.adjacency
    }

    /// Dense copy of `A` (tests, small graphs).
    pub fn adjacency_dense(&self) -> Matrix {
        self.adjacency.to_dense()
    }

    /// Neighbours of node `i`.
    pub fn neighbors(&self, i: usize) -> &[usize] {
        &self.neighbors[i]
    }

    /// Degree of node `i`.
    pub fn degree(&self, i: usize) -> usize {
        self.neighbors[i].len()
    }

    /// Connected components as lists of node indices (BFS).
    pub fn connected_components(&self) -> Vec<Vec<usize>> {
        let mut seen = vec![false; self.n];
        let mut components = Vec::new();
        for start in 0..self.n {
            if seen[start] {
                continue;
            }
            let mut queue = std::collections::VecDeque::from([start]);
            seen[start] = true;
            let mut comp = Vec::new();
            while let Some(u) = queue.pop_front() {
                comp.push(u);
                for &v in &self.neighbors[u] {
                    if !seen[v] {
                        seen[v] = true;
                        queue.push_back(v);
                    }
                }
            }
            comp.sort_unstable();
            components.push(comp);
        }
        components
    }

    /// The largest connected component (ties broken by lowest index).
    pub fn largest_component(&self) -> Vec<usize> {
        self.connected_components().into_iter().max_by_key(|c| c.len()).unwrap_or_default()
    }

    /// Induced subgraph on `nodes` (renumbered in the given order).
    pub fn induced_subgraph(&self, nodes: &[usize]) -> EdgeGraph {
        let mut remap = vec![usize::MAX; self.n];
        for (new, &old) in nodes.iter().enumerate() {
            remap[old] = new;
        }
        let triplets = self.adjacency.iter().filter_map(|(i, j, v)| {
            let (ni, nj) = (remap[i], remap[j]);
            (ni != usize::MAX && nj != usize::MAX).then_some((ni, nj, v))
        });
        EdgeGraph::from_adjacency(CsrMatrix::from_triplets(nodes.len(), nodes.len(), triplets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::road::RoadClass;

    /// The 6-edge road network from the paper's Figure 2:
    /// vertices v1..v4; e1: v1->v2, e2: v2->v1, e3: v2->v3, e4: v3->v2,
    /// e5: v4->v2, e6: v2->v4 (a star around v2 plus the v1 pair).
    fn figure2_network() -> RoadNetwork {
        let mut net = RoadNetwork::new();
        let v1 = net.add_vertex(0.0, 0.0);
        let v2 = net.add_vertex(1.0, 0.0);
        let v3 = net.add_vertex(2.0, 0.0);
        let v4 = net.add_vertex(1.0, 1.0);
        net.add_edge(v1, v2, RoadClass::Local); // e1 (index 0)
        net.add_edge(v2, v1, RoadClass::Local); // e2 (index 1)
        net.add_edge(v2, v3, RoadClass::Local); // e3 (index 2)
        net.add_edge(v3, v2, RoadClass::Local); // e4 (index 3)
        net.add_edge(v4, v2, RoadClass::Local); // e5 (index 4)
        net.add_edge(v2, v4, RoadClass::Local); // e6 (index 5)
        net
    }

    #[test]
    fn adjacency_is_symmetric() {
        let g = EdgeGraph::from_road_network(&figure2_network());
        let a = g.adjacency_dense();
        assert_eq!(a, a.transpose());
    }

    #[test]
    fn figure2_examples_hold() {
        let g = EdgeGraph::from_road_network(&figure2_network());
        let a = g.adjacency_dense();
        // A[5][2] = 1: travel e5 (v4->v2) then e3 (v2->v3) via v2.
        // (paper indexes from 1; ours from 0: e5 is 4, e2 is 1, e3 is 2)
        assert_eq!(a[(4, 2)], 1.0, "e5 -> e3 via v2");
        assert_eq!(a[(4, 1)], 1.0, "e5 -> e2 via v2 (paper's A[5][2]=1)");
        // A[2][1] = 0: neither e2 -> e1 nor e1 -> e2 is a legal turn
        // (e1: v1->v2, e2: v2->v1 — e1 then e2 is a U-turn through v2?
        // e1.to = v2 = e2.from, so actually adjacent).
        // The paper's true zero example: e2 (v2->v1) and e1 (v1->v2)
        // ARE adjacent through both vertices; the zero in the paper's
        // matrix is between edges that share no transfer vertex, e.g.
        // e1 (v1->v2) and e4 (v3->v2): e1.to=v2 != e4.from=v3 and
        // e4.to=v2 != e1.from=v1.
        assert_eq!(a[(0, 3)], 0.0, "e1 and e4 are not single-vertex connected");
        assert_eq!(a[(0, 0)], 0.0, "no self loops");
    }

    #[test]
    fn chain_edge_graph_is_path() {
        // v0 -> v1 -> v2 -> v3: three directed edges forming a path; the
        // edge graph must be the path e0 - e1 - e2.
        let mut net = RoadNetwork::new();
        for i in 0..4 {
            net.add_vertex(i as f64, 0.0);
        }
        net.add_edge(0, 1, RoadClass::Local);
        net.add_edge(1, 2, RoadClass::Local);
        net.add_edge(2, 3, RoadClass::Local);
        let g = EdgeGraph::from_road_network(&net);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(2), 1);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn components_and_largest() {
        // Two disconnected directed chains.
        let mut net = RoadNetwork::new();
        for i in 0..6 {
            net.add_vertex(i as f64, 0.0);
        }
        net.add_edge(0, 1, RoadClass::Local);
        net.add_edge(1, 2, RoadClass::Local);
        net.add_edge(3, 4, RoadClass::Local); // separate component
        let g = EdgeGraph::from_road_network(&net);
        let comps = g.connected_components();
        assert_eq!(comps.len(), 2);
        assert_eq!(g.largest_component(), vec![0, 1]);
    }

    #[test]
    fn induced_subgraph_preserves_local_structure() {
        let g = EdgeGraph::from_road_network(&figure2_network());
        let sub = g.induced_subgraph(&[4, 2, 1]);
        // In the subgraph: node 0 = old 4 (e5), node 1 = old 2 (e3),
        // node 2 = old 1 (e2); e5-e3 and e5-e2 links survive.
        let a = sub.adjacency_dense();
        assert_eq!(a[(0, 1)], 1.0);
        assert_eq!(a[(0, 2)], 1.0);
        assert_eq!(a, a.transpose());
    }

    #[test]
    fn from_adjacency_rejects_asymmetric() {
        let a = CsrMatrix::from_triplets(2, 2, [(0, 1, 1.0)]);
        let result = std::panic::catch_unwind(|| EdgeGraph::from_adjacency(a));
        assert!(result.is_err());
    }
}
