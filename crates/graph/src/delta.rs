//! Incremental topology repair: apply a [`GraphDelta`] to an edge
//! graph and its [`PartitionSet`] without rebuilding the parts the
//! delta does not touch.
//!
//! A delta lists undirected edge-graph links to add and remove. Node
//! indices are *stable*: a road closure severs links but never
//! renumbers nodes, and a new road appends nodes at the end (an added
//! link whose endpoint is `>= n` grows the graph to cover it). That
//! stability is what lets a repair keep untouched partitions — their
//! [`RowView`](crate::RowView)s still name the same global rows.
//!
//! ## Repair algorithm
//!
//! 1. Apply the delta to the global adjacency (removals first, then
//!    additions) and rebuild the [`EdgeGraph`] through the same
//!    canonical CSR constructor a from-scratch build uses.
//! 2. Assign every appended node to the partition owning the majority
//!    of its neighbours (ties to the lowest partition index; isolated
//!    nodes to partition 0).
//! 3. Mark a partition *affected* when its owned ∪ halo row set
//!    intersects the delta's endpoints (or it was assigned a new
//!    node). Only affected partitions are rebuilt — through
//!    [`PartitionSet::from_owner_of`]'s shared constructor, so the
//!    rebuilt partition is bit-identical to a from-scratch one.
//!    Untouched partitions keep their `Arc`s: pointer identity is the
//!    cache-invalidation signal downstream (model shards, completion
//!    caches) keys off.
//!
//! The correctness argument for reuse: a changed link has both
//! endpoints in the delta's endpoint set, so any partition whose local
//! rows see the change is marked affected; an unaffected partition's
//! owned set, halo set, and induced local subgraph are therefore
//! byte-identical before and after the delta.

use std::collections::BTreeMap;
use std::sync::Arc;

use gcwc_linalg::CsrMatrix;

use crate::edge_graph::EdgeGraph;
use crate::partition::{build_partition, Partition, PartitionSet};
use crate::plan::{ConvPlan, StageSpec};

/// Failpoint site evaluated at the top of [`GraphDelta::apply`] (and
/// thus every repair); `err` refuses the delta with
/// [`DeltaError::Injected`] leaving the old graph serving.
pub const DELTA_APPLY_SITE: &str = "graph.delta.apply";

/// A topology change: undirected links between edge-graph nodes to
/// remove (closures) and add (new turns / new roads). An added link
/// with an endpoint `>= num_nodes` appends nodes up to that index.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GraphDelta {
    /// Links to add, as unordered node pairs (weight 1.0).
    pub added_edges: Vec<(usize, usize)>,
    /// Links to remove; each must exist in the pre-delta graph.
    pub removed_edges: Vec<(usize, usize)>,
}

/// Why a delta could not be applied. The pre-delta graph is untouched
/// in every case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// A link endpoint pairs a node with itself.
    SelfLoop(usize),
    /// A removed link does not exist (or names a node `>= n`).
    MissingEdge(usize, usize),
    /// An added link already exists (or is listed twice).
    DuplicateEdge(usize, usize),
    /// An armed failpoint injected a failure at [`DELTA_APPLY_SITE`].
    Injected(&'static str),
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::SelfLoop(u) => write!(f, "delta link ({u},{u}) is a self loop"),
            DeltaError::MissingEdge(u, v) => write!(f, "removed link ({u},{v}) does not exist"),
            DeltaError::DuplicateEdge(u, v) => write!(f, "added link ({u},{v}) already exists"),
            DeltaError::Injected(site) => write!(f, "failpoint {site}: injected failure"),
        }
    }
}

impl std::error::Error for DeltaError {}

fn norm(u: usize, v: usize) -> (usize, usize) {
    if u < v {
        (u, v)
    } else {
        (v, u)
    }
}

impl GraphDelta {
    /// True when the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.added_edges.is_empty() && self.removed_edges.is_empty()
    }

    /// Node count after applying to a graph of `n` nodes.
    pub fn new_num_nodes(&self, n: usize) -> usize {
        self.added_edges.iter().map(|&(u, v)| u.max(v) + 1).fold(n, usize::max)
    }

    /// Every node an added or removed link touches, sorted, deduped
    /// (including appended nodes).
    pub fn touched_nodes(&self) -> Vec<usize> {
        let mut nodes: Vec<usize> =
            self.added_edges.iter().chain(&self.removed_edges).flat_map(|&(u, v)| [u, v]).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// Applies the delta to `graph`, producing the post-delta edge
    /// graph. Removals are processed before additions, so removing a
    /// link and re-adding it is legal. The result goes through the
    /// same canonical CSR constructor as a from-scratch build, so it
    /// is bit-identical to one.
    pub fn apply(&self, graph: &EdgeGraph) -> Result<EdgeGraph, DeltaError> {
        if gcwc_failpoint::triggered(DELTA_APPLY_SITE) {
            return Err(DeltaError::Injected(DELTA_APPLY_SITE));
        }
        let n = graph.num_nodes();
        let new_n = self.new_num_nodes(n);
        let mut links: BTreeMap<(usize, usize), f64> = graph
            .adjacency()
            .iter()
            .filter(|&(i, j, _)| i < j)
            .map(|(i, j, w)| ((i, j), w))
            .collect();
        for &(u, v) in &self.removed_edges {
            if u == v {
                return Err(DeltaError::SelfLoop(u));
            }
            if u >= n || v >= n || links.remove(&norm(u, v)).is_none() {
                return Err(DeltaError::MissingEdge(u, v));
            }
        }
        for &(u, v) in &self.added_edges {
            if u == v {
                return Err(DeltaError::SelfLoop(u));
            }
            if links.insert(norm(u, v), 1.0).is_some() {
                return Err(DeltaError::DuplicateEdge(u, v));
            }
        }
        let triplets = links.iter().flat_map(|(&(u, v), &w)| [(u, v, w), (v, u, w)]);
        Ok(EdgeGraph::from_adjacency(CsrMatrix::from_triplets(new_n, new_n, triplets)))
    }
}

/// The result of an incremental repair: the post-delta graph, the
/// repaired partition set (untouched partitions share their `Arc`s
/// with the old set), and which partition indices were rebuilt.
#[derive(Debug)]
pub struct DeltaRepair {
    /// The post-delta global edge graph.
    pub graph: EdgeGraph,
    /// The repaired partition set over [`DeltaRepair::graph`].
    pub partitions: PartitionSet,
    /// Indices of the partitions that were rebuilt (ascending).
    pub repaired: Vec<usize>,
}

impl PartitionSet {
    /// Applies `delta` to this partition set over its `graph`,
    /// rebuilding only the partitions whose owned/halo rows the delta
    /// touches. See the [module docs](crate::delta) for the algorithm
    /// and the reuse-correctness argument.
    ///
    /// # Panics
    /// Panics when `graph` does not match this set's node count.
    pub fn apply_delta(
        &self,
        graph: &EdgeGraph,
        delta: &GraphDelta,
    ) -> Result<DeltaRepair, DeltaError> {
        assert_eq!(graph.num_nodes(), self.num_nodes(), "graph/partition node count mismatch");
        let new_graph = delta.apply(graph)?;
        let n_old = self.num_nodes();
        let k = self.num_partitions();

        // Appended nodes: majority-neighbour owner, ties to the lowest
        // partition index, isolated nodes to partition 0. Processed in
        // index order so a new node linked only to later new nodes
        // still resolves deterministically.
        let mut owner_of = self.owners().to_vec();
        for u in n_old..new_graph.num_nodes() {
            let mut counts = vec![0usize; k];
            for &v in new_graph.neighbors(u) {
                if v < owner_of.len() {
                    counts[owner_of[v]] += 1;
                }
            }
            let owner = (0..k).max_by_key(|&b| (counts[b], k - b)).unwrap_or(0);
            owner_of.push(owner);
        }

        let touched = delta.touched_nodes();
        let mut affected = vec![false; k];
        for &u in owner_of.iter().skip(n_old) {
            affected[u] = true; // partitions gaining a new owned node
        }
        for (b, flag) in affected.iter_mut().enumerate() {
            if !*flag {
                let local = self.partition(b).view().local_to_global();
                *flag = local.iter().any(|g| touched.binary_search(g).is_ok());
            }
        }

        let mut repaired = Vec::new();
        let partitions: Vec<Arc<Partition>> = (0..k)
            .map(|b| {
                if affected[b] {
                    repaired.push(b);
                    Arc::new(build_partition(&new_graph, &owner_of, b))
                } else {
                    self.partition_arc(b)
                }
            })
            .collect();
        let boundary = (0..new_graph.num_nodes())
            .map(|u| new_graph.neighbors(u).iter().any(|&v| owner_of[v] != owner_of[u]))
            .collect();
        let partitions = PartitionSet::from_parts(partitions, owner_of, boundary);
        Ok(DeltaRepair { graph: new_graph, partitions, repaired })
    }
}

/// Repairs a per-partition [`ConvPlan`] ladder after a delta: rebuilt
/// partitions get a fresh plan over their new local subgraph, while
/// untouched partitions keep their old plan `Arc` (the Laplacian,
/// Chebyshev bases, and pooling hierarchy inside it are unchanged
/// because the local subgraph is unchanged).
///
/// # Panics
/// Panics when `old_plans` does not match the repair's partition count.
pub fn repair_plans(
    old_plans: &[Arc<ConvPlan>],
    repair: &DeltaRepair,
    specs: &[StageSpec],
) -> Vec<Arc<ConvPlan>> {
    assert_eq!(
        old_plans.len(),
        repair.partitions.num_partitions(),
        "plan count does not match partition count"
    );
    (0..old_plans.len())
        .map(|b| {
            if repair.repaired.binary_search(&b).is_ok() {
                Arc::new(repair.partitions.partition(b).conv_plan(specs))
            } else {
                Arc::clone(&old_plans[b])
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> EdgeGraph {
        EdgeGraph::from_adjacency(CsrMatrix::from_triplets(
            n,
            n,
            (0..n - 1).flat_map(|i| [(i, i + 1, 1.0), (i + 1, i, 1.0)]),
        ))
    }

    #[test]
    fn empty_delta_reuses_every_partition() {
        let g = path_graph(12);
        let ps = PartitionSet::build(&g, 3);
        let repair = ps.apply_delta(&g, &GraphDelta::default()).unwrap();
        assert!(repair.repaired.is_empty());
        for b in 0..3 {
            assert!(Arc::ptr_eq(&ps.partitions()[b], &repair.partitions.partitions()[b]));
        }
        assert_eq!(repair.graph.adjacency().to_dense(), g.adjacency().to_dense());
    }

    #[test]
    fn removal_repairs_only_touching_partitions() {
        let g = path_graph(12);
        let ps = PartitionSet::build(&g, 3);
        // Sever a link interior to the first partition's owned block.
        let (u, v) = (0usize, 1usize);
        assert_eq!(ps.owner_of(u), ps.owner_of(v));
        let delta = GraphDelta { added_edges: vec![], removed_edges: vec![(u, v)] };
        let repair = ps.apply_delta(&g, &delta).unwrap();
        assert!(repair.repaired.len() < 3, "a localized delta must not rebuild everything");
        assert!(repair.repaired.contains(&ps.owner_of(u)));
        for b in 0..3 {
            let reused = Arc::ptr_eq(&ps.partitions()[b], &repair.partitions.partitions()[b]);
            assert_eq!(reused, !repair.repaired.contains(&b));
        }
        assert_eq!(repair.graph.degree(0), 0);
    }

    #[test]
    fn appended_node_joins_its_neighbours_partition() {
        let g = path_graph(8);
        let ps = PartitionSet::build(&g, 2);
        let delta = GraphDelta { added_edges: vec![(7, 8)], removed_edges: vec![] };
        let repair = ps.apply_delta(&g, &delta).unwrap();
        assert_eq!(repair.graph.num_nodes(), 9);
        assert_eq!(repair.partitions.owner_of(8), ps.owner_of(7));
        assert_eq!(repair.partitions.num_nodes(), 9);
    }

    #[test]
    fn bad_deltas_are_rejected_without_side_effects() {
        let g = path_graph(4);
        let ps = PartitionSet::build(&g, 2);
        let missing = GraphDelta { added_edges: vec![], removed_edges: vec![(0, 2)] };
        assert_eq!(ps.apply_delta(&g, &missing).unwrap_err(), DeltaError::MissingEdge(0, 2));
        let dup = GraphDelta { added_edges: vec![(0, 1)], removed_edges: vec![] };
        assert_eq!(ps.apply_delta(&g, &dup).unwrap_err(), DeltaError::DuplicateEdge(0, 1));
        let loopy = GraphDelta { added_edges: vec![(2, 2)], removed_edges: vec![] };
        assert_eq!(ps.apply_delta(&g, &loopy).unwrap_err(), DeltaError::SelfLoop(2));
    }

    #[test]
    fn remove_then_readd_is_identity_on_links() {
        let g = path_graph(6);
        let ps = PartitionSet::build(&g, 2);
        let delta = GraphDelta { added_edges: vec![(2, 3)], removed_edges: vec![(2, 3)] };
        let repair = ps.apply_delta(&g, &delta).unwrap();
        assert_eq!(repair.graph.adjacency().to_dense(), g.adjacency().to_dense());
    }
}
