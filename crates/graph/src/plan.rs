//! Shared construction of a graph-convolution stack: the coarsening
//! hierarchy, one scaled-Laplacian Chebyshev basis per stage, and the
//! pooling maps between stages.
//!
//! Both the model encoder in `gcwc-core` and the graph-level tests
//! construct the same `(basis, pooling)` ladder from an adjacency
//! matrix; [`ConvPlan::build`] is the single place that walks the
//! hierarchy, so "scale the Laplacian, expand the Chebyshev basis,
//! compose the pooling clusters" is written exactly once. The
//! partition module reuses it to give every partition its own basis
//! stack over its local subgraph.

use std::sync::Arc;

use gcwc_linalg::{CsrMatrix, KernelTier};

use crate::chebyshev::ChebyshevBasis;
use crate::coarsen::GraphHierarchy;
use crate::pool::PoolingMap;

/// Shape of one convolution stage: Chebyshev order and the pooling
/// size applied after it (`1` = no pooling; otherwise a power of two).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageSpec {
    /// Chebyshev polynomial order `K`.
    pub cheb_order: usize,
    /// Graph pooling size after the convolution (power of two; 1 = none).
    pub pool: usize,
}

/// One built stage: the Chebyshev basis over the stage's graph level
/// and the pooling map into the next level (if any).
pub struct ConvStage {
    /// Chebyshev basis on the scaled Laplacian of this stage's graph.
    pub basis: Arc<ChebyshevBasis>,
    /// Pooling over composed Graclus clusters, when `pool > 1`.
    pub pool: Option<Arc<PoolingMap>>,
    /// Nodes entering the stage.
    pub in_nodes: usize,
    /// Nodes leaving the stage (after pooling).
    pub out_nodes: usize,
}

/// A fully built convolution ladder over one adjacency matrix.
pub struct ConvPlan {
    hierarchy: GraphHierarchy,
    stages: Vec<ConvStage>,
    kernel_tier: KernelTier,
}

impl ConvPlan {
    /// Builds the coarsening hierarchy and per-stage bases/pools for
    /// `specs` over `adjacency`.
    ///
    /// # Panics
    /// Panics when `specs` is empty or a pool size is not a power of
    /// two.
    pub fn build(adjacency: &CsrMatrix, specs: &[StageSpec]) -> Self {
        assert!(!specs.is_empty(), "a convolution plan needs at least one stage");
        let levels: usize = specs.iter().map(|s| log2_exact(s.pool)).sum();
        let hierarchy = GraphHierarchy::build(adjacency, levels);
        let mut level = 0usize;
        let mut stages = Vec::with_capacity(specs.len());
        for spec in specs {
            let in_nodes = hierarchy.num_nodes(level);
            let basis =
                Arc::new(ChebyshevBasis::from_adjacency(hierarchy.graph(level), spec.cheb_order));
            let (pool, out_nodes) = if spec.pool > 1 {
                let to = level + log2_exact(spec.pool);
                let map = Arc::new(PoolingMap::from_hierarchy(&hierarchy, level, to));
                let out = map.num_outputs();
                level = to;
                (Some(map), out)
            } else {
                (None, in_nodes)
            };
            stages.push(ConvStage { basis, pool, in_nodes, out_nodes });
        }
        // Plan-time kernel-tier choice from the widest level: every
        // dense kernel in the model works on `n × features` buffers, so
        // the input node count is the size that matters.
        let kernel_tier = KernelTier::for_nodes(adjacency.rows());
        Self { hierarchy, stages, kernel_tier }
    }

    /// The coarsening hierarchy the stages were built over.
    pub fn hierarchy(&self) -> &GraphHierarchy {
        &self.hierarchy
    }

    /// The built stages, in order.
    pub fn stages(&self) -> &[ConvStage] {
        &self.stages
    }

    /// Nodes left after the final stage's pooling.
    pub fn out_nodes(&self) -> usize {
        self.stages.last().expect("non-empty plan").out_nodes
    }

    /// The kernel tier chosen at plan time from the graph size (see
    /// [`KernelTier::for_nodes`]). Models install it as the default
    /// tier around their forward passes; explicit overrides
    /// (`GCWC_KERNEL_TIER`, `with_tier`, `set_global_tier`) still win,
    /// and because the tiers are bit-identical the choice never affects
    /// results.
    pub fn kernel_tier(&self) -> KernelTier {
        self.kernel_tier
    }

    /// Consumes the plan, yielding the stages for a model to own.
    pub fn into_stages(self) -> Vec<ConvStage> {
        self.stages
    }
}

/// `log2` for exact powers of two.
///
/// # Panics
/// Panics when `p` is not a power of two.
pub fn log2_exact(p: usize) -> usize {
    assert!(p.is_power_of_two(), "pool size {p} is not a power of two");
    p.trailing_zeros() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chebyshev::PolyBasis;

    fn path(n: usize) -> CsrMatrix {
        CsrMatrix::from_triplets(n, n, (0..n - 1).flat_map(|i| [(i, i + 1, 1.0), (i + 1, i, 1.0)]))
    }

    #[test]
    fn plan_matches_manual_ladder() {
        let a = path(16);
        let specs = [StageSpec { cheb_order: 4, pool: 4 }, StageSpec { cheb_order: 3, pool: 2 }];
        let plan = ConvPlan::build(&a, &specs);
        assert_eq!(plan.stages().len(), 2);
        assert_eq!(plan.stages()[0].in_nodes, 16);
        // Pooling by 4 then 2 composes three coarsening levels.
        assert_eq!(plan.hierarchy().num_levels(), 3);
        assert_eq!(plan.stages()[0].out_nodes, plan.hierarchy().num_nodes(2));
        assert_eq!(plan.stages()[1].out_nodes, plan.out_nodes());
        assert_eq!(plan.stages()[0].basis.order(), 4);
        assert!(plan.stages()[0].pool.is_some());
    }

    #[test]
    fn pool_of_one_skips_pooling() {
        let plan = ConvPlan::build(&path(8), &[StageSpec { cheb_order: 2, pool: 1 }]);
        assert!(plan.stages()[0].pool.is_none());
        assert_eq!(plan.out_nodes(), 8);
        assert_eq!(plan.hierarchy().num_levels(), 0);
    }

    #[test]
    fn plan_picks_tier_from_node_count() {
        let small = ConvPlan::build(&path(16), &[StageSpec { cheb_order: 2, pool: 1 }]);
        assert_eq!(small.kernel_tier(), KernelTier::Naive);
        let large = ConvPlan::build(&path(300), &[StageSpec { cheb_order: 2, pool: 1 }]);
        assert_eq!(large.kernel_tier(), KernelTier::Tiled);
    }

    #[test]
    fn log2_exact_values() {
        assert_eq!(log2_exact(1), 0);
        assert_eq!(log2_exact(8), 3);
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn log2_rejects_non_powers() {
        log2_exact(6);
    }
}
