//! Directed road networks `H = (V, E)`.
//!
//! Vertices are road intersections (with planar coordinates, used by the
//! traffic simulator for distances) and edges are directed road segments.

/// A road intersection.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Vertex {
    /// X coordinate (metres, arbitrary origin).
    pub x: f64,
    /// Y coordinate (metres).
    pub y: f64,
}

/// Functional class of a road segment; drives free-flow speed in the
/// simulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RoadClass {
    /// Motorway / tollgate mainline.
    Highway,
    /// Major urban road.
    Arterial,
    /// Minor urban road.
    Local,
}

impl RoadClass {
    /// Typical free-flow speed in m/s for this class.
    pub fn free_flow_speed(self) -> f64 {
        match self {
            RoadClass::Highway => 30.0,
            RoadClass::Arterial => 16.0,
            RoadClass::Local => 10.0,
        }
    }
}

/// A directed road segment from one intersection to another.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RoadEdge {
    /// Tail vertex (travel starts here).
    pub from: usize,
    /// Head vertex (travel ends here).
    pub to: usize,
    /// Functional class.
    pub class: RoadClass,
}

/// A directed road network `H = (V, E)` per §III-A of the paper.
#[derive(Clone, Debug, Default)]
pub struct RoadNetwork {
    vertices: Vec<Vertex>,
    edges: Vec<RoadEdge>,
}

impl RoadNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a vertex, returning its index.
    pub fn add_vertex(&mut self, x: f64, y: f64) -> usize {
        self.vertices.push(Vertex { x, y });
        self.vertices.len() - 1
    }

    /// Adds a directed edge, returning its index.
    ///
    /// # Panics
    /// Panics if either endpoint does not exist or the edge is a self-loop.
    pub fn add_edge(&mut self, from: usize, to: usize, class: RoadClass) -> usize {
        assert!(from < self.vertices.len(), "from vertex {from} missing");
        assert!(to < self.vertices.len(), "to vertex {to} missing");
        assert_ne!(from, to, "self-loop edges are not road segments");
        self.edges.push(RoadEdge { from, to, class });
        self.edges.len() - 1
    }

    /// Adds a pair of directed edges in both directions.
    pub fn add_two_way(&mut self, a: usize, b: usize, class: RoadClass) -> (usize, usize) {
        (self.add_edge(a, b, class), self.add_edge(b, a, class))
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Vertex by index.
    pub fn vertex(&self, i: usize) -> Vertex {
        self.vertices[i]
    }

    /// Edge by index.
    pub fn edge(&self, i: usize) -> RoadEdge {
        self.edges[i]
    }

    /// All edges.
    pub fn edges(&self) -> &[RoadEdge] {
        &self.edges
    }

    /// Euclidean length of edge `i` in metres.
    pub fn edge_length(&self, i: usize) -> f64 {
        let e = self.edges[i];
        let (a, b) = (self.vertices[e.from], self.vertices[e.to]);
        ((a.x - b.x).powi(2) + (a.y - b.y).powi(2)).sqrt()
    }

    /// Restricts the network to the given edge indices, renumbering edges
    /// (vertices are kept). Returns the sub-network and, for provenance,
    /// the original index of each retained edge.
    pub fn edge_subnetwork(&self, keep: &[usize]) -> (RoadNetwork, Vec<usize>) {
        let mut sub = RoadNetwork { vertices: self.vertices.clone(), edges: Vec::new() };
        let mut original = Vec::with_capacity(keep.len());
        for &i in keep {
            sub.edges.push(self.edges[i]);
            original.push(i);
        }
        (sub, original)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_segment_road() -> RoadNetwork {
        let mut net = RoadNetwork::new();
        let a = net.add_vertex(0.0, 0.0);
        let b = net.add_vertex(100.0, 0.0);
        let c = net.add_vertex(100.0, 100.0);
        net.add_edge(a, b, RoadClass::Arterial);
        net.add_edge(b, c, RoadClass::Local);
        net
    }

    #[test]
    fn counts() {
        let net = two_segment_road();
        assert_eq!(net.num_vertices(), 3);
        assert_eq!(net.num_edges(), 2);
    }

    #[test]
    fn edge_length_euclidean() {
        let net = two_segment_road();
        assert!((net.edge_length(0) - 100.0).abs() < 1e-12);
        assert!((net.edge_length(1) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn two_way_adds_both_directions() {
        let mut net = RoadNetwork::new();
        let a = net.add_vertex(0.0, 0.0);
        let b = net.add_vertex(1.0, 0.0);
        let (f, r) = net.add_two_way(a, b, RoadClass::Highway);
        assert_eq!(net.edge(f).from, a);
        assert_eq!(net.edge(r).from, b);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loops() {
        let mut net = RoadNetwork::new();
        let a = net.add_vertex(0.0, 0.0);
        net.add_edge(a, a, RoadClass::Local);
    }

    #[test]
    fn free_flow_ordering() {
        assert!(RoadClass::Highway.free_flow_speed() > RoadClass::Arterial.free_flow_speed());
        assert!(RoadClass::Arterial.free_flow_speed() > RoadClass::Local.free_flow_speed());
    }

    #[test]
    fn subnetwork_keeps_selected_edges() {
        let net = two_segment_road();
        let (sub, orig) = net.edge_subnetwork(&[1]);
        assert_eq!(sub.num_edges(), 1);
        assert_eq!(orig, vec![1]);
        assert_eq!(sub.edge(0).class, RoadClass::Local);
    }
}
