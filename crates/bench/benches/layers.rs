//! Micro-benchmarks of the computational kernels behind every model:
//! Chebyshev expansion, grouped graph convolution (forward + backward),
//! graph pooling, dense 2-D convolution (CP-CNN), and a full GCWC
//! training step.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcwc::{ModelConfig, TrainSample};
use gcwc_graph::{ChebyshevBasis, GraphHierarchy, PolyBasis, PoolingMap};
use gcwc_linalg::rng::seeded;
use gcwc_linalg::Matrix;
use gcwc_nn::{ConvSpec, ParamStore, Tape};
use gcwc_traffic::{generators, Context};
use std::hint::black_box;

fn city_graph() -> gcwc_graph::EdgeGraph {
    generators::city_network(1).graph
}

fn bench_chebyshev_expansion(c: &mut Criterion) {
    let graph = city_graph();
    let mut group = c.benchmark_group("chebyshev_forward");
    for k in [2usize, 4, 8] {
        let basis = ChebyshevBasis::from_adjacency(graph.adjacency(), k);
        let x = Matrix::from_fn(172, 8, |i, j| ((i + j) % 7) as f64 * 0.1);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| black_box(basis.forward(black_box(&x))))
        });
    }
    group.finish();
}

fn bench_grouped_graph_conv(c: &mut Criterion) {
    let graph = city_graph();
    let basis: Arc<dyn PolyBasis> = Arc::new(ChebyshevBasis::from_adjacency(graph.adjacency(), 8));
    let mut store = ParamStore::new();
    let mut rng = seeded(1);
    let thetas: Vec<_> = (0..8)
        .map(|i| store.add(format!("t{i}"), gcwc_nn::init::glorot_uniform(&mut rng, 1, 8)))
        .collect();
    let input = Matrix::from_fn(172, 8, |i, j| ((i * j) % 5) as f64 * 0.05);
    c.bench_function("graph_conv_fwd_bwd_172x8", |b| {
        b.iter(|| {
            let mut local = store.clone();
            local.zero_grads();
            let mut tape = Tape::new();
            let x = tape.constant(input.clone());
            let th: Vec<_> = thetas.iter().map(|&t| tape.param(&local, t)).collect();
            let y = tape.poly_conv_grouped(x, &th, Arc::clone(&basis), 8);
            let loss = tape.sum_all(y);
            tape.backward(loss, &mut local);
            black_box(local.grad_norm())
        })
    });
}

fn bench_graph_pooling(c: &mut Criterion) {
    let graph = city_graph();
    let h = GraphHierarchy::build(graph.adjacency(), 2);
    let map = PoolingMap::from_hierarchy(&h, 0, 2);
    let x = Matrix::from_fn(172, 64, |i, j| ((i * 31 + j) % 17) as f64);
    c.bench_function("graph_max_pool_172x64", |b| {
        b.iter(|| black_box(map.max_forward(black_box(&x))))
    });
}

fn bench_conv2d_cpcnn(c: &mut Criterion) {
    // The CP-CNN's first convolution at CI scale: batch 172, 4×8 maps.
    let spec = ConvSpec { batch: 172, in_ch: 1, out_ch: 4, h: 4, w: 8, kh: 2, kw: 2 };
    let mut store = ParamStore::new();
    let mut rng = seeded(2);
    let k = store.add("k", gcwc_nn::init::glorot_uniform(&mut rng, 4, 4));
    let bias = store.add("b", Matrix::zeros(1, 4));
    let input = Matrix::from_fn(172, 32, |i, j| ((i + j) % 9) as f64 * 0.1);
    c.bench_function("conv2d_cpcnn_batch172", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let x = tape.constant(input.clone());
            let kn = tape.param(&store, k);
            let bn = tape.param(&store, bias);
            black_box(tape.conv2d(x, kn, bn, spec));
        })
    });
}

fn sample_for(n: usize, m: usize) -> TrainSample {
    let mut rng = seeded(3);
    use rand::Rng;
    let mut mat = Matrix::zeros(n, m);
    let mut flags = vec![0.0; n];
    for e in 0..n {
        if rng.random::<f64>() < 0.5 {
            flags[e] = 1.0;
            for j in 0..m {
                mat[(e, j)] = 1.0 / m as f64;
            }
        }
    }
    TrainSample {
        snapshot_index: 0,
        input: mat.clone(),
        label: mat,
        label_mask: flags.clone(),
        context: Context {
            time_of_day: 0,
            day_of_week: 0,
            intervals_per_day: 96,
            row_flags: flags,
        },
        history: vec![],
    }
}

fn bench_gcwc_step(c: &mut Criterion) {
    use gcwc::CompletionModel;
    let graph = city_graph();
    let sample = sample_for(172, 8);
    c.bench_function("gcwc_train_step_ci", |b| {
        // One full fit over a single sample for one epoch: forward,
        // backward, Adam step.
        b.iter_batched(
            || gcwc::GcwcModel::new(&graph, 8, ModelConfig::ci_hist().with_epochs(1), 1),
            |mut model| {
                model.fit(std::slice::from_ref(&sample));
                black_box(model.num_params())
            },
            criterion::BatchSize::LargeInput,
        )
    });
    c.bench_function("gcwc_predict_ci", |b| {
        let mut model = gcwc::GcwcModel::new(&graph, 8, ModelConfig::ci_hist().with_epochs(1), 1);
        model.fit(std::slice::from_ref(&sample));
        b.iter(|| black_box(model.predict(&sample)))
    });
}

/// Serial vs. parallel throughput of the two kernels behind every
/// model, and of a full data-parallel training batch. Outputs are
/// bit-identical across thread counts; only wall-clock time differs.
fn bench_thread_scaling(c: &mut Criterion) {
    use gcwc::CompletionModel;
    use gcwc_linalg::parallel::with_threads;

    let threads = [1usize, 2, 4];

    let mut group = c.benchmark_group("matmul_512_threads");
    let a = Matrix::from_fn(512, 512, |i, j| ((i * 31 + j) % 23) as f64 * 0.03);
    let b_mat = Matrix::from_fn(512, 512, |i, j| ((i + 7 * j) % 19) as f64 * 0.05);
    for &t in &threads {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            b.iter(|| with_threads(t, || black_box(a.matmul(black_box(&b_mat)))))
        });
    }
    group.finish();

    let graph = city_graph();
    let mut group = c.benchmark_group("chebyshev_k8_threads");
    let basis = ChebyshevBasis::from_adjacency(graph.adjacency(), 8);
    let x = Matrix::from_fn(172, 64, |i, j| ((i + j) % 7) as f64 * 0.1);
    for &t in &threads {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            b.iter(|| with_threads(t, || black_box(basis.forward(black_box(&x)))))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("gcwc_train_batch_threads");
    group.sample_size(10);
    let samples: Vec<TrainSample> = (0..8).map(|_| sample_for(172, 8)).collect();
    for &t in &threads {
        let cfg = ModelConfig::ci_hist().with_epochs(1).with_threads(t);
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, _| {
            b.iter_batched(
                || gcwc::GcwcModel::new(&graph, 8, cfg.clone(), 1),
                |mut model| {
                    model.fit(&samples);
                    black_box(model.num_params())
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_chebyshev_expansion, bench_grouped_graph_conv, bench_graph_pooling,
              bench_conv2d_cpcnn, bench_gcwc_step, bench_thread_scaling
}
criterion_main!(benches);
