//! Criterion companion to Figure 6: training-batch and per-instance
//! testing time of GCWC vs A-GCWC as the network scales.
//!
//! The `exp_runner fig6a/fig6b` binary produces the paper's full curves
//! (scales ×10…×50 with `--full`); this bench keeps small scales under
//! Criterion's statistical machinery for regression tracking.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcwc_bench::{measure, Profile, ScalModel};
use std::hint::black_box;

fn bench_fig6(c: &mut Criterion) {
    let mut profile = Profile::smoke();
    profile.scal_batches = 1;
    let mut group = c.benchmark_group("fig6_train_batch");
    group.sample_size(10);
    for scale in [1usize, 2] {
        for model in [ScalModel::Gcwc, ScalModel::GcwcM2] {
            group.bench_with_input(
                BenchmarkId::new(model.name(), scale),
                &(model, scale),
                |b, &(model, scale)| {
                    b.iter(|| black_box(measure(model, scale, &profile).train_batch_secs))
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig6
}
criterion_main!(benches);
