//! Experiment runner: regenerates every table and figure of the paper.
//!
//! ```text
//! exp_runner [--fast|--full|--smoke] [--threads=N] [--shards=K]
//!            [--replicas=N] [--epochs=N] [--state=DIR] [--resume]
//!            [--json] <command>
//!
//! Commands:
//!   table3             Table III  (model constructions, #Para)
//!   table4 … table13   Tables IV–XIII (MKLR / FLR / MAPE sweeps)
//!   tables             all of Tables IV–XIII
//!   fig6a              Figure 6(a): training time per 20-instance batch
//!   fig6b              Figure 6(b): testing time per instance
//!   threads            serial-vs-parallel training throughput sweep
//!   ablations          design-choice ablations (Chebyshev order, pooling,
//!                      context subsets, HIST-4/8, LSM missing handling)
//!   bench              kernel + training-step micro-benchmarks
//!                      (legacy vs fused in-place pairs); with `--json`,
//!                      also writes `BENCH_bench.json`
//!   serve-bench        end-to-end serving load test (in-process,
//!                      text TCP, binary TCP sequential + pipelined,
//!                      and a connection-scaling sweep with up to 10k
//!                      idle connections; cache stats, p50/p99,
//!                      binary-vs-text speedup); with `--json`, also
//!                      writes `BENCH_serve.json`
//!   shard-sweep        partitioned completion over the synthetic city,
//!                      K ∈ {1,2,4} (or just `--shards=K`): training
//!                      throughput + accuracy delta vs the unsharded
//!                      model, K=1 asserted bit-identical; with
//!                      `--json`, also writes `BENCH_partition.json`
//!   scale-sweep        the paper's scalability protocol at ×10/×25/×50
//!                      (up to 8 600 edges): steady-state training-step
//!                      time, serving p50/p99, peak RSS and allocs/step
//!                      for GCWC and the two-shard GCWC-M2, plus the
//!                      naive-vs-tiled kernel pair at n=860; `--smoke`
//!                      downsamples to the ×10 point; with `--json`,
//!                      also writes `BENCH_scale.json`
//!   ingest-bench       streaming-ingestion benchmark: intake
//!                      throughput (durable log + window fold),
//!                      slot-seal latency, warm-start refresh wall
//!                      time, and allocs/record on the steady-state
//!                      intake path (0 mid-slot; live under
//!                      `--features count-allocs`); with `--json`,
//!                      also writes `BENCH_ingest.json`
//!   tenant-bench       multi-tenant serving benchmark: a victim
//!                      tenant's p50/p99 solo vs under a quota-capped
//!                      noisy neighbor (responses asserted
//!                      bit-identical, fault counters zero),
//!                      delta-repair wall time vs a full post-delta
//!                      rebuild (strictly fewer than K shards
//!                      repaired), and allocs/request on the cached
//!                      path (0 under `--features count-allocs`);
//!                      with `--json`, also writes `BENCH_tenant.json`
//!   replica-bench      replica-group availability benchmark: solo
//!                      (N=1) vs N-replica-per-shard serving p50/p99
//!                      (`--replicas=N`, default 2; responses asserted
//!                      bit-identical), and — when built with
//!                      `--features failpoints` — the kill-one-replica
//!                      schedule: one replica of each group killed by
//!                      ordinal, availability asserted 100% with zero
//!                      degraded responses, survivor responses
//!                      bit-identical, and the warm-standby promotion
//!                      counters asserted visible over both wire
//!                      protocols; with `--json`, also writes
//!                      `BENCH_replica.json`
//!   train              resumable sharded training: checkpoints the
//!                      per-shard training state under `--state=DIR`
//!                      every few epochs; re-running with `--resume`
//!                      continues a killed run bit-identically
//!                      (`--shards=K` and `--epochs=N` set the scale)
//!   all                everything above
//! ```
//!
//! The default profile is `--fast` (minutes on CPU; reduced days/epochs
//! but the full protocol structure). `--full` runs the paper-scale
//! protocol. `--threads=N` pins the worker-thread count for every
//! experiment (results are bit-identical for any value; only wall-clock
//! time changes). Run with `cargo run --release -p gcwc-bench --bin
//! exp_runner -- <command>`.

use gcwc_bench::{
    ablations, ingestbench, jsonbench, params_table, replicabench, resumable, run_table,
    scalability, scalesweep, servebench, shardsweep, tenantbench, Profile, ScalModel,
};

/// Counts every heap allocation so `bench` can report allocs/iter.
/// Build with `--features count-allocs` to activate.
#[cfg(feature = "count-allocs")]
#[global_allocator]
static ALLOC: gcwc_bench::allocs::CountingAlloc = gcwc_bench::allocs::CountingAlloc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut profile = Profile::fast();
    let mut commands: Vec<String> = Vec::new();
    let mut threads = 0usize;
    let mut json = false;
    let mut shards: Option<usize> = None;
    let mut replicas = 2usize;
    let mut state_dir: Option<std::path::PathBuf> = None;
    let mut resume = false;
    let mut epochs: Option<usize> = None;
    let mut smoke = false;
    for a in &args {
        match a.as_str() {
            "--fast" => profile = Profile::fast(),
            "--full" => profile = Profile::full(),
            "--smoke" => {
                profile = Profile::smoke();
                smoke = true;
            }
            "--json" => json = true,
            "--resume" => resume = true,
            flag if flag.starts_with("--state=") => {
                state_dir = Some(std::path::PathBuf::from(&flag["--state=".len()..]));
            }
            flag if flag.starts_with("--epochs=") => {
                epochs = match flag["--epochs=".len()..].parse() {
                    Ok(n) if n >= 1 => Some(n),
                    _ => {
                        eprintln!("--epochs=N takes a positive integer, got {flag:?}");
                        std::process::exit(2);
                    }
                };
            }
            flag if flag.starts_with("--threads=") => {
                threads = match flag["--threads=".len()..].parse() {
                    Ok(n) => n,
                    Err(_) => {
                        eprintln!("--threads=N takes a non-negative integer, got {flag:?}");
                        std::process::exit(2);
                    }
                };
            }
            flag if flag.starts_with("--shards=") => {
                shards = match flag["--shards=".len()..].parse() {
                    Ok(n) if n >= 1 => Some(n),
                    _ => {
                        eprintln!("--shards=K takes a positive integer, got {flag:?}");
                        std::process::exit(2);
                    }
                };
            }
            flag if flag.starts_with("--replicas=") => {
                replicas = match flag["--replicas=".len()..].parse() {
                    Ok(n) if n >= 2 => n,
                    _ => {
                        eprintln!("--replicas=N takes an integer >= 2, got {flag:?}");
                        std::process::exit(2);
                    }
                };
            }
            cmd => commands.push(cmd.to_owned()),
        }
    }
    profile.threads = threads;
    // Models built outside run_training (prediction paths, baselines)
    // follow the process-wide kernel default.
    gcwc_linalg::parallel::set_global_threads(threads);
    if commands.is_empty() {
        eprintln!("usage: exp_runner [--fast|--full|--smoke] [--threads=N] [--shards=K] [--replicas=N] [--epochs=N] [--state=DIR] [--resume] [--json] <table3|table4..table13|tables|fig6a|fig6b|threads|ablations|bench|serve-bench|replica-bench|shard-sweep|scale-sweep|ingest-bench|tenant-bench|train|all>");
        std::process::exit(2);
    }

    for cmd in commands {
        match cmd.as_str() {
            "table3" => {
                println!("{}", params_table::render(&params_table::table3(&profile)));
            }
            "tables" => {
                gcwc_bench::tables::for_each_table(&profile, |t| {
                    println!("{}", t.render());
                    use std::io::Write as _;
                    let _ = std::io::stdout().flush();
                });
            }
            "fig6a" => run_fig6(&profile, true, false),
            "fig6b" => run_fig6(&profile, false, true),
            "threads" => run_thread_sweep(&profile),
            "ablations" => {
                println!("{}", ablations::render(&ablations::run_all(&profile)));
            }
            "bench" => {
                let records = jsonbench::run_all();
                print!("{}", jsonbench::render(&records));
                if json {
                    let path = "BENCH_bench.json";
                    if let Err(e) = std::fs::write(path, jsonbench::to_json(&records)) {
                        eprintln!("failed to write {path}: {e}");
                        std::process::exit(1);
                    }
                    println!("wrote {path}");
                }
            }
            "serve-bench" => {
                let report = servebench::run();
                print!("{}", servebench::render(&report));
                if json {
                    let path = "BENCH_serve.json";
                    if let Err(e) = std::fs::write(path, servebench::to_json(&report)) {
                        eprintln!("failed to write {path}: {e}");
                        std::process::exit(1);
                    }
                    println!("wrote {path}");
                }
            }
            "replica-bench" => {
                let report = replicabench::run(replicas);
                print!("{}", replicabench::render(&report));
                if json {
                    let path = "BENCH_replica.json";
                    if let Err(e) = std::fs::write(path, replicabench::to_json(&report)) {
                        eprintln!("failed to write {path}: {e}");
                        std::process::exit(1);
                    }
                    println!("wrote {path}");
                }
            }
            "shard-sweep" => {
                let counts: Vec<usize> = match shards {
                    Some(k) => vec![k],
                    None => vec![1, 2, 4],
                };
                let report = shardsweep::run(&counts);
                print!("{}", shardsweep::render(&report));
                if json {
                    let path = "BENCH_partition.json";
                    if let Err(e) = std::fs::write(path, shardsweep::to_json(&report)) {
                        eprintln!("failed to write {path}: {e}");
                        std::process::exit(1);
                    }
                    println!("wrote {path}");
                }
            }
            "scale-sweep" => {
                let cfg = if smoke {
                    scalesweep::ScaleSweepConfig::smoke()
                } else {
                    scalesweep::ScaleSweepConfig::full()
                };
                let report = scalesweep::run(&cfg);
                print!("{}", scalesweep::render(&report));
                if json {
                    let path = "BENCH_scale.json";
                    if let Err(e) = std::fs::write(path, scalesweep::to_json(&report)) {
                        eprintln!("failed to write {path}: {e}");
                        std::process::exit(1);
                    }
                    println!("wrote {path}");
                }
            }
            "ingest-bench" => {
                let report = ingestbench::run();
                print!("{}", ingestbench::render(&report));
                if json {
                    let path = "BENCH_ingest.json";
                    if let Err(e) = std::fs::write(path, ingestbench::to_json(&report)) {
                        eprintln!("failed to write {path}: {e}");
                        std::process::exit(1);
                    }
                    println!("wrote {path}");
                }
            }
            "tenant-bench" => {
                let report = tenantbench::run();
                print!("{}", tenantbench::render(&report));
                if json {
                    let path = "BENCH_tenant.json";
                    if let Err(e) = std::fs::write(path, tenantbench::to_json(&report)) {
                        eprintln!("failed to write {path}: {e}");
                        std::process::exit(1);
                    }
                    println!("wrote {path}");
                }
            }
            "train" => {
                let dir = state_dir.clone().unwrap_or_else(|| "gcwc-train-state".into());
                let k = shards.unwrap_or(2);
                let e = epochs.unwrap_or(6);
                match resumable::run(k, e, &dir, resume) {
                    Ok(report) => print!("{}", resumable::render(&report)),
                    Err(err) => {
                        eprintln!("training failed: {err}");
                        eprintln!(
                            "state under {} is intact; re-run with --resume to continue",
                            dir.display()
                        );
                        std::process::exit(1);
                    }
                }
            }
            "all" => {
                println!("{}", params_table::render(&params_table::table3(&profile)));
                gcwc_bench::tables::for_each_table(&profile, |t| {
                    println!("{}", t.render());
                    use std::io::Write as _;
                    let _ = std::io::stdout().flush();
                });
                println!("{}", ablations::render(&ablations::run_all(&profile)));
                {
                    use std::io::Write as _;
                    let _ = std::io::stdout().flush();
                }
                run_fig6(&profile, true, true);
                run_thread_sweep(&profile);
            }
            id => run_and_print(id, &profile),
        }
    }
}

fn run_and_print(id: &str, profile: &Profile) {
    match run_table(id, profile) {
        Some(t) => println!("{}", t.render()),
        None => {
            eprintln!("unknown command: {id}");
            std::process::exit(2);
        }
    }
}

fn run_thread_sweep(profile: &Profile) {
    let ambient = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut counts = vec![1usize, 2, 4];
    if !counts.contains(&ambient) {
        counts.push(ambient);
    }
    let points = scalability::thread_sweep(profile, &counts);
    println!("Serial vs. parallel training throughput (GCWC, CI scale 1)");
    println!("{:>8}{:>16}{:>10}", "threads", "batch secs", "speedup");
    for p in &points {
        println!("{:>8}{:>16.4}{:>10.2}", p.threads, p.train_batch_secs, p.speedup);
    }
    println!();
}

fn run_fig6(profile: &Profile, show_train: bool, show_test: bool) {
    // Measure every (model, scale) point once; print whichever views
    // were requested.
    let mut points: Vec<(usize, usize, Vec<gcwc_bench::ScalPoint>)> = Vec::new();
    for &scale in &profile.scales {
        let mut row = Vec::new();
        let mut edges = 0;
        for m in ScalModel::all() {
            let p = scalability::measure(m, scale, profile);
            edges = p.edges;
            row.push(p);
            eprintln!("  [fig6] scale={scale} {} done", m.name());
        }
        points.push((scale, edges, row));
    }
    let views: [(bool, &str, fn(&gcwc_bench::ScalPoint) -> f64); 2] = [
        (show_train, "Figure 6(a): avg training time per 20-instance batch (s)", |p| {
            p.train_batch_secs
        }),
        (show_test, "Figure 6(b): avg testing time per instance (s)", |p| p.test_instance_secs),
    ];
    for (enabled, title, extract) in views {
        if !enabled {
            continue;
        }
        println!("{title}");
        print!("{:>8}{:>8}", "scale", "edges");
        for m in ScalModel::all() {
            print!("{:>12}", m.name());
        }
        println!();
        for (scale, edges, row) in &points {
            print!("{scale:>8}{edges:>8}");
            for p in row {
                print!("{:>12.4}", extract(p));
            }
            println!();
        }
        println!();
    }
}
