//! Experiment profiles: how much data / training the harness uses.
//!
//! The paper's full protocol (96 intervals/day, months of data, 5-fold
//! CV, fully trained models) is CPU-hostile; the default `fast` profile
//! keeps the protocol's *structure* (time-ordered folds, all four
//! removal ratios, every method) at a size that finishes in minutes.
//! `--full` restores the paper-scale settings.

/// Which synthetic dataset to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DatasetKind {
    /// 24-link highway tollgate network (HW).
    Highway,
    /// 172-edge city network (CI).
    City,
}

impl DatasetKind {
    /// Short name used in table headers.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Highway => "HW",
            DatasetKind::City => "CI",
        }
    }
}

/// Harness sizing knobs.
#[derive(Clone, Debug)]
pub struct Profile {
    /// Simulated days.
    pub days: usize,
    /// Intervals per day.
    pub intervals_per_day: usize,
    /// Cross-validation folds.
    pub folds: usize,
    /// Removal ratios to sweep.
    pub removal_ratios: Vec<f64>,
    /// Training epochs on the HW dataset.
    pub epochs: usize,
    /// Training epochs on the CI dataset (larger per-step cost; fewer
    /// epochs keep the fast profile tractable on one core).
    pub ci_epochs: usize,
    /// History length fed to the DR baseline.
    pub history_len: usize,
    /// Minimum records to instantiate a ground-truth weight.
    pub min_records: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Scales for the Figure 6 scalability runs.
    pub scales: Vec<usize>,
    /// Batches measured per scalability point.
    pub scal_batches: usize,
    /// Worker threads per training batch (0 = ambient: `GCWC_THREADS`
    /// or the machine's available parallelism). Results are
    /// bit-identical for every value; only throughput changes.
    pub threads: usize,
}

impl Profile {
    /// Minutes-scale profile: full protocol structure, reduced sizes.
    pub fn fast() -> Self {
        Self {
            days: 5,
            intervals_per_day: 48,
            folds: 2,
            removal_ratios: vec![0.5, 0.6, 0.7, 0.8],
            epochs: 35,
            ci_epochs: 14,
            history_len: 3,
            min_records: 5,
            seed: 20190411, // ICDE'19 in Macau
            scales: vec![1, 2, 4],
            scal_batches: 2,
            threads: 0,
        }
    }

    /// Paper-scale protocol (hours on CPU).
    pub fn full() -> Self {
        Self {
            days: 28,
            intervals_per_day: 96,
            folds: 5,
            epochs: 60,
            ci_epochs: 40,
            scales: vec![10, 20, 30, 40, 50],
            scal_batches: 3,
            ..Self::fast()
        }
    }

    /// Effective epoch budget for a dataset.
    pub fn epochs_for(&self, kind: DatasetKind) -> usize {
        match kind {
            DatasetKind::Highway => self.epochs,
            DatasetKind::City => self.ci_epochs,
        }
    }

    /// Seconds-scale smoke profile (CI pipelines, tests).
    pub fn smoke() -> Self {
        Self {
            days: 1,
            intervals_per_day: 16,
            folds: 2,
            removal_ratios: vec![0.5],
            epochs: 2,
            ci_epochs: 2,
            history_len: 2,
            min_records: 5,
            seed: 7,
            scales: vec![1],
            scal_batches: 1,
            threads: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_ordered_by_size() {
        let (s, f, full) = (Profile::smoke(), Profile::fast(), Profile::full());
        assert!(s.days <= f.days && f.days <= full.days);
        assert!(s.epochs <= f.epochs && f.epochs <= full.epochs);
        assert_eq!(full.folds, 5, "the paper uses 5-fold CV");
        assert_eq!(full.intervals_per_day, 96, "the paper uses 96 intervals");
        assert_eq!(f.removal_ratios, vec![0.5, 0.6, 0.7, 0.8]);
    }

    #[test]
    fn dataset_names() {
        assert_eq!(DatasetKind::Highway.name(), "HW");
        assert_eq!(DatasetKind::City.name(), "CI");
    }
}
