//! Partitioned-completion sweep (`exp_runner shard-sweep`).
//!
//! Trains the same GCWC configuration unsharded and as a
//! `ShardedModel` over K ∈ {1, 2, 4} edge partitions of the synthetic
//! city, then reports per-K training throughput and the
//! accuracy delta against the unsharded reference — overall and
//! restricted to boundary edges (rows whose 1-hop neighbourhood
//! crosses a partition cut). The K = 1 row doubles as a regression
//! gate: its predictions must be **bit-identical** to the unsharded
//! model (the load-bearing sharding invariant), which `run` asserts.
//! With `--json`, `exp_runner` writes the sweep to
//! `BENCH_partition.json` for the CI bench job.

use std::fmt::Write as _;
use std::time::Instant;

use gcwc::{build_samples, CompletionModel, GcwcModel, ModelConfig, ShardedModel, TaskKind};
use gcwc_traffic::{generators, simulate, HistogramSpec, SimConfig};

/// One K of the sweep.
#[derive(Clone, Copy, Debug)]
pub struct SweepPoint {
    /// Number of partitions.
    pub k: usize,
    /// Edges whose 1-hop neighbourhood crosses a cut (0 when K = 1).
    pub boundary_edges: usize,
    /// Wall-clock seconds to train all shards.
    pub train_secs: f64,
    /// Wall-clock seconds per global completion (averaged).
    pub predict_secs: f64,
    /// Mean total-variation distance to the unsharded completion over
    /// all rows (exactly 0 for K = 1).
    pub mean_tv_all: f64,
    /// Mean total-variation distance over boundary rows only.
    pub mean_tv_boundary: f64,
    /// True when every prediction matched the unsharded model bit for
    /// bit (required for K = 1).
    pub bit_identical: bool,
}

/// Full shard-sweep result.
#[derive(Clone, Debug)]
pub struct ShardSweepReport {
    /// Global number of edges in the synthetic city.
    pub edges: usize,
    /// Unsharded reference training time in seconds.
    pub baseline_train_secs: f64,
    /// One point per K.
    pub points: Vec<SweepPoint>,
}

/// Runs the sweep over the given shard counts (deduplicated,
/// ascending). Panics when the K = 1 bit-identity invariant is
/// violated (the CI step relies on this).
pub fn run(shard_counts: &[usize]) -> ShardSweepReport {
    let city = generators::city_network_sized(3, 96);
    let sim = SimConfig {
        days: 2,
        intervals_per_day: 8,
        records_per_interval: 10.0,
        ..Default::default()
    };
    let data = simulate(&city, HistogramSpec::hist8(), &sim);
    let ds = data.to_dataset(0.5, 5, 11);
    let idx: Vec<usize> = (0..ds.len()).collect();
    let samples = build_samples(&ds, &idx, TaskKind::Estimation, 0);
    let train = &samples[..8.min(samples.len())];
    let eval = &samples[..4.min(samples.len())];
    let cfg = ModelConfig::ci_hist().with_epochs(3);

    // Unsharded reference: same config, same seed.
    let mut flat = GcwcModel::new(&city.graph, 8, cfg.clone(), 42);
    let t0 = Instant::now();
    flat.fit(train);
    let baseline_train_secs = t0.elapsed().as_secs_f64();
    let references: Vec<_> = eval.iter().map(|s| flat.predict(s)).collect();

    let mut ks: Vec<usize> = shard_counts.to_vec();
    ks.sort_unstable();
    ks.dedup();
    let mut points = Vec::with_capacity(ks.len());
    for &k in &ks {
        let mut sharded = ShardedModel::gcwc(&city.graph, 8, cfg.clone(), 42, k);
        let boundary = sharded.partition_set().boundary_nodes();
        let t0 = Instant::now();
        sharded.fit_shards(train);
        let train_secs = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let outputs: Vec<_> = eval.iter().map(|s| sharded.predict_global(s)).collect();
        let predict_secs = t0.elapsed().as_secs_f64() / eval.len() as f64;

        let mut bit_identical = true;
        let mut tv_all = (0.0f64, 0usize);
        let mut tv_boundary = (0.0f64, 0usize);
        for (got, want) in outputs.iter().zip(&references) {
            bit_identical &=
                got.as_slice().iter().zip(want.as_slice()).all(|(a, b)| a.to_bits() == b.to_bits());
            for i in 0..got.rows() {
                let tv = 0.5
                    * got.row(i).iter().zip(want.row(i)).map(|(a, b)| (a - b).abs()).sum::<f64>();
                tv_all.0 += tv;
                tv_all.1 += 1;
                if boundary.binary_search(&i).is_ok() {
                    tv_boundary.0 += tv;
                    tv_boundary.1 += 1;
                }
            }
        }
        let point = SweepPoint {
            k,
            boundary_edges: boundary.len(),
            train_secs,
            predict_secs,
            mean_tv_all: tv_all.0 / tv_all.1.max(1) as f64,
            mean_tv_boundary: tv_boundary.0 / tv_boundary.1.max(1) as f64,
            bit_identical,
        };
        if k == 1 {
            assert!(
                point.bit_identical,
                "K=1 sharded predictions must be bit-identical to unsharded"
            );
            assert_eq!(point.mean_tv_all, 0.0, "K=1 accuracy delta must be exactly zero");
        }
        points.push(point);
    }
    // The edge graph's nodes are the road segments being completed.
    ShardSweepReport { edges: city.graph.num_nodes(), baseline_train_secs, points }
}

/// Renders the report as an aligned text table.
pub fn render(r: &ShardSweepReport) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Partitioned completion sweep ({} edges, unsharded train {:.3}s)",
        r.edges, r.baseline_train_secs
    );
    let _ = writeln!(
        s,
        "{:>4}{:>10}{:>12}{:>14}{:>12}{:>14}{:>8}",
        "K", "boundary", "train s", "predict s", "tv(all)", "tv(boundary)", "bits"
    );
    for p in &r.points {
        let _ = writeln!(
            s,
            "{:>4}{:>10}{:>12.3}{:>14.6}{:>12.2e}{:>14.2e}{:>8}",
            p.k,
            p.boundary_edges,
            p.train_secs,
            p.predict_secs,
            p.mean_tv_all,
            p.mean_tv_boundary,
            if p.bit_identical { "exact" } else { "-" }
        );
    }
    s
}

/// Serialises the report as JSON (hand-rolled; numeric + bool fields).
pub fn to_json(r: &ShardSweepReport) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"edges\": {},", r.edges);
    let _ = writeln!(s, "  \"baseline_train_secs\": {:.6},", r.baseline_train_secs);
    s.push_str("  \"points\": [\n");
    for (i, p) in r.points.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"shards\": {}, \"boundary_edges\": {}, \"train_secs\": {:.6}, \
             \"predict_secs\": {:.6}, \"mean_tv_all\": {:.6e}, \"mean_tv_boundary\": {:.6e}, \
             \"bit_identical\": {}}}",
            p.k,
            p.boundary_edges,
            p.train_secs,
            p.predict_secs,
            p.mean_tv_all,
            p.mean_tv_boundary,
            p.bit_identical
        );
        s.push_str(if i + 1 < r.points.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}
