//! Streaming-ingestion benchmark (`exp_runner ingest-bench`).
//!
//! Measures the live-loop hot paths end to end: record intake
//! throughput (durable log append + window fold), slot-seal latency,
//! one warm-start incremental refresh (fine-tune → validate → swap)
//! against a real registry, and the heap allocations per record on
//! the steady-state intake path (0 when mid-slot — the CI alloc gate
//! pins this). With `--json`, `exp_runner` writes the report to
//! `BENCH_ingest.json` for the CI ingest job.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use gcwc::{GcwcModel, ModelConfig, ShardedModel};
use gcwc_ingest::{
    Aggregator, Pipeline, RecordLog, RefreshConfig, RefreshDriver, RefreshOutcome, SpeedRecord,
    WindowConfig,
};
use gcwc_serve::{AnyModel, ModelRegistry};
use gcwc_traffic::{generators, HistogramSpec};
use rand::{Rng, SeedableRng};

use crate::allocs::count_allocs;

const SLOT_SECS: u64 = 100;
const PER_EDGE: usize = 24;

/// Ingest benchmark result.
#[derive(Clone, Debug)]
pub struct IngestBenchReport {
    /// Edges in the streamed graph.
    pub edges: usize,
    /// Records streamed through log + window.
    pub records: usize,
    /// Sustained intake throughput (records/second).
    pub records_per_sec: f64,
    /// Slots sealed during the run.
    pub slots_sealed: usize,
    /// Mean wall-clock seconds to seal one slot (histogram builds).
    pub seal_latency_secs: f64,
    /// Wall-clock seconds of one warm-start incremental refresh
    /// (fine-tune + holdout validation + checkpoint + hot-swap).
    pub refresh_secs: f64,
    /// True when the measured refresh validated and swapped.
    pub refresh_applied: bool,
    /// Heap allocations per record on the mid-slot steady-state path
    /// (meaningful only under the counting allocator; 0 otherwise).
    pub allocs_per_record: f64,
}

fn stream(seed: u64, num_edges: usize, slots: std::ops::Range<u64>) -> Vec<SpeedRecord> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for slot in slots {
        for edge in 0..num_edges as u32 {
            for _ in 0..PER_EDGE {
                out.push(SpeedRecord {
                    edge,
                    timestamp: slot * SLOT_SECS + rng.random_range(0u64..SLOT_SECS),
                    speed: rng.random_range(0.5f64..30.0),
                });
            }
        }
    }
    out
}

fn window_cfg(num_edges: usize) -> WindowConfig {
    WindowConfig {
        num_edges,
        spec: HistogramSpec::hist4(),
        slot_secs: SLOT_SECS,
        slots_per_day: 8,
        grace_secs: SLOT_SECS,
        min_records: 2,
        retain_slots: 128,
    }
}

/// Runs the full ingest benchmark. Panics if the refresh fails — CI
/// treats a non-applying benchmark refresh as a regression.
pub fn run() -> IngestBenchReport {
    let city = generators::city_network_sized(3, 96);
    let n = city.graph.num_nodes();

    // ---- Intake throughput: durable append + window fold. ----
    let dir = std::env::temp_dir().join(format!("gcwc-ingest-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let records = stream(7, n, 0..16);
    let mut pipe = Pipeline::new(
        RecordLog::open(&dir.join("log"), 4096).unwrap(),
        Aggregator::new(window_cfg(n)),
    );
    let t0 = Instant::now();
    for &r in &records {
        pipe.ingest(r).unwrap();
    }
    let ingest_secs = t0.elapsed().as_secs_f64();

    // ---- Slot-seal latency. ----
    let t0 = Instant::now();
    pipe.seal_all().unwrap();
    let seal_secs = t0.elapsed().as_secs_f64();
    let sealed = pipe.take_sealed();
    let slots_sealed = sealed.len();

    // ---- Steady-state allocations per record (mid-slot). ----
    // The window's accumulators and the log's active buffer are warm
    // from the run above; a fresh mid-slot batch re-uses them. The
    // first record opens the slot (one `BTreeMap` node), so it stays
    // outside the measured window.
    let probe = stream(8, n, 100..101);
    pipe.ingest(probe[0]).unwrap();
    let (_, allocs) = count_allocs(|| {
        for &r in &probe[1..] {
            pipe.ingest(r).unwrap();
        }
    });
    let allocs_per_record = allocs as f64 / (probe.len() - 1) as f64;

    // ---- Warm-start refresh wall time. ----
    let cfg = ModelConfig::ci_hist().with_epochs(1);
    let graph = city.graph.clone();
    let mk = {
        let (graph, cfg) = (graph.clone(), cfg.clone());
        move || ShardedModel::gcwc(&graph, 4, cfg.clone(), 42, 1)
    };
    let registry = Arc::new(ModelRegistry::new(Box::new({
        let (graph, cfg) = (graph.clone(), cfg.clone());
        move || AnyModel::Gcwc(GcwcModel::new(&graph, 4, cfg.clone(), 42))
    })));
    let mut rcfg = RefreshConfig::new(dir.join("ckpt"));
    rcfg.holdout = 2;
    rcfg.min_fresh_slots = 4;
    rcfg.max_regression = 100.0; // measuring wall time, not validation
    let mut driver = RefreshDriver::new(rcfg, Box::new(mk), registry).unwrap();
    // Bootstrap on the first half so the measured refresh warm-starts.
    let half = slots_sealed / 2;
    match driver.refresh(&sealed[..half]).unwrap() {
        RefreshOutcome::Applied { .. } => {}
        other => panic!("bootstrap refresh not applied: {other:?}"),
    }
    let t0 = Instant::now();
    let outcome = driver.refresh(&sealed).unwrap();
    let refresh_secs = t0.elapsed().as_secs_f64();
    let refresh_applied = matches!(outcome, RefreshOutcome::Applied { .. });
    assert!(refresh_applied, "warm-start refresh must apply: {outcome:?}");

    let _ = std::fs::remove_dir_all(&dir);
    IngestBenchReport {
        edges: n,
        records: records.len(),
        records_per_sec: records.len() as f64 / ingest_secs.max(1e-9),
        slots_sealed,
        seal_latency_secs: seal_secs / slots_sealed.max(1) as f64,
        refresh_secs,
        refresh_applied,
        allocs_per_record,
    }
}

/// Human-readable report.
pub fn render(r: &IngestBenchReport) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Streaming ingestion benchmark ({} edges)", r.edges);
    let _ = writeln!(s, "{:>24}{:>16}", "metric", "value");
    let _ = writeln!(s, "{:>24}{:>16}", "records", r.records);
    let _ = writeln!(s, "{:>24}{:>16.0}", "records/s", r.records_per_sec);
    let _ = writeln!(s, "{:>24}{:>16}", "slots sealed", r.slots_sealed);
    let _ = writeln!(s, "{:>24}{:>16.6}", "seal latency (s)", r.seal_latency_secs);
    let _ = writeln!(s, "{:>24}{:>16.4}", "refresh wall (s)", r.refresh_secs);
    let _ = writeln!(s, "{:>24}{:>16}", "refresh applied", r.refresh_applied);
    let _ = writeln!(s, "{:>24}{:>16.3}", "allocs/record", r.allocs_per_record);
    s
}

/// JSON for `BENCH_ingest.json` (same hand-rolled style as the other
/// bench artifacts — the workspace has no serde).
pub fn to_json(r: &IngestBenchReport) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"edges\": {},", r.edges);
    let _ = writeln!(s, "  \"records\": {},", r.records);
    let _ = writeln!(s, "  \"records_per_sec\": {:.3},", r.records_per_sec);
    let _ = writeln!(s, "  \"slots_sealed\": {},", r.slots_sealed);
    let _ = writeln!(s, "  \"seal_latency_secs\": {:.9},", r.seal_latency_secs);
    let _ = writeln!(s, "  \"refresh_secs\": {:.6},", r.refresh_secs);
    let _ = writeln!(s, "  \"refresh_applied\": {},", r.refresh_applied);
    let _ = writeln!(s, "  \"allocs_per_record\": {:.6}", r.allocs_per_record);
    s.push_str("}\n");
    s
}
