//! Serving load generator (`exp_runner serve-bench`).
//!
//! Trains a tiny A-GCWC, saves it through the versioned checkpoint
//! format, loads it into a `gcwc-serve` engine, and drives the full
//! serving stack: in-process (the zero-allocation path), over TCP with
//! the text debug protocol, over TCP with the length-prefixed binary
//! protocol (sequential and pipelined), and a connection-scaling sweep
//! that measures throughput while thousands of idle connections are
//! parked on the reactor. Reports requests/s and p50/p99 latency per
//! phase plus cache statistics and allocations/request, and asserts
//! the invariants the CI step depends on: non-zero cache hits,
//! bit-identical responses, a (generous) p99 latency bound, and
//! pipelined binary throughput at least 2x the text protocol.
//!
//! `allocs_per_request` is live only when the binary installs
//! [`crate::allocs::CountingAlloc`] (the `count-allocs` feature);
//! otherwise it reads 0.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use gcwc::{build_samples, AGcwcModel, CompletionModel, ModelConfig, TaskKind, TrainSample};
use gcwc_serve::{AnyModel, BinClient, Engine, EngineConfig, Server, ServerConfig, TcpClient};
use gcwc_traffic::{generators, simulate, HistogramSpec, SimConfig};

use crate::allocs;

/// Latency summary of one load phase.
#[derive(Clone, Copy, Debug)]
pub struct PhaseStats {
    /// Requests issued.
    pub requests: u64,
    /// Requests per second (wall clock).
    pub requests_per_sec: f64,
    /// Median latency in nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile latency in nanoseconds.
    pub p99_ns: u64,
    /// Heap allocations per request (0 unless the counting allocator
    /// is installed).
    pub allocs_per_request: u64,
}

/// One point of the connection-scaling sweep: throughput on a single
/// active connection while `idle_conns` others sit parked on the
/// reactor.
#[derive(Clone, Copy, Debug)]
pub struct ConnScalePoint {
    /// Idle connections held open during the measurement.
    pub idle_conns: usize,
    /// In-flight requests kept pipelined on the active connection.
    pub pipeline_depth: usize,
    /// Requests issued.
    pub requests: u64,
    /// Requests per second (wall clock).
    pub requests_per_sec: f64,
    /// 99th-percentile per-response latency in nanoseconds (batch
    /// completion time for pipelined depths).
    pub p99_ns: u64,
    /// OS threads in the process during the measurement — the point
    /// of the sweep: it must not grow with connections.
    pub threads: u64,
}

/// Full serve-bench result.
#[derive(Clone, Debug)]
pub struct ServeBenchReport {
    /// In-process client phase (steady state, cache disabled by
    /// distinct inputs).
    pub in_process: PhaseStats,
    /// Repeat-context phase (every request a cache hit).
    pub cached: PhaseStats,
    /// TCP phase, text debug protocol over loopback.
    pub tcp: PhaseStats,
    /// TCP phase, binary protocol, one request in flight.
    pub tcp_binary: PhaseStats,
    /// TCP phase, binary protocol, 16 requests pipelined.
    pub tcp_pipelined: PhaseStats,
    /// Pipelined binary throughput over text throughput.
    pub binary_speedup_vs_text: f64,
    /// Throughput vs. parked idle connections.
    pub conn_scaling: Vec<ConnScalePoint>,
    /// Engine cache hits observed.
    pub cache_hits: u64,
    /// Engine cache misses observed.
    pub cache_misses: u64,
    /// Forward passes executed.
    pub batches: u64,
    /// Number of shards K in the served shard set.
    pub shards: u64,
}

fn percentile(sorted_ns: &[u64], p: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let idx = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[idx.min(sorted_ns.len() - 1)]
}

fn phase_from(ns: &mut [u64], total_ns: u64, allocs_per_request: u64) -> PhaseStats {
    let requests = ns.len() as u64;
    ns.sort_unstable();
    PhaseStats {
        requests,
        requests_per_sec: if total_ns == 0 {
            0.0
        } else {
            requests as f64 * 1.0e9 / total_ns as f64
        },
        p50_ns: percentile(ns, 0.50),
        p99_ns: percentile(ns, 0.99),
        allocs_per_request,
    }
}

/// Like [`phase_from`] for pipelined phases, where `ns` holds one
/// per-request sample per *window* but throughput must count every
/// request moved — not every window.
fn pipelined_phase(ns: &mut [u64], total_ns: u64, requests: u64) -> PhaseStats {
    let mut p = phase_from(ns, total_ns, 0);
    p.requests = requests;
    p.requests_per_sec =
        if total_ns == 0 { 0.0 } else { requests as f64 * 1.0e9 / total_ns as f64 };
    p
}

/// OS threads in this process (`/proc/self/status`), 0 off-Linux.
fn os_threads() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

fn tiny_trained_model() -> (gcwc_traffic::NetworkInstance, Vec<TrainSample>, AGcwcModel) {
    let hw = generators::highway_tollgate(1);
    let sim = SimConfig {
        days: 2,
        intervals_per_day: 16,
        records_per_interval: 10.0,
        ..Default::default()
    };
    let data = simulate(&hw, HistogramSpec::hist8(), &sim);
    let ds = data.to_dataset(0.5, 5, 11);
    let idx: Vec<usize> = (0..ds.len()).collect();
    let samples = build_samples(&ds, &idx, TaskKind::Estimation, 0);
    let mut model = AGcwcModel::new(&hw.graph, 8, 16, ModelConfig::hw_hist().with_epochs(2), 42);
    model.fit(&samples[..8]);
    (hw, samples, model)
}

/// Drives `reqs` pipelined completions at the given depth over one
/// binary connection; returns per-window latencies and total time.
fn pipelined_run(
    client: &mut BinClient,
    pool: &[TrainSample],
    depth: usize,
    reqs: usize,
) -> (Vec<u64>, u64) {
    let mut ns = Vec::with_capacity(reqs / depth + 1);
    let t0 = Instant::now();
    let mut issued = 0usize;
    while issued < reqs {
        let window = depth.min(reqs - issued);
        let t = Instant::now();
        for k in 0..window {
            let s = &pool[(issued + k) % pool.len()];
            client
                .send_complete(&s.input, s.context.time_of_day, s.context.day_of_week)
                .expect("pipelined send");
        }
        for _ in 0..window {
            let (_, result) = client.recv_response().expect("pipelined recv");
            result.expect("pipelined completion");
        }
        // One latency sample per window keeps p99 comparable across
        // depths (it is the time to move `window` responses).
        ns.push(t.elapsed().as_nanos() as u64 / window as u64);
        issued += window;
    }
    (ns, t0.elapsed().as_nanos() as u64)
}

/// Runs the serving benchmark end to end. Panics when a serving
/// invariant is violated (the CI step relies on this).
pub fn run() -> ServeBenchReport {
    // Train, checkpoint (v1 header), and load into a warm registry.
    let (hw, samples, model) = tiny_trained_model();
    let dir = std::env::temp_dir().join("gcwc_serve_bench");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let ckpt = dir.join("agcwc.ckpt");
    model.save(&ckpt).expect("save checkpoint");

    let hw = Arc::new(hw);
    let factory_hw = Arc::clone(&hw);
    let registry = Arc::new(gcwc_serve::ModelRegistry::new(Box::new(move || {
        AnyModel::AGcwc(AGcwcModel::new(
            &factory_hw.graph,
            8,
            16,
            ModelConfig::hw_hist().with_epochs(2),
            0,
        ))
    })));
    registry.load(&ckpt).expect("load checkpoint");

    let engine = Arc::new(Engine::new(registry, EngineConfig::default()));
    let mut client = engine.client();
    let pool = &samples[..8.min(samples.len())];

    // Warm-up: fill the worker pool and the client's spare buffers.
    for (k, s) in pool.iter().cycle().take(32).enumerate() {
        let mut input = client.input_buffer();
        input.copy_from(&s.input);
        let completion = client
            .complete(input, s.context.time_of_day, (s.context.day_of_week + k) % 7)
            .expect("warm-up request");
        client.recycle(completion);
    }

    // Phase 1: in-process steady state over distinct contexts (mostly
    // cache misses — each (input, time, day) combination repeats only
    // after the warm-up already inserted it, so expired entries rotate).
    let iters = 200usize;
    let mut ns = Vec::with_capacity(iters);
    let a0 = allocs::alloc_count();
    let t0 = Instant::now();
    for k in 0..iters {
        let s = &pool[k % pool.len()];
        let mut input = client.input_buffer();
        input.copy_from(&s.input);
        let t = Instant::now();
        let completion = client
            .complete(input, s.context.time_of_day, s.context.day_of_week)
            .expect("bench request");
        ns.push(t.elapsed().as_nanos() as u64);
        client.recycle(completion);
    }
    let total = t0.elapsed().as_nanos() as u64;
    let allocs_per_request = (allocs::alloc_count() - a0) / iters as u64;
    let in_process = phase_from(&mut ns, total, allocs_per_request);

    // Phase 2: repeat one request — every response must be a cache hit
    // with identical bits.
    let s = &pool[0];
    let mut reference: Option<Vec<u64>> = None;
    let mut ns = Vec::with_capacity(64);
    let a0 = allocs::alloc_count();
    let t0 = Instant::now();
    for _ in 0..64 {
        let mut input = client.input_buffer();
        input.copy_from(&s.input);
        let t = Instant::now();
        let completion = client
            .complete(input, s.context.time_of_day, s.context.day_of_week)
            .expect("cached request");
        ns.push(t.elapsed().as_nanos() as u64);
        match &reference {
            None => {
                reference =
                    Some(completion.output.as_slice().iter().map(|v| v.to_bits()).collect());
            }
            Some(r) => {
                let same = completion
                    .output
                    .as_slice()
                    .iter()
                    .zip(r.iter())
                    .all(|(v, &b)| v.to_bits() == b);
                assert!(same, "cached response must be bit-identical");
            }
        }
        client.recycle(completion);
    }
    let total = t0.elapsed().as_nanos() as u64;
    let cached_allocs = (allocs::alloc_count() - a0) / 64;
    let cached = phase_from(&mut ns, total, cached_allocs);

    let stats = engine.stats();
    assert!(stats.cache_hits > 0, "serving must produce cache hits: {stats:?}");

    // One server carries every TCP phase: binary on `addr()`, the
    // text debug protocol on `text_addr()`.
    let mut server = Server::start_with(
        Arc::clone(&engine),
        "127.0.0.1:0",
        ServerConfig { text_port: Some(0), ..Default::default() },
    )
    .expect("bind server");
    let text_addr = server.text_addr().expect("text port");

    // Phase 3: the text debug protocol over loopback.
    let mut tcp = TcpClient::connect(text_addr).expect("connect");
    assert!(tcp.ping().expect("ping"), "server must answer ping");
    let mut ns = Vec::with_capacity(100);
    let t0 = Instant::now();
    for k in 0..100usize {
        let s = &pool[k % pool.len()];
        let t = Instant::now();
        let resp = tcp
            .complete(&s.input, s.context.time_of_day, s.context.day_of_week)
            .expect("tcp request");
        ns.push(t.elapsed().as_nanos() as u64);
        assert_eq!(resp.output.rows(), s.input.rows());
    }
    let total = t0.elapsed().as_nanos() as u64;
    let tcp_stats = phase_from(&mut ns, total, 0);
    tcp.quit().expect("quit");

    // Phase 4: the binary protocol, one request in flight — and the
    // responses must carry the exact bits the in-process path served.
    let mut bin = BinClient::connect(server.addr()).expect("connect binary");
    assert!(bin.ping().expect("ping"), "server must answer binary ping");
    let mut ns = Vec::with_capacity(100);
    let t0 = Instant::now();
    for k in 0..100usize {
        let s = &pool[k % pool.len()];
        let t = Instant::now();
        let resp = bin
            .complete(&s.input, s.context.time_of_day, s.context.day_of_week)
            .expect("binary request");
        ns.push(t.elapsed().as_nanos() as u64);
        if k % pool.len() == 0 {
            let same = resp
                .output
                .as_slice()
                .iter()
                .zip(reference.as_ref().expect("phase 2 set it").iter())
                .all(|(v, &b)| v.to_bits() == b);
            assert!(same, "binary response must be bit-identical to in-process");
        }
    }
    let total = t0.elapsed().as_nanos() as u64;
    let tcp_binary = phase_from(&mut ns, total, 0);

    // Phase 5: the binary protocol with 16 requests pipelined on one
    // connection.
    let (mut ns, total) = pipelined_run(&mut bin, pool, 16, 512);
    let tcp_pipelined = pipelined_phase(&mut ns, total, 512);
    let binary_speedup_vs_text = tcp_pipelined.requests_per_sec / tcp_stats.requests_per_sec;

    // Phase 6: connection scaling — park idle binary connections on
    // the reactor, then measure one active connection at pipeline
    // depths 1 and 16. Throughput must not collapse and the process
    // thread count must not grow with connections.
    let fd_budget = gcwc_serve::sys::raise_nofile(25_000);
    let mut conn_scaling = Vec::new();
    let mut idle: Vec<BinClient> = Vec::new();
    for &target in &[1usize, 64, 1_000, 10_000] {
        // Leave headroom for the server side of each idle socket plus
        // the active client and incidental fds.
        let reachable = target.min((fd_budget.saturating_sub(200) / 2) as usize);
        while idle.len() < reachable {
            idle.push(BinClient::connect(server.addr()).expect("idle connect"));
        }
        // One ping round-trip proves the newest connection is
        // registered before measuring.
        if let Some(last) = idle.last_mut() {
            assert!(last.ping().expect("idle ping"));
        }
        for depth in [1usize, 16] {
            let reqs = if depth == 1 { 100 } else { 320 };
            let (mut ns, total) = pipelined_run(&mut bin, pool, depth, reqs);
            let p = pipelined_phase(&mut ns, total, reqs as u64);
            conn_scaling.push(ConnScalePoint {
                idle_conns: idle.len(),
                pipeline_depth: depth,
                requests: reqs as u64,
                requests_per_sec: p.requests_per_sec,
                p99_ns: p.p99_ns,
                threads: os_threads(),
            });
        }
        if reachable < target {
            break; // fd budget exhausted; larger points unreachable
        }
    }
    drop(idle);
    bin.quit().expect("quit binary");
    server.stop();
    engine.shutdown();

    // Generous latency bound: the tiny model completes in well under a
    // millisecond per request on any machine; 500 ms catches only a
    // serving-stack pathology (deadlock, missed wake-up, busy loop).
    const P99_BOUND_NS: u64 = 500_000_000;
    assert!(in_process.p99_ns < P99_BOUND_NS, "in-process p99 too high: {in_process:?}");
    assert!(tcp_stats.p99_ns < P99_BOUND_NS, "tcp p99 too high: {tcp_stats:?}");
    assert!(tcp_binary.p99_ns < P99_BOUND_NS, "binary p99 too high: {tcp_binary:?}");
    assert!(
        binary_speedup_vs_text >= 2.0,
        "pipelined binary must be at least 2x the text protocol: {binary_speedup_vs_text:.2}x \
         (text {:.0} req/s, pipelined {:.0} req/s)",
        tcp_stats.requests_per_sec,
        tcp_pipelined.requests_per_sec
    );

    let final_stats = engine.stats();
    ServeBenchReport {
        in_process,
        cached,
        tcp: tcp_stats,
        tcp_binary,
        tcp_pipelined,
        binary_speedup_vs_text,
        conn_scaling,
        cache_hits: final_stats.cache_hits,
        cache_misses: final_stats.cache_misses,
        batches: final_stats.batches,
        shards: final_stats.shards,
    }
}

/// Renders the report as an aligned text table.
pub fn render(r: &ServeBenchReport) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<14}{:>10}{:>14}{:>14}{:>14}{:>16}",
        "phase", "requests", "req/s", "p50 ns", "p99 ns", "allocs/request"
    );
    for (name, p) in [
        ("in_process", &r.in_process),
        ("cached", &r.cached),
        ("tcp_text", &r.tcp),
        ("tcp_binary", &r.tcp_binary),
        ("tcp_pipe16", &r.tcp_pipelined),
    ] {
        let _ = writeln!(
            s,
            "{:<14}{:>10}{:>14.0}{:>14}{:>14}{:>16}",
            name, p.requests, p.requests_per_sec, p.p50_ns, p.p99_ns, p.allocs_per_request
        );
    }
    let _ = writeln!(s, "binary pipelined vs text: {:.1}x", r.binary_speedup_vs_text);
    let _ = writeln!(
        s,
        "{:<14}{:>8}{:>10}{:>14}{:>14}{:>10}",
        "conn scaling", "idle", "depth", "req/s", "p99 ns", "threads"
    );
    for p in &r.conn_scaling {
        let _ = writeln!(
            s,
            "{:<14}{:>8}{:>10}{:>14.0}{:>14}{:>10}",
            "", p.idle_conns, p.pipeline_depth, p.requests_per_sec, p.p99_ns, p.threads
        );
    }
    let _ = writeln!(
        s,
        "cache: {} hits, {} misses, {} batches ({} shard{})",
        r.cache_hits,
        r.cache_misses,
        r.batches,
        r.shards,
        if r.shards == 1 { "" } else { "s" }
    );
    s
}

/// Serialises the report as JSON (hand-rolled; all fields numeric).
pub fn to_json(r: &ServeBenchReport) -> String {
    fn phase(s: &mut String, name: &str, p: &PhaseStats) {
        let _ = write!(
            s,
            "  \"{}\": {{\"requests\": {}, \"requests_per_sec\": {:.1}, \"p50_ns\": {}, \
             \"p99_ns\": {}, \"allocs_per_request\": {}}}",
            name, p.requests, p.requests_per_sec, p.p50_ns, p.p99_ns, p.allocs_per_request
        );
    }
    let mut s = String::from("{\n");
    phase(&mut s, "in_process", &r.in_process);
    s.push_str(",\n");
    phase(&mut s, "cached", &r.cached);
    s.push_str(",\n");
    phase(&mut s, "tcp", &r.tcp);
    s.push_str(",\n");
    phase(&mut s, "tcp_binary", &r.tcp_binary);
    s.push_str(",\n");
    phase(&mut s, "tcp_pipelined", &r.tcp_pipelined);
    s.push_str(",\n");
    let _ = writeln!(s, "  \"binary_speedup_vs_text\": {:.2},", r.binary_speedup_vs_text);
    s.push_str("  \"connection_scaling\": [\n");
    for (i, p) in r.conn_scaling.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"idle_conns\": {}, \"pipeline_depth\": {}, \"requests\": {}, \
             \"requests_per_sec\": {:.1}, \"p99_ns\": {}, \"threads\": {}}}",
            p.idle_conns, p.pipeline_depth, p.requests, p.requests_per_sec, p.p99_ns, p.threads
        );
        s.push_str(if i + 1 < r.conn_scaling.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    let _ = writeln!(
        s,
        "  \"cache\": {{\"hits\": {}, \"misses\": {}, \"batches\": {}}},",
        r.cache_hits, r.cache_misses, r.batches
    );
    let _ = writeln!(s, "  \"shards\": {}", r.shards);
    s.push_str("}\n");
    s
}
