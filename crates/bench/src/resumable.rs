//! Resumable sharded training (`exp_runner train`).
//!
//! Trains a sharded GCWC over the synthetic city with periodic
//! training-state checkpoints under `--state=DIR`. A killed run —
//! Ctrl-C, OOM, or an armed `train.checkpoint.save` failpoint — leaves
//! the per-shard `.trainstate` files of the last completed boundary on
//! disk; re-running with `--resume` continues each shard from its file
//! and lands on the **bit-identical** final model the uninterrupted run
//! would have produced (`crates/core/tests/train_resume.rs` pins this).

use std::path::Path;
use std::time::Instant;

use gcwc::{build_samples, ModelConfig, ShardedModel, TaskKind, TrainError};
use gcwc_traffic::{generators, simulate, HistogramSpec, SimConfig};

/// How often (in epochs) the training state is persisted.
pub const CHECKPOINT_EVERY_EPOCHS: usize = 2;

/// Result of a resumable training run.
#[derive(Clone, Debug)]
pub struct ResumableReport {
    /// Number of shards trained.
    pub shards: usize,
    /// Epochs each shard ran for (the configured total, including any
    /// epochs replayed from a resumed state).
    pub epochs: usize,
    /// Wall-clock seconds for this invocation (a resumed run only pays
    /// for the epochs that were still missing).
    pub train_secs: f64,
    /// Final per-shard epoch-mean losses.
    pub final_losses: Vec<f64>,
    /// Paths of the saved shard model checkpoints.
    pub model_paths: Vec<std::path::PathBuf>,
}

/// Trains (or resumes) the sharded model, checkpointing into `dir`.
pub fn run(
    shards: usize,
    epochs: usize,
    dir: &Path,
    resume: bool,
) -> Result<ResumableReport, TrainError> {
    std::fs::create_dir_all(dir).map_err(gcwc_nn::PersistError::File)?;
    let city = generators::city_network_sized(3, 96);
    let sim = SimConfig {
        days: 2,
        intervals_per_day: 8,
        records_per_interval: 10.0,
        ..Default::default()
    };
    let data = simulate(&city, HistogramSpec::hist8(), &sim);
    let ds = data.to_dataset(0.5, 5, 11);
    let idx: Vec<usize> = (0..ds.len()).collect();
    let samples = build_samples(&ds, &idx, TaskKind::Estimation, 0);
    let train = &samples[..8.min(samples.len())];
    let cfg = ModelConfig::ci_hist().with_epochs(epochs);

    let mut model = ShardedModel::gcwc(&city.graph, 8, cfg, 42, shards);
    let t0 = Instant::now();
    model.fit_shards_resumable(train, dir, "train", CHECKPOINT_EVERY_EPOCHS, resume)?;
    let train_secs = t0.elapsed().as_secs_f64();
    let final_losses = model
        .shard_reports()
        .iter()
        .map(|r| r.epoch_losses.last().copied().unwrap_or(f64::NAN))
        .collect();
    let model_paths = model.save_shards(dir, "model")?;
    Ok(ResumableReport { shards, epochs, train_secs, final_losses, model_paths })
}

/// Renders the report for the terminal.
pub fn render(report: &ResumableReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Resumable sharded training: K={} epochs={} ({:.2}s this invocation)",
        report.shards, report.epochs, report.train_secs
    );
    for (k, (loss, path)) in report.final_losses.iter().zip(&report.model_paths).enumerate() {
        let _ = writeln!(out, "  shard {k}: final loss {loss:.6} -> {}", path.display());
    }
    out
}
