//! The evaluation harness: runs the §VI protocol end to end for one
//! (dataset, task, method, removal-ratio) cell and aggregates MKLR,
//! FLR and MAPE over the cross-validation folds.

use gcwc::{build_samples, OutputKind, TaskKind, MAX_SPEED};
use gcwc_metrics::{FlrAccumulator, MapeAccumulator, MklrAccumulator};
use gcwc_traffic::{generators, simulate, HistogramSpec, NetworkInstance, SimConfig, TrafficData};

use crate::methods::{make_model, Method};
use crate::profile::{DatasetKind, Profile};

/// A generated dataset bundle: network + raw traffic.
pub struct Bundle {
    /// The network instance.
    pub instance: NetworkInstance,
    /// Raw simulated traffic.
    pub data: TrafficData,
}

/// Generates the synthetic stand-in for a dataset under a profile.
pub fn make_bundle(kind: DatasetKind, profile: &Profile) -> Bundle {
    let instance = match kind {
        DatasetKind::Highway => generators::highway_tollgate(profile.seed),
        DatasetKind::City => generators::city_network(profile.seed),
    };
    let sim = SimConfig {
        days: profile.days,
        intervals_per_day: profile.intervals_per_day,
        // Loop detectors (HW) yield denser records than skewed GPS (CI).
        records_per_interval: match kind {
            // Loop detectors log every passing vehicle: dense counts.
            DatasetKind::Highway => 25.0,
            // Skewed taxi GPS coverage: far sparser per edge.
            DatasetKind::City => 7.0,
        },
        seed: profile.seed ^ 0x5EED,
        ..SimConfig::default()
    };
    let data = simulate(&instance, HistogramSpec::hist8(), &sim);
    Bundle { instance, data }
}

/// MKLR and FLR of one method on one task at one removal ratio.
#[derive(Clone, Copy, Debug)]
pub struct HistScores {
    /// Mean KL-divergence ratio (Eq. 11); lower is better.
    pub mklr: f64,
    /// Fraction of likelihood ratio (Eq. 12); higher is better.
    pub flr: f64,
}

/// Runs the histogram evaluation (Estimation or Prediction) for one
/// method at one removal ratio.
pub fn evaluate_hist(
    bundle: &Bundle,
    kind: DatasetKind,
    task: TaskKind,
    method: Method,
    rm: f64,
    profile: &Profile,
) -> HistScores {
    assert!(matches!(task, TaskKind::Estimation | TaskKind::Prediction));
    let spec = bundle.data.spec;
    let m = spec.buckets;
    let ds = bundle.data.to_dataset(rm, profile.min_records, profile.seed ^ (rm * 100.0) as u64);
    let mut mklr = MklrAccumulator::new();
    let mut flr = FlrAccumulator::new();
    let uniform = vec![1.0 / m as f64; m];

    for (fi, fold) in ds.cv_folds(profile.folds).iter().enumerate() {
        let train = build_samples(&ds, &fold.train, task, profile.history_len);
        let test = build_samples(&ds, &fold.test, task, profile.history_len);
        let mut model = make_model(
            method,
            &bundle.instance,
            kind,
            m,
            OutputKind::Histogram,
            profile,
            profile.seed ^ (fi as u64) << 32,
        );
        model.fit(&train);
        let ha = bundle.data.historical_average(&fold.train);
        for s in &test {
            let target = match task {
                TaskKind::Estimation => s.snapshot_index,
                TaskKind::Prediction => s.snapshot_index + 1,
                TaskKind::Average => unreachable!(),
            };
            if target >= ds.len() {
                continue;
            }
            let truth = &ds.snapshots[target].truth;
            let pred = model.predict(s);
            for e in 0..ds.num_edges {
                let Some(gt) = truth.row(e) else { continue };
                let reference = ha[e].as_deref().unwrap_or(&uniform);
                mklr.add(gt, pred.row(e), reference);
                flr.add(bundle.data.records_at(target, e), pred.row(e), reference, &spec);
            }
        }
    }
    HistScores { mklr: mklr.value().unwrap_or(f64::NAN), flr: flr.value().unwrap_or(f64::NAN) }
}

/// Runs the AVG evaluation (MAPE, Eq. 13) for one method at one removal
/// ratio.
pub fn evaluate_average(
    bundle: &Bundle,
    kind: DatasetKind,
    method: Method,
    rm: f64,
    profile: &Profile,
) -> f64 {
    let m = bundle.data.spec.buckets;
    let ds = bundle.data.to_dataset(rm, profile.min_records, profile.seed ^ (rm * 100.0) as u64);
    let mut mape = MapeAccumulator::new();
    for (fi, fold) in ds.cv_folds(profile.folds).iter().enumerate() {
        let train = build_samples(&ds, &fold.train, TaskKind::Average, profile.history_len);
        let test = build_samples(&ds, &fold.test, TaskKind::Average, profile.history_len);
        let mut model = make_model(
            method,
            &bundle.instance,
            kind,
            m,
            OutputKind::Average,
            profile,
            profile.seed ^ (fi as u64) << 32,
        );
        model.fit(&train);
        for s in &test {
            let snap = &ds.snapshots[s.snapshot_index];
            let pred = model.predict(s);
            assert_eq!(pred.cols(), 1, "average models must output a column");
            for e in 0..ds.num_edges {
                if let Some(y) = snap.avg_truth[e] {
                    mape.add(y, pred[(e, 0)] * MAX_SPEED);
                }
            }
        }
    }
    mape.value_percent().unwrap_or(f64::NAN)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_hist_estimation_all_plumbing() {
        let profile = Profile::smoke();
        let bundle = make_bundle(DatasetKind::Highway, &profile);
        let scores = evaluate_hist(
            &bundle,
            DatasetKind::Highway,
            TaskKind::Estimation,
            Method::Gcwc,
            0.5,
            &profile,
        );
        assert!(scores.mklr.is_finite() && scores.mklr > 0.0, "mklr {}", scores.mklr);
        assert!((0.0..=1.0).contains(&scores.flr), "flr {}", scores.flr);
    }

    #[test]
    fn smoke_prediction_runs() {
        let profile = Profile::smoke();
        let bundle = make_bundle(DatasetKind::Highway, &profile);
        let scores = evaluate_hist(
            &bundle,
            DatasetKind::Highway,
            TaskKind::Prediction,
            Method::Cnn,
            0.5,
            &profile,
        );
        assert!(scores.mklr.is_finite());
    }

    #[test]
    fn smoke_average_runs() {
        let profile = Profile::smoke();
        let bundle = make_bundle(DatasetKind::Highway, &profile);
        let mape = evaluate_average(&bundle, DatasetKind::Highway, Method::Lsm, 0.5, &profile);
        assert!(mape.is_finite() && mape >= 0.0, "mape {mape}");
    }

    #[test]
    fn gcwc_beats_ha_reference_on_estimation() {
        // The core claim of the paper at smoke scale: MKLR < 1 means the
        // model improves on the historical average.
        let mut profile = Profile::smoke();
        profile.days = 2;
        profile.intervals_per_day = 24;
        profile.epochs = 25;
        let bundle = make_bundle(DatasetKind::Highway, &profile);
        let scores = evaluate_hist(
            &bundle,
            DatasetKind::Highway,
            TaskKind::Estimation,
            Method::Gcwc,
            0.5,
            &profile,
        );
        assert!(scores.mklr < 1.0, "GCWC should beat HA, mklr = {}", scores.mklr);
    }
}
