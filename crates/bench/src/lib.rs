//! # gcwc-bench
//!
//! The experiment harness that regenerates every table and figure of
//! the paper's evaluation (§VI): dataset bundles, the method registry,
//! the MKLR/FLR/MAPE evaluation loops, table formatting, the Table III
//! parameter counts, and the Figure 6 scalability measurements. The
//! `exp_runner` binary drives it all from the command line.

#![warn(missing_docs)]

pub mod ablations;
pub mod allocs;
pub mod harness;
pub mod ingestbench;
pub mod jsonbench;
pub mod methods;
pub mod params_table;
pub mod profile;
pub mod replicabench;
pub mod resumable;
pub mod scalability;
pub mod scalesweep;
pub mod servebench;
pub mod shardsweep;
pub mod tables;
pub mod tenantbench;

pub use harness::{evaluate_average, evaluate_hist, make_bundle, Bundle, HistScores};
pub use methods::{make_model, Method};
pub use profile::{DatasetKind, Profile};
pub use scalability::{measure, thread_sweep, ScalModel, ScalPoint, ThreadPoint};
pub use tables::{run_table, Table, ALL_TABLES};
