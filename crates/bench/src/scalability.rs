//! Figure 6: scalability of GCWC / A-GCWC on enlarged city networks.
//!
//! The paper tiles the CI network ×10…×50 (up to 8 600 edges), measures
//! the average training time of a 20-instance batch (Fig. 6a) and the
//! average per-instance testing time (Fig. 6b), and additionally
//! simulates distributed processing by partitioning the network in two
//! and training the halves sequentially ("-M2" variants).

use std::time::Instant;

use gcwc::{AGcwcModel, CompletionModel, GcwcModel, ModelConfig, TrainSample};
use gcwc_graph::EdgeGraph;
use gcwc_linalg::rng::seeded;
use gcwc_linalg::Matrix;
use gcwc_traffic::{generators, Context};
use rand::Rng;

use crate::profile::Profile;

/// Which model variant a scalability row measures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScalModel {
    /// GCWC on the whole network.
    Gcwc,
    /// A-GCWC on the whole network.
    AGcwc,
    /// GCWC with the network split in two halves trained sequentially.
    GcwcM2,
    /// A-GCWC with the two-way split.
    AGcwcM2,
}

impl ScalModel {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ScalModel::Gcwc => "GCWC",
            ScalModel::AGcwc => "A-GCWC",
            ScalModel::GcwcM2 => "GCWC-M2",
            ScalModel::AGcwcM2 => "A-GCWC-M2",
        }
    }

    /// All variants, in the figure's legend order.
    pub fn all() -> [ScalModel; 4] {
        [ScalModel::Gcwc, ScalModel::AGcwc, ScalModel::GcwcM2, ScalModel::AGcwcM2]
    }
}

/// One measured point of Figure 6.
#[derive(Clone, Copy, Debug)]
pub struct ScalPoint {
    /// Network scale factor.
    pub scale: usize,
    /// Total edges at this scale.
    pub edges: usize,
    /// Seconds per 20-instance training batch (Fig. 6a).
    pub train_batch_secs: f64,
    /// Seconds per tested instance (Fig. 6b).
    pub test_instance_secs: f64,
}

/// Splits a graph into two halves (by node index), returning the two
/// induced sub-adjacencies. This destroys the cut edges, exactly as the
/// paper's M2 partitioning does.
pub fn split_in_two(graph: &EdgeGraph) -> (EdgeGraph, EdgeGraph) {
    let n = graph.num_nodes();
    let half = n / 2;
    let first: Vec<usize> = (0..half).collect();
    let second: Vec<usize> = (half..n).collect();
    (graph.induced_subgraph(&first), graph.induced_subgraph(&second))
}

pub(crate) fn synthetic_samples(
    n: usize,
    m: usize,
    count: usize,
    ipd: usize,
    seed: u64,
) -> Vec<TrainSample> {
    let mut rng = seeded(seed);
    (0..count)
        .map(|i| {
            // Random sparse histogram matrix: ~half the rows covered.
            let mut mat = Matrix::zeros(n, m);
            let mut flags = vec![0.0; n];
            for e in 0..n {
                if rng.random::<f64>() < 0.5 {
                    flags[e] = 1.0;
                    let mut sum = 0.0;
                    for j in 0..m {
                        let v = rng.random::<f64>();
                        mat[(e, j)] = v;
                        sum += v;
                    }
                    for j in 0..m {
                        mat[(e, j)] /= sum;
                    }
                }
            }
            TrainSample {
                snapshot_index: i,
                input: mat.clone(),
                label: mat,
                label_mask: flags.clone(),
                context: Context {
                    time_of_day: i % ipd,
                    day_of_week: (i / ipd) % 7,
                    intervals_per_day: ipd,
                    row_flags: flags,
                },
                history: vec![],
            }
        })
        .collect()
}

fn restrict_samples(samples: &[TrainSample], lo: usize, hi: usize) -> Vec<TrainSample> {
    samples
        .iter()
        .map(|s| {
            let rows: Vec<usize> = (lo..hi).collect();
            TrainSample {
                snapshot_index: s.snapshot_index,
                input: s.input.select_rows(&rows),
                label: s.label.select_rows(&rows),
                label_mask: s.label_mask[lo..hi].to_vec(),
                context: Context {
                    row_flags: s.context.row_flags[lo..hi].to_vec(),
                    ..s.context.clone()
                },
                history: vec![],
            }
        })
        .collect()
}

fn timed_fit_predict(
    model: &mut dyn CompletionModel,
    train: &[TrainSample],
    test: &[TrainSample],
) -> (f64, f64) {
    let t0 = Instant::now();
    model.fit(train);
    let fit_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    for s in test {
        let _ = model.predict(s);
    }
    let predict_secs = t1.elapsed().as_secs_f64() / test.len() as f64;
    (fit_secs, predict_secs)
}

/// Measures one scalability point: average seconds per 20-instance
/// training batch and per tested instance.
pub fn measure(model: ScalModel, scale: usize, profile: &Profile) -> ScalPoint {
    let base = generators::city_network(profile.seed);
    let graph =
        if scale == 1 { base.graph.clone() } else { generators::scaled_city(&base.graph, scale) };
    let n = graph.num_nodes();
    let m = 8;
    let batch = 20;
    let batches = profile.scal_batches;
    // One epoch over `batches` batches = the measured workload.
    let cfg = ModelConfig::ci_hist().with_epochs(1).with_threads(profile.threads);
    let samples = synthetic_samples(n, m, batch * batches, profile.intervals_per_day, profile.seed);
    let test = &samples[..4.min(samples.len())];

    let (fit_secs, predict_secs) = match model {
        ScalModel::Gcwc => {
            let mut mdl = GcwcModel::new(&graph, m, cfg, profile.seed);
            timed_fit_predict(&mut mdl, &samples, test)
        }
        ScalModel::AGcwc => {
            let mut mdl = AGcwcModel::new(&graph, m, profile.intervals_per_day, cfg, profile.seed);
            timed_fit_predict(&mut mdl, &samples, test)
        }
        ScalModel::GcwcM2 | ScalModel::AGcwcM2 => {
            let (g1, g2) = split_in_two(&graph);
            let half = g1.num_nodes();
            let s1 = restrict_samples(&samples, 0, half);
            let s2 = restrict_samples(&samples, half, n);
            let t1 = &s1[..4.min(s1.len())];
            let t2 = &s2[..4.min(s2.len())];
            let ((f1, p1), (f2, p2)) = if model == ScalModel::GcwcM2 {
                let mut m1 = GcwcModel::new(&g1, m, cfg.clone(), profile.seed);
                let mut m2 = GcwcModel::new(&g2, m, cfg, profile.seed);
                (timed_fit_predict(&mut m1, &s1, t1), timed_fit_predict(&mut m2, &s2, t2))
            } else {
                let ipd = profile.intervals_per_day;
                let mut m1 = AGcwcModel::new(&g1, m, ipd, cfg.clone(), profile.seed);
                let mut m2 = AGcwcModel::new(&g2, m, ipd, cfg, profile.seed);
                (timed_fit_predict(&mut m1, &s1, t1), timed_fit_predict(&mut m2, &s2, t2))
            };
            // Sequential processing: times add.
            (f1 + f2, p1 + p2)
        }
    };
    ScalPoint {
        scale,
        edges: n,
        train_batch_secs: fit_secs / batches as f64,
        test_instance_secs: predict_secs,
    }
}

/// One row of the serial-vs-parallel throughput sweep.
#[derive(Clone, Copy, Debug)]
pub struct ThreadPoint {
    /// Worker threads used for the training batch.
    pub threads: usize,
    /// Seconds per 20-instance training batch.
    pub train_batch_secs: f64,
    /// Throughput relative to the sweep's first row (pass `1` first to
    /// make that the serial baseline).
    pub speedup: f64,
}

/// Measures GCWC training throughput at each thread count in
/// `thread_counts` (same workload as the scale-1 Figure 6 point) and
/// reports the speedup over the serial run. Losses and weights are
/// bit-identical across rows; only wall-clock time varies.
pub fn thread_sweep(profile: &Profile, thread_counts: &[usize]) -> Vec<ThreadPoint> {
    let mut points = Vec::with_capacity(thread_counts.len());
    let mut serial_secs = None;
    for &t in thread_counts {
        let mut p = profile.clone();
        p.threads = t;
        let point = measure(ScalModel::Gcwc, 1, &p);
        let secs = point.train_batch_secs;
        let base = *serial_secs.get_or_insert(secs);
        points.push(ThreadPoint { threads: t, train_batch_secs: secs, speedup: base / secs });
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_halves_cover_all_nodes() {
        let base = generators::city_network(1);
        let (a, b) = split_in_two(&base.graph);
        assert_eq!(a.num_nodes() + b.num_nodes(), 172);
    }

    #[test]
    fn synthetic_samples_are_valid() {
        let samples = synthetic_samples(10, 4, 3, 48, 1);
        assert_eq!(samples.len(), 3);
        for s in &samples {
            for e in 0..10 {
                let sum: f64 = s.input.row(e).iter().sum();
                if s.label_mask[e] > 0.0 {
                    assert!((sum - 1.0).abs() < 1e-9);
                } else {
                    assert_eq!(sum, 0.0);
                }
            }
        }
    }

    #[test]
    fn thread_sweep_reports_speedups() {
        let mut profile = Profile::smoke();
        profile.scal_batches = 1;
        let points = thread_sweep(&profile, &[1, 2]);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].threads, 1);
        assert!((points[0].speedup - 1.0).abs() < 1e-12, "first row is the baseline");
        assert!(points[1].train_batch_secs > 0.0 && points[1].speedup > 0.0);
    }

    #[test]
    fn smoke_measure_scale_one() {
        let mut profile = Profile::smoke();
        profile.scal_batches = 1;
        let p = measure(ScalModel::Gcwc, 1, &profile);
        assert_eq!(p.edges, 172);
        assert!(p.train_batch_secs > 0.0);
        assert!(p.test_instance_secs > 0.0);
    }
}
