//! Ablation studies for the design choices DESIGN.md calls out:
//! Chebyshev order, graph pooling, A-GCWC context subsets, histogram
//! resolution, and LSM missing-data handling.

use gcwc::{
    build_samples, AGcwcModel, CompletionModel, GcwcModel, ModelConfig, OutputKind, TaskKind,
};
use gcwc_baselines::{LsmConfig, LsmModel};
use gcwc_metrics::MklrAccumulator;
use gcwc_traffic::{generators, simulate, HistogramSpec, SimConfig};

use crate::profile::Profile;

/// One ablation result.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Study name.
    pub study: &'static str,
    /// Variant label.
    pub variant: String,
    /// MKLR on held-out data (lower better).
    pub mklr: f64,
    /// Trainable parameter count (0 for non-parametric variants).
    pub params: usize,
}

/// Evaluation: fit on the first 80% of snapshots, MKLR on the rest.
fn mklr_of(
    model: &mut dyn CompletionModel,
    data: &gcwc_traffic::TrafficData,
    ds: &gcwc_traffic::Dataset,
) -> f64 {
    let split = ds.len() * 4 / 5;
    let train_idx: Vec<usize> = (0..split).collect();
    let test_idx: Vec<usize> = (split..ds.len()).collect();
    let train = build_samples(ds, &train_idx, TaskKind::Estimation, 0);
    let test = build_samples(ds, &test_idx, TaskKind::Estimation, 0);
    model.fit(&train);
    let ha = data.historical_average(&train_idx);
    let m = ds.spec.buckets;
    let uniform = vec![1.0 / m as f64; m];
    let mut mklr = MklrAccumulator::new();
    for s in &test {
        let pred = model.predict(s);
        let truth = &ds.snapshots[s.snapshot_index].truth;
        for e in 0..ds.num_edges {
            if let Some(gt) = truth.row(e) {
                mklr.add(gt, pred.row(e), ha[e].as_deref().unwrap_or(&uniform));
            }
        }
    }
    mklr.value().unwrap_or(f64::NAN)
}

/// Runs all ablation studies on the highway dataset.
pub fn run_all(profile: &Profile) -> Vec<AblationRow> {
    let hw = generators::highway_tollgate(profile.seed);
    let sim = SimConfig {
        days: profile.days,
        intervals_per_day: profile.intervals_per_day,
        records_per_interval: 9.0,
        seed: profile.seed ^ 0x5EED,
        ..SimConfig::default()
    };
    let data8 = simulate(&hw, HistogramSpec::hist8(), &sim);
    let ds8 = data8.to_dataset(0.6, 5, profile.seed);
    let mut rows = Vec::new();

    // 1. Chebyshev order K (the C{K}×1 choice of Table III).
    for k in [1usize, 2, 4, 8] {
        let mut cfg = ModelConfig::hw_hist().with_epochs(profile.epochs);
        for l in &mut cfg.conv_layers {
            l.cheb_order = k;
        }
        let mut model = GcwcModel::new(&hw.graph, 8, cfg, profile.seed);
        let mklr = mklr_of(&mut model, &data8, &ds8);
        rows.push(AblationRow {
            study: "cheb_order",
            variant: format!("K={k}"),
            mklr,
            params: model.num_params(),
        });
    }

    // 2. Graph pooling on/off.
    for (label, pools) in [("P4-P2 (paper)", [4usize, 2usize]), ("no pooling", [1, 1])] {
        let mut cfg = ModelConfig::hw_hist().with_epochs(profile.epochs);
        cfg.conv_layers[0].pool = pools[0];
        cfg.conv_layers[1].pool = pools[1];
        let mut model = GcwcModel::new(&hw.graph, 8, cfg, profile.seed);
        let mklr = mklr_of(&mut model, &data8, &ds8);
        rows.push(AblationRow {
            study: "pooling",
            variant: label.to_owned(),
            mklr,
            params: model.num_params(),
        });
    }

    // 3. A-GCWC context subsets.
    let subsets: [(&str, [bool; 3]); 5] = [
        ("none (=GCWC)", [false, false, false]),
        ("time only", [true, false, false]),
        ("day only", [false, true, false]),
        ("row-flag only", [false, false, true]),
        ("all (paper)", [true, true, true]),
    ];
    for (label, mask) in subsets {
        let mut cfg = ModelConfig::hw_hist().with_epochs(profile.epochs);
        cfg.context_mask = mask;
        let mut model = AGcwcModel::new(&hw.graph, 8, profile.intervals_per_day, cfg, profile.seed);
        let mklr = mklr_of(&mut model, &data8, &ds8);
        rows.push(AblationRow {
            study: "contexts",
            variant: label.to_owned(),
            mklr,
            params: model.num_params(),
        });
    }

    // 4. HIST-4 vs HIST-8 (§VI-A.1 reports similar results).
    for (label, spec) in [("HIST-8", HistogramSpec::hist8()), ("HIST-4", HistogramSpec::hist4())] {
        let data = simulate(&hw, spec, &sim);
        let ds = data.to_dataset(0.6, 5, profile.seed);
        let cfg = ModelConfig::hw_hist().with_epochs(profile.epochs);
        let mut model = GcwcModel::new(&hw.graph, spec.buckets, cfg, profile.seed);
        let mklr = mklr_of(&mut model, &data, &ds);
        rows.push(AblationRow {
            study: "hist_buckets",
            variant: label.to_owned(),
            mklr,
            params: model.num_params(),
        });
    }

    // 5. LSM missing-data handling: the paper's naive zero-fill vs a
    //    properly masked factorisation.
    for (label, mask_missing) in [("zeros (paper)", false), ("masked", true)] {
        let cfg = LsmConfig { mask_missing, ..LsmConfig::default() };
        let mut model = LsmModel::new(hw.graph.clone(), OutputKind::Histogram, cfg);
        let mklr = mklr_of(&mut model, &data8, &ds8);
        rows.push(AblationRow { study: "lsm_missing", variant: label.to_owned(), mklr, params: 0 });
    }

    rows
}

/// Renders the ablation rows grouped by study.
pub fn render(rows: &[AblationRow]) -> String {
    let mut out = String::from("Ablations (HW, estimation, rm = 0.6; MKLR lower is better)\n");
    let mut last = "";
    for r in rows {
        if r.study != last {
            out.push_str(&format!("\n[{}]\n", r.study));
            last = r.study;
        }
        out.push_str(&format!(
            "  {:<16} MKLR {:>6.3}   #Para {:>7}\n",
            r.variant, r.mklr, r.params
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_ablations_run() {
        let mut profile = Profile::smoke();
        profile.days = 1;
        profile.epochs = 1;
        let rows = run_all(&profile);
        // 4 cheb + 2 pooling + 5 contexts + 2 hist + 2 lsm = 15 rows.
        assert_eq!(rows.len(), 15);
        assert!(rows.iter().all(|r| r.mklr.is_finite()));
        let rendered = render(&rows);
        assert!(rendered.contains("cheb_order"));
        assert!(rendered.contains("lsm_missing"));
    }
}
