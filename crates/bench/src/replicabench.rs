//! Replica-group availability benchmark (`exp_runner replica-bench`).
//!
//! Trains a K=2 sharded GCWC, checkpoints it, and serves it three
//! ways: an unreplicated (N=1) baseline, an N-replica group per shard
//! (healthy), and — when the `failpoints` feature is compiled in — the
//! kill-one-replica schedule, where one replica of each shard's group
//! is killed persistently by ordinal. Measures p50/p99 per phase and
//! asserts the invariants the CI step depends on: every replicated
//! response bit-identical to the solo baseline, **zero** degraded
//! responses and 100% availability while one replica per group is
//! dead (survivor responses still bit-identical), warm-standby
//! promotions recorded in the engine counters — and the promotion
//! counters visible over *both* wire protocols (the text `stats` line
//! and the binary `stats` frame agree).
//!
//! Without the `failpoints` feature the kill phase is skipped (there
//! is no way to kill a replica) and the report's kill fields read
//! zero; the bit-equality and protocol-stats assertions still run.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use gcwc::{build_samples, GcwcModel, ModelConfig, ShardedModel, TaskKind, TrainSample};
use gcwc_graph::PartitionSet;
use gcwc_serve::{
    failsite, AnyModel, BinClient, BreakerConfig, Engine, EngineConfig, ModelRegistry, RetryPolicy,
    Server, ServerConfig, TcpClient,
};
use gcwc_traffic::{generators, simulate, HistogramSpec, SimConfig};

/// Latency summary of one serving phase.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplicaPhase {
    /// Requests issued.
    pub requests: u64,
    /// Requests per second (wall clock).
    pub requests_per_sec: f64,
    /// Median latency in nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile latency in nanoseconds.
    pub p99_ns: u64,
}

/// Full replica-bench result.
#[derive(Clone, Debug)]
pub struct ReplicaBenchReport {
    /// Replicas per shard (N) in the replicated phases.
    pub replicas: usize,
    /// Unreplicated (N=1) in-process baseline.
    pub solo: ReplicaPhase,
    /// N-replica groups, all healthy.
    pub replicated: ReplicaPhase,
    /// Kill-one-replica schedule (zeroed without `failpoints`).
    pub killed: ReplicaPhase,
    /// Whether the kill phase ran (the `failpoints` feature is on).
    pub kill_phase_ran: bool,
    /// Fraction of kill-phase requests answered exactly (must be 1.0).
    pub availability_under_kill: f64,
    /// Degraded responses during the kill phase (must be 0).
    pub degraded_under_kill: u64,
    /// Replica failovers recorded by the engine.
    pub failovers: u64,
    /// Warm-standby promotions recorded by the engine.
    pub promotions: u64,
    /// `replicas` gauge reported over the text protocol.
    pub text_replicas: u64,
    /// `replica_promotions` reported over the text protocol.
    pub text_promotions: u64,
    /// `replicas` gauge reported over the binary protocol.
    pub binary_replicas: u64,
    /// `replica_promotions` reported over the binary protocol.
    pub binary_promotions: u64,
}

fn percentile(sorted_ns: &[u64], p: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let idx = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[idx.min(sorted_ns.len() - 1)]
}

fn phase_from(ns: &mut [u64], total_ns: u64) -> ReplicaPhase {
    let requests = ns.len() as u64;
    ns.sort_unstable();
    ReplicaPhase {
        requests,
        requests_per_sec: if total_ns == 0 {
            0.0
        } else {
            requests as f64 * 1.0e9 / total_ns as f64
        },
        p50_ns: percentile(ns, 0.50),
        p99_ns: percentile(ns, 0.99),
    }
}

fn model_config() -> ModelConfig {
    ModelConfig::hw_hist().with_epochs(2)
}

struct Fixture {
    samples: Vec<TrainSample>,
    partition: Arc<PartitionSet>,
    ckpts: Vec<std::path::PathBuf>,
}

fn fixture() -> Fixture {
    let hw = generators::highway_tollgate(1);
    let sim = SimConfig {
        days: 2,
        intervals_per_day: 16,
        records_per_interval: 10.0,
        ..Default::default()
    };
    let data = simulate(&hw, HistogramSpec::hist8(), &sim);
    let ds = data.to_dataset(0.5, 5, 11);
    let idx: Vec<usize> = (0..ds.len()).collect();
    let samples = build_samples(&ds, &idx, TaskKind::Estimation, 0);
    let partition = Arc::new(PartitionSet::build(&hw.graph, 2));
    let mut sharded = ShardedModel::gcwc_on(Arc::clone(&partition), 8, model_config(), 42);
    sharded.fit_shards(&samples[..8]);
    let dir = std::env::temp_dir().join("gcwc_replica_bench");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let (_, shards) = sharded.into_shards();
    let ckpts: Vec<_> = shards
        .iter()
        .enumerate()
        .map(|(k, shard)| {
            let path = dir.join(format!("replica.shard{k}.ckpt"));
            shard.save(&path).expect("save checkpoint");
            path
        })
        .collect();
    Fixture { samples, partition, ckpts }
}

fn make_registry(f: &Fixture, replication: usize) -> Arc<ModelRegistry> {
    let factories = (0..f.partition.num_partitions())
        .map(|k| {
            let graph = f.partition.partition(k).graph().clone();
            let fac: Box<dyn Fn() -> AnyModel + Send + Sync> =
                Box::new(move || AnyModel::Gcwc(GcwcModel::new(&graph, 8, model_config(), 0)));
            fac
        })
        .collect();
    let registry =
        Arc::new(ModelRegistry::sharded_replicated(factories, &f.partition, replication));
    for (k, ckpt) in f.ckpts.iter().enumerate() {
        registry.load_shard(k, ckpt).expect("load checkpoint");
    }
    registry
}

fn engine_config() -> EngineConfig {
    EngineConfig {
        workers: 1,
        // Caching off: every request exercises the routed forward path,
        // so solo-vs-replicated latency compares computation, not hits.
        cache_capacity: 0,
        breaker: BreakerConfig { failure_threshold: 1, cooldown: Duration::from_secs(3600) },
        ..Default::default()
    }
}

/// Drives `iters` requests through the engine, asserting each response
/// exact; returns per-request latencies, total wall time, and the
/// response bits per pool index (for cross-phase bit-equality).
fn drive(
    engine: &Engine,
    pool: &[TrainSample],
    iters: usize,
    label: &str,
) -> (Vec<u64>, u64, Vec<Vec<u64>>) {
    let mut client = engine.client();
    client.set_retry_policy(Some(RetryPolicy::default()));
    let mut ns = Vec::with_capacity(iters);
    let mut bits: Vec<Vec<u64>> = vec![Vec::new(); pool.len()];
    let t0 = Instant::now();
    for k in 0..iters {
        let s = &pool[k % pool.len()];
        let mut input = client.input_buffer();
        input.copy_from(&s.input);
        let t = Instant::now();
        let completion = client
            .complete(input, s.context.time_of_day, s.context.day_of_week)
            .unwrap_or_else(|e| panic!("{label} request {k} failed: {e}"));
        ns.push(t.elapsed().as_nanos() as u64);
        assert!(!completion.degraded, "{label} request {k} degraded");
        let got: Vec<u64> = completion.output.as_slice().iter().map(|v| v.to_bits()).collect();
        let slot = &mut bits[k % pool.len()];
        if slot.is_empty() {
            *slot = got;
        } else {
            assert_eq!(slot, &got, "{label} request {k} diverged from its own earlier response");
        }
        client.recycle(completion);
    }
    (ns, t0.elapsed().as_nanos() as u64, bits)
}

/// Parses the three trailing replica fields off the text `stats` line
/// (`… <replicas> <replica_failovers> <replica_promotions>`).
fn parse_text_replica_fields(line: &str) -> (u64, u64, u64) {
    let fields: Vec<u64> =
        line.split_whitespace().skip(1).map(|t| t.parse().expect("numeric stats field")).collect();
    assert!(fields.len() >= 3, "stats line too short: {line:?}");
    (fields[fields.len() - 3], fields[fields.len() - 2], fields[fields.len() - 1])
}

/// Runs the replica benchmark end to end. Panics when an availability
/// or bit-equality invariant is violated (the CI step relies on this).
pub fn run(replicas: usize) -> ReplicaBenchReport {
    assert!(replicas >= 2, "replica-bench needs N >= 2 (got {replicas})");
    let f = fixture();
    let pool = &f.samples[..8.min(f.samples.len())];
    let iters = 200usize;

    // Phase 1: the unreplicated baseline.
    let solo_engine = Engine::new(make_registry(&f, 1), engine_config());
    let (mut ns, total, solo_bits) = drive(&solo_engine, pool, iters, "solo");
    let solo = phase_from(&mut ns, total);
    solo_engine.shutdown();

    // Phase 2: N-replica groups, all healthy. Every response must be
    // bit-identical to the solo baseline (replicas are independently
    // loaded from the same checkpoints).
    let engine = Engine::new(make_registry(&f, replicas), engine_config());
    let (mut ns, total, rep_bits) = drive(&engine, pool, iters, "replicated");
    let replicated = phase_from(&mut ns, total);
    assert_eq!(solo_bits, rep_bits, "replicated responses must be bit-identical to solo");

    // Phase 3 (failpoints builds only): kill one replica of each
    // shard's group by ordinal and keep serving. Availability must
    // stay 100% with zero degraded responses, survivors bit-identical.
    let mut killed = ReplicaPhase::default();
    let kill_phase_ran = gcwc_failpoint::ENABLED;
    if kill_phase_ran {
        // Initial ordinals are shard-major: shard 0's slot 1 is
        // ordinal 1, shard 1's slot 0 is ordinal N.
        let sites = [failsite::replica_forward(1), failsite::replica_forward(replicas as u64)];
        for site in &sites {
            gcwc_failpoint::configure(site, "err").expect("arm replica kill site");
        }
        let (mut ns, total, kill_bits) = drive(&engine, pool, iters, "kill-one");
        killed = phase_from(&mut ns, total);
        assert_eq!(
            solo_bits, kill_bits,
            "survivor responses must be bit-identical to the healthy baseline"
        );
        for site in &sites {
            gcwc_failpoint::remove(site);
        }
    }

    let stats = engine.stats();
    assert_eq!(stats.replicas, replicas as u64, "stats: {stats:?}");
    assert_eq!(stats.degraded_responses, 0, "stats: {stats:?}");
    if kill_phase_ran {
        assert!(stats.replica_promotions >= 1, "kill phase must promote: {stats:?}");
    }

    // Phase 4: the promotion counters must be visible over both wire
    // protocols, and the two encodings must agree.
    let engine = Arc::new(engine);
    let mut server = Server::start_with(
        Arc::clone(&engine),
        "127.0.0.1:0",
        ServerConfig { text_port: Some(0), ..Default::default() },
    )
    .expect("bind server");
    let mut text = TcpClient::connect(server.text_addr().expect("text port")).expect("connect");
    let (text_replicas, text_failovers, text_promotions) =
        parse_text_replica_fields(&text.stats().expect("text stats"));
    text.quit().expect("quit");
    let mut bin = BinClient::connect(server.addr()).expect("connect binary");
    let bin_stats = bin.stats().expect("binary stats");
    server.stop();
    engine.shutdown();

    assert_eq!(text_replicas, replicas as u64, "text stats replicas gauge");
    assert_eq!(bin_stats.replicas, replicas as u64, "binary stats replicas gauge");
    assert_eq!(text_promotions, bin_stats.replica_promotions, "protocols must agree");
    assert_eq!(text_failovers, bin_stats.replica_failovers, "protocols must agree");
    if kill_phase_ran {
        assert!(text_promotions >= 1, "text protocol must surface the promotion");
        assert!(bin_stats.replica_promotions >= 1, "binary protocol must surface the promotion");
    }

    ReplicaBenchReport {
        replicas,
        solo,
        replicated,
        killed,
        kill_phase_ran,
        availability_under_kill: if kill_phase_ran { 1.0 } else { 0.0 },
        degraded_under_kill: 0,
        failovers: stats.replica_failovers,
        promotions: stats.replica_promotions,
        text_replicas,
        text_promotions,
        binary_replicas: bin_stats.replicas,
        binary_promotions: bin_stats.replica_promotions,
    }
}

/// Renders the report as an aligned text table.
pub fn render(r: &ReplicaBenchReport) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Replica availability benchmark (K=2 shards, N={} replicas)", r.replicas);
    let _ = writeln!(
        s,
        "{:<14}{:>10}{:>14}{:>14}{:>14}",
        "phase", "requests", "req/s", "p50 ns", "p99 ns"
    );
    let mut rows = vec![("solo (N=1)", &r.solo), ("replicated", &r.replicated)];
    if r.kill_phase_ran {
        rows.push(("kill-one", &r.killed));
    }
    for (name, p) in rows {
        let _ = writeln!(
            s,
            "{:<14}{:>10}{:>14.0}{:>14}{:>14}",
            name, p.requests, p.requests_per_sec, p.p50_ns, p.p99_ns
        );
    }
    if r.kill_phase_ran {
        let _ = writeln!(
            s,
            "kill-one availability: {:.3} ({} degraded), {} failovers, {} promotions",
            r.availability_under_kill, r.degraded_under_kill, r.failovers, r.promotions
        );
    } else {
        let _ = writeln!(s, "kill phase skipped (build without --features failpoints)");
    }
    let _ = writeln!(
        s,
        "wire stats: text replicas={} promotions={}, binary replicas={} promotions={}",
        r.text_replicas, r.text_promotions, r.binary_replicas, r.binary_promotions
    );
    s
}

/// Serialises the report as JSON (hand-rolled; all fields numeric or
/// boolean).
pub fn to_json(r: &ReplicaBenchReport) -> String {
    fn phase(s: &mut String, name: &str, p: &ReplicaPhase) {
        let _ = write!(
            s,
            "  \"{}\": {{\"requests\": {}, \"requests_per_sec\": {:.1}, \"p50_ns\": {}, \
             \"p99_ns\": {}}}",
            name, p.requests, p.requests_per_sec, p.p50_ns, p.p99_ns
        );
    }
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"replicas\": {},", r.replicas);
    phase(&mut s, "solo", &r.solo);
    s.push_str(",\n");
    phase(&mut s, "replicated", &r.replicated);
    s.push_str(",\n");
    phase(&mut s, "kill_one", &r.killed);
    s.push_str(",\n");
    let _ = writeln!(s, "  \"kill_phase_ran\": {},", r.kill_phase_ran);
    let _ = writeln!(s, "  \"availability_under_kill\": {:.3},", r.availability_under_kill);
    let _ = writeln!(s, "  \"degraded_under_kill\": {},", r.degraded_under_kill);
    let _ = writeln!(s, "  \"replica_failovers\": {},", r.failovers);
    let _ = writeln!(s, "  \"replica_promotions\": {},", r.promotions);
    let _ = writeln!(
        s,
        "  \"wire_stats\": {{\"text_replicas\": {}, \"text_promotions\": {}, \
         \"binary_replicas\": {}, \"binary_promotions\": {}}}",
        r.text_replicas, r.text_promotions, r.binary_replicas, r.binary_promotions
    );
    s.push_str("}\n");
    s
}
