//! Micro-benchmarks with machine-readable output
//! (`exp_runner bench [--json]`).
//!
//! Each record times one kernel (or one end-to-end training step) with
//! a plain `Instant` loop and reports the **minimum** nanoseconds per
//! iteration over several repetitions — the most noise-robust statistic
//! on a shared machine. Legacy/fused kernel pairs run back to back so
//! the speedup of the in-place path can be read straight off the table.
//!
//! `allocs_per_iter` is live only when the binary installs
//! [`crate::allocs::CountingAlloc`] as its global allocator (the
//! `count-allocs` feature of `exp_runner`); otherwise it reads 0.

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use gcwc::model::Encoder;
use gcwc::task::corrupt_input_pooled;
use gcwc::{build_samples, ModelConfig, TaskKind, TrainSample};
use gcwc_graph::{ChebyshevBasis, PolyBasis};
use gcwc_linalg::rng::seeded;
use gcwc_linalg::{BufferPool, CsrMatrix, Matrix};
use gcwc_nn::{Adam, GradBuffer, ParamStore, Tape};
use gcwc_traffic::{generators, simulate, HistogramSpec, SimConfig};
use rand::Rng;

use crate::allocs;

/// One timed operation.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Operation name (`matmul`, `matmul_into`, `train_step_pooled`, …).
    pub op: String,
    /// Problem rows `n`.
    pub n: usize,
    /// Problem cols `m` (0 when not applicable).
    pub m: usize,
    /// Chebyshev order `K` (0 when not applicable).
    pub k: usize,
    /// Minimum nanoseconds per iteration.
    pub ns_per_iter: u64,
    /// Heap allocations per iteration (0 unless the counting allocator
    /// is installed).
    pub allocs_per_iter: u64,
    /// Kernel thread count the measurement ran with.
    pub threads: usize,
}

/// Times `f` for `iters` iterations, `reps` times; returns the minimum
/// ns/iter and the minimum allocations/iter.
fn measure(iters: u64, reps: usize, mut f: impl FnMut()) -> (u64, u64) {
    let mut best_ns = u64::MAX;
    let mut best_allocs = u64::MAX;
    for _ in 0..reps {
        let a0 = allocs::alloc_count();
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        let ns = (t0.elapsed().as_nanos() as u64) / iters;
        let da = (allocs::alloc_count() - a0) / iters;
        best_ns = best_ns.min(ns);
        best_allocs = best_allocs.min(da);
    }
    (best_ns, best_allocs)
}

fn record(op: &str, n: usize, m: usize, k: usize, iters: u64, f: impl FnMut()) -> BenchRecord {
    let threads = gcwc_linalg::parallel::current_threads();
    let (ns_per_iter, allocs_per_iter) = measure(iters, 5, f);
    BenchRecord { op: op.to_owned(), n, m, k, ns_per_iter, allocs_per_iter, threads }
}

/// Ring-graph adjacency: a sparse matrix with the connectivity shape of
/// a road network.
fn ring_adjacency(n: usize) -> CsrMatrix {
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        a[(i, (i + 1) % n)] = 1.0;
        a[((i + 1) % n, i)] = 1.0;
        a[(i, (i + 3) % n)] = 0.5;
        a[((i + 3) % n, i)] = 0.5;
    }
    CsrMatrix::from_dense(&a)
}

/// Runs the kernel micro-benchmarks plus the end-to-end training-step
/// pair.
pub fn run_all() -> Vec<BenchRecord> {
    let mut rng = seeded(42);
    let n = 96;
    let m = 8;
    let k = 4;
    let a = Matrix::from_fn(n, n, |_, _| rng.random::<f64>() - 0.5);
    let b = Matrix::from_fn(n, n, |_, _| rng.random::<f64>() - 0.5);
    let x = Matrix::from_fn(n, m, |_, _| rng.random::<f64>() - 0.5);
    let lap = ring_adjacency(n);
    let basis = ChebyshevBasis::from_adjacency(&ring_adjacency(n), k);
    let mut out = vec![
        {
            let mut sink = Matrix::zeros(n, n);
            let r = record("matmul", n, n, 0, 50, || sink = black_box(&a).matmul(black_box(&b)));
            black_box(&sink);
            r
        },
        {
            let mut sink = Matrix::zeros(n, n);
            let r = record("matmul_into", n, n, 0, 50, || {
                black_box(&a).matmul_into(black_box(&b), &mut sink)
            });
            black_box(&sink);
            r
        },
        {
            let mut sink = Matrix::zeros(n, m);
            let r = record("csr_matmul_dense_into", n, m, 0, 200, || {
                black_box(&lap).matmul_dense_into(black_box(&x), &mut sink)
            });
            black_box(&sink);
            r
        },
        {
            let prev = Matrix::from_fn(n, m, |_, _| 0.25);
            let mut sink = Matrix::zeros(n, m);
            let r = record("cheb_step_into", n, m, 0, 200, || {
                black_box(&lap).cheb_step_into(black_box(&x), black_box(&prev), &mut sink)
            });
            black_box(&sink);
            r
        },
        record("cheb_forward", n, m, k, 100, || {
            black_box(basis.forward(black_box(&x)));
        }),
        {
            let mut pool = BufferPool::new();
            let mut taps: Vec<Matrix> = Vec::new();
            let r = record("cheb_forward_pooled", n, m, k, 100, || {
                basis.forward_pooled(black_box(&x), &mut pool, &mut taps);
                for t in taps.drain(..) {
                    pool.give(t);
                }
            });
            r
        },
    ];
    out.extend(kernel_tier_pair());
    out.extend(train_step_pair());
    out
}

/// The naive/tiled dense-matmul pair at the scale sweep's base size
/// (n = 860, one thread). Both tiers write the same bits; the tiled
/// row must be the faster one.
fn kernel_tier_pair() -> Vec<BenchRecord> {
    use gcwc_linalg::tile::{with_tier, KernelTier};
    let n = 860;
    let mut rng = seeded(11);
    let a = Matrix::from_fn(n, n, |_, _| rng.random::<f64>() - 0.5);
    let b = Matrix::from_fn(n, n, |_, _| rng.random::<f64>() - 0.5);
    let mut sink = Matrix::zeros(n, n);
    gcwc_linalg::parallel::with_threads(1, || {
        let mut tiered = |op: &str, tier: KernelTier| {
            let r = with_tier(tier, || {
                record(op, n, n, 0, 1, || black_box(&a).matmul_into(black_box(&b), &mut sink))
            });
            black_box(&sink);
            r
        };
        vec![tiered("matmul_naive", KernelTier::Naive), tiered("matmul_tiled", KernelTier::Tiled)]
    })
}

/// One GCWC training step at CI scale (172 edges, the paper's city
/// network), timed fresh-workspaces vs pooled.
fn train_step_pair() -> Vec<BenchRecord> {
    let hw = generators::city_network(1);
    let sim = SimConfig {
        days: 2,
        intervals_per_day: 16,
        records_per_interval: 10.0,
        ..Default::default()
    };
    let data = simulate(&hw, HistogramSpec::hist8(), &sim);
    let ds = data.to_dataset(0.5, 5, 11);
    let idx: Vec<usize> = (0..ds.len()).collect();
    let samples = build_samples(&ds, &idx, TaskKind::Estimation, 0);
    let cfg = ModelConfig::ci_hist();
    let mut store = ParamStore::new();
    let mut init_rng = seeded(3);
    let enc = Encoder::new(&hw.graph, 8, &cfg, &mut store, &mut init_rng);
    let mut adam = Adam::new(&store, cfg.optim);
    let n = hw.graph.num_nodes();
    let m = 8;
    let k = cfg.conv_layers.first().map_or(0, |l| l.cheb_order);

    let step = |tape: &mut Tape,
                buffer: &mut GradBuffer,
                store: &mut ParamStore,
                adam: &mut Adam,
                sample: &TrainSample,
                seed: u64| {
        store.zero_grads();
        tape.reset();
        buffer.reset();
        let mut rng = seeded(seed);
        let (input, flags) = corrupt_input_pooled(
            &sample.input,
            &sample.context.row_flags,
            cfg.row_dropout,
            &mut rng,
            tape.pool_mut(),
        );
        let pred = enc.output(tape, store, &input, true, &mut rng);
        tape.pool_mut().give(input);
        tape.pool_mut().give_vec(flags);
        let loss = tape.kl_loss_masked_ref(pred, &sample.label, &sample.label_mask, 1e-6);
        tape.backward(loss, buffer);
        buffer.merge_into(store);
        store.scale_grads(1.0);
        adam.step(store);
    };

    let mut master = seeded(7);
    let fresh = {
        let mut i = 0usize;
        record("train_step_fresh", n, m, k, 20, || {
            let mut tape = Tape::new();
            let mut buffer = GradBuffer::new();
            let seed: u64 = master.random();
            step(&mut tape, &mut buffer, &mut store, &mut adam, &samples[i % samples.len()], seed);
            i += 1;
        })
    };
    let pooled = {
        let mut tape = Tape::new();
        let mut buffer = GradBuffer::new();
        let mut i = 0usize;
        record("train_step_pooled", n, m, k, 20, || {
            let seed: u64 = master.random();
            step(&mut tape, &mut buffer, &mut store, &mut adam, &samples[i % samples.len()], seed);
            i += 1;
        })
    };
    vec![fresh, pooled]
}

/// Plain-text table of the records.
pub fn render(records: &[BenchRecord]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<24}{:>6}{:>6}{:>4}{:>14}{:>12}{:>9}",
        "op", "n", "m", "K", "ns/iter", "allocs/iter", "threads"
    );
    for r in records {
        let _ = writeln!(
            s,
            "{:<24}{:>6}{:>6}{:>4}{:>14}{:>12}{:>9}",
            r.op, r.n, r.m, r.k, r.ns_per_iter, r.allocs_per_iter, r.threads
        );
    }
    s
}

/// Serialises the records as a JSON array (hand-rolled — every field is
/// a number or a plain identifier string, so no escaping is needed).
pub fn to_json(records: &[BenchRecord]) -> String {
    let mut s = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        let _ = write!(
            s,
            "  {{\"op\": \"{}\", \"n\": {}, \"m\": {}, \"K\": {}, \"ns_per_iter\": {}, \
             \"allocs_per_iter\": {}, \"threads\": {}}}",
            r.op, r.n, r.m, r.k, r.ns_per_iter, r.allocs_per_iter, r.threads
        );
        s.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    s.push_str("]\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_valid() {
        let recs = vec![BenchRecord {
            op: "matmul".into(),
            n: 8,
            m: 8,
            k: 0,
            ns_per_iter: 1234,
            allocs_per_iter: 1,
            threads: 1,
        }];
        let j = to_json(&recs);
        assert!(j.starts_with("[\n") && j.ends_with("]\n"));
        assert!(j.contains("\"op\": \"matmul\""));
        assert!(j.contains("\"ns_per_iter\": 1234"));
        assert!(!j.contains(",\n]"), "no trailing comma");
    }

    #[test]
    fn measure_reports_minimum() {
        let (ns, allocs) = measure(10, 3, || {
            black_box(1 + 1);
        });
        assert!(ns < 1_000_000);
        assert_eq!(allocs, 0, "no counting allocator installed in unit tests");
    }
}
