//! Heap-allocation accounting for the zero-allocation hot-path checks.
//!
//! [`CountingAlloc`] wraps the system allocator and counts every
//! allocation (`alloc`, `alloc_zeroed`, `realloc`) and deallocation.
//! The module is always compiled; the allocator only becomes active in
//! a binary that installs it:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: gcwc_bench::allocs::CountingAlloc = gcwc_bench::allocs::CountingAlloc;
//! ```
//!
//! The `alloc_regression` integration test installs it unconditionally
//! to pin the steady-state training step at zero allocations; the
//! `exp_runner` binary installs it behind the `count-allocs` feature so
//! `bench --json` can report allocs/iter without taxing normal runs.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// A system allocator that counts every heap operation.
pub struct CountingAlloc;

// SAFETY: defers every operation to `System`, which upholds the
// `GlobalAlloc` contract; the counters are only bookkeeping.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }
}

/// Total allocations performed so far (0 when [`CountingAlloc`] is not
/// the process's global allocator).
pub fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Total deallocations performed so far.
pub fn dealloc_count() -> u64 {
    DEALLOCS.load(Ordering::Relaxed)
}

/// Total bytes requested so far.
pub fn allocated_bytes() -> u64 {
    BYTES.load(Ordering::Relaxed)
}

/// Runs `f` and returns its result together with the number of heap
/// allocations it performed.
pub fn count_allocs<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = alloc_count();
    let out = f();
    (out, alloc_count() - before)
}
