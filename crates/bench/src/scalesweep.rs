//! Scale sweep to 8 600 edges (`exp_runner scale-sweep [--json]`).
//!
//! The paper's §VI-D scalability protocol pushed past the Figure 6
//! table: the CI network is tiled ×10/×25/×50 (1 720 → 8 600 edges),
//! each scale trains GCWC and the partitioned "-M2" variant (the same
//! two-shard path `--shards=2` uses), and every row reports the
//! machine-readable numbers CI tracks — steady-state training-step
//! nanoseconds, serving latency percentiles, peak RSS, and heap
//! allocations per step. A headline naive-vs-tiled dense matmul pair
//! at n = 860 pins the kernel-tier speedup the sweep rides on; both
//! tiers are `to_bits`-identical, so the tier only ever changes
//! wall-clock time.
//!
//! `allocs_per_step` is live only under the `count-allocs` feature
//! (or a test binary that installs [`crate::allocs::CountingAlloc`]);
//! otherwise it reads 0.

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use gcwc::model::Encoder;
use gcwc::task::corrupt_input_pooled;
use gcwc::{CompletionModel, GcwcModel, ModelConfig, ShardedModel, TrainSample};
use gcwc_graph::EdgeGraph;
use gcwc_linalg::rng::seeded;
use gcwc_linalg::tile::{with_tier, KernelTier};
use gcwc_linalg::Matrix;
use gcwc_nn::{Adam, GradBuffer, ParamStore, Tape};
use gcwc_traffic::generators;
use rand::Rng;

use crate::allocs;
use crate::scalability::synthetic_samples;

/// Sizing knobs for one sweep run.
#[derive(Clone, Debug)]
pub struct ScaleSweepConfig {
    /// CI-network scale factors (the paper's protocol tiles ×10…×50).
    pub scales: Vec<usize>,
    /// Steady-state training steps timed per variant.
    pub steps: usize,
    /// Serving requests timed per variant.
    pub serve_reqs: usize,
    /// Base RNG seed (graph, samples, and model init).
    pub seed: u64,
}

impl ScaleSweepConfig {
    /// The full protocol: ×10/×25/×50, up to 8 600 edges.
    pub fn full() -> Self {
        Self { scales: vec![10, 25, 50], steps: 6, serve_reqs: 24, seed: 42 }
    }

    /// CI-sized downsample: the ×10 point only, fewer steps.
    pub fn smoke() -> Self {
        Self { scales: vec![10], steps: 3, serve_reqs: 6, seed: 42 }
    }
}

/// One measured (scale, variant) row.
#[derive(Clone, Debug)]
pub struct ScaleRow {
    /// Network scale factor.
    pub scale: usize,
    /// Road edges at this scale (nodes of the edge graph).
    pub edges: usize,
    /// `"GCWC"` or `"GCWC-M2"`.
    pub variant: &'static str,
    /// Shard count backing the variant (1, or 2 for `-M2`).
    pub shards: usize,
    /// Minimum nanoseconds per training step.
    ///
    /// GCWC rows pin the true steady state (reused tape/pool, minimum
    /// over timed steps); `-M2` rows time one full epoch through the
    /// sharded fit path and amortise it over the epoch's steps.
    pub train_step_ns: u64,
    /// Median serving latency (one `predict` call), nanoseconds.
    pub serve_p50_ns: u64,
    /// 99th-percentile serving latency, nanoseconds.
    pub serve_p99_ns: u64,
    /// Peak resident set size (`VmHWM`) after the variant ran, in kB.
    /// A process-wide high-water mark: monotone across rows, 0 where
    /// `/proc` is unavailable.
    pub peak_rss_kb: u64,
    /// Heap allocations per training step over the measured window
    /// (amortised; see [`ScaleRow::train_step_ns`] for what the window
    /// is per variant). GCWC rows must hold this at exactly 0.
    pub allocs_per_step: u64,
}

/// A full sweep: the headline kernel-tier pair plus per-scale rows.
#[derive(Clone, Debug)]
pub struct ScaleSweepReport {
    /// Square size of the headline dense matmul pair.
    pub matmul_n: usize,
    /// Minimum ns for the naive-tier matmul at `matmul_n` (1 thread).
    pub matmul_naive_ns: u64,
    /// Minimum ns for the tiled-tier matmul at `matmul_n` (1 thread).
    pub matmul_tiled_ns: u64,
    /// `matmul_naive_ns / matmul_tiled_ns`.
    pub matmul_speedup: f64,
    /// Measured rows, in scale order, GCWC before GCWC-M2.
    pub rows: Vec<ScaleRow>,
}

/// The sweep's synthetic sample generator, sized for smoke tests
/// (48 intervals per day, the sweep's fixed context grid).
pub fn smoke_samples(n: usize, m: usize, count: usize, seed: u64) -> Vec<TrainSample> {
    synthetic_samples(n, m, count, 48, seed)
}

/// Peak resident set size (`VmHWM`) in kB; 0 where unavailable.
pub fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1).and_then(|v| v.parse().ok()))
        })
        .unwrap_or(0)
}

fn percentile(sorted_ns: &[u64], p: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let idx = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[idx.min(sorted_ns.len() - 1)]
}

/// One full GCWC training step into reused workspaces — the exact body
/// `run_training` executes per sample in its steady state (and the
/// body `alloc_regression` pins at zero allocations).
#[allow(clippy::too_many_arguments)]
fn training_step(
    enc: &Encoder,
    store: &mut ParamStore,
    adam: &mut Adam,
    tape: &mut Tape,
    buffer: &mut GradBuffer,
    sample: &TrainSample,
    row_dropout: f64,
    seed: u64,
) {
    store.zero_grads();
    tape.reset();
    buffer.reset();
    let mut rng = seeded(seed);
    let (input, flags) = corrupt_input_pooled(
        &sample.input,
        &sample.context.row_flags,
        row_dropout,
        &mut rng,
        tape.pool_mut(),
    );
    let pred = enc.output(tape, store, &input, true, &mut rng);
    tape.pool_mut().give(input);
    tape.pool_mut().give_vec(flags);
    let loss = tape.kl_loss_masked_ref(pred, &sample.label, &sample.label_mask, 1e-6);
    tape.backward(loss, buffer);
    buffer.merge_into(store);
    store.scale_grads(1.0);
    adam.step(store);
}

/// Steady-state training-step time and allocations for one GCWC model:
/// two cold steps warm the tape pool, then `steps` timed steps must be
/// allocation-free. Returns `(min ns/step, allocs/step)`.
fn steady_state_gcwc(
    graph: &EdgeGraph,
    samples: &[TrainSample],
    cfg: &ModelConfig,
    steps: usize,
    seed: u64,
) -> (u64, u64) {
    let mut store = ParamStore::new();
    let mut init_rng = seeded(seed);
    let enc = Encoder::new(graph, 8, cfg, &mut store, &mut init_rng);
    let mut adam = Adam::new(&store, cfg.optim);
    let mut tape = Tape::new();
    let mut buffer = GradBuffer::new();
    let mut master = seeded(seed ^ 0xA5A5);
    for i in 0..2 {
        let s: u64 = master.random();
        let sample = &samples[i % samples.len()];
        training_step(
            &enc,
            &mut store,
            &mut adam,
            &mut tape,
            &mut buffer,
            sample,
            cfg.row_dropout,
            s,
        );
    }
    let mut best = u64::MAX;
    let a0 = allocs::alloc_count();
    for i in 0..steps {
        let s: u64 = master.random();
        let sample = &samples[(i + 2) % samples.len()];
        let t0 = Instant::now();
        training_step(
            &enc,
            &mut store,
            &mut adam,
            &mut tape,
            &mut buffer,
            sample,
            cfg.row_dropout,
            s,
        );
        best = best.min(t0.elapsed().as_nanos() as u64);
    }
    let allocs_per_step = (allocs::alloc_count() - a0) / steps as u64;
    (best, allocs_per_step)
}

/// Times `reqs` serving requests through `predict`, cycling over
/// `samples`; returns `(p50 ns, p99 ns)`. One unrecorded warm-up
/// request fills caches first.
fn serve_percentiles(
    mut predict: impl FnMut(&TrainSample) -> Matrix,
    samples: &[TrainSample],
    reqs: usize,
) -> (u64, u64) {
    black_box(predict(&samples[0]));
    let mut ns: Vec<u64> = Vec::with_capacity(reqs);
    for i in 0..reqs {
        let sample = &samples[i % samples.len()];
        let t0 = Instant::now();
        black_box(predict(sample));
        ns.push(t0.elapsed().as_nanos() as u64);
    }
    ns.sort_unstable();
    (percentile(&ns, 0.50), percentile(&ns, 0.99))
}

/// The headline kernel-tier pair: one n × n dense matmul per tier at
/// a single thread, minimum over `reps` runs each.
fn matmul_headline(n: usize, reps: usize) -> (u64, u64) {
    let mut rng = seeded(7);
    let a = Matrix::from_fn(n, n, |_, _| rng.random::<f64>() - 0.5);
    let b = Matrix::from_fn(n, n, |_, _| rng.random::<f64>() - 0.5);
    let mut sink = Matrix::zeros(n, n);
    gcwc_linalg::parallel::with_threads(1, || {
        let mut time = |tier: KernelTier| {
            let mut best = u64::MAX;
            for _ in 0..reps {
                let t0 = Instant::now();
                with_tier(tier, || black_box(&a).matmul_into(black_box(&b), &mut sink));
                best = best.min(t0.elapsed().as_nanos() as u64);
            }
            black_box(&sink);
            best
        };
        (time(KernelTier::Naive), time(KernelTier::Tiled))
    })
}

/// Runs the sweep: headline tier pair, then per-scale GCWC and
/// GCWC-M2 rows (training, serving, RSS, allocations).
pub fn run(cfg: &ScaleSweepConfig) -> ScaleSweepReport {
    let matmul_n = 860;
    let (matmul_naive_ns, matmul_tiled_ns) = matmul_headline(matmul_n, 3);
    let matmul_speedup = matmul_naive_ns as f64 / matmul_tiled_ns.max(1) as f64;

    let base = generators::city_network(cfg.seed);
    let m = 8;
    let ipd = 48;
    let model_cfg = ModelConfig::ci_hist().with_epochs(1);
    let mut rows = Vec::new();
    for &scale in &cfg.scales {
        let graph = generators::scaled_city(&base.graph, scale);
        let n = graph.num_nodes();
        let samples = synthetic_samples(n, m, cfg.steps.max(4), ipd, cfg.seed);
        eprintln!("  [scale-sweep] scale={scale} edges={n} …");

        // GCWC: steady-state step loop, then a trained model serves.
        let (train_step_ns, allocs_per_step) =
            steady_state_gcwc(&graph, &samples, &model_cfg, cfg.steps, cfg.seed);
        let mut model = GcwcModel::new(&graph, m, model_cfg.clone(), cfg.seed);
        model.fit(&samples);
        let (p50, p99) = serve_percentiles(|s| model.predict(s), &samples, cfg.serve_reqs);
        rows.push(ScaleRow {
            scale,
            edges: n,
            variant: "GCWC",
            shards: 1,
            train_step_ns,
            serve_p50_ns: p50,
            serve_p99_ns: p99,
            peak_rss_kb: peak_rss_kb(),
            allocs_per_step,
        });

        // GCWC-M2: the two-shard partitioned path. The first fit warms
        // per-shard workspaces; the second, timed fit is one epoch, so
        // ns and allocations amortise over `samples.len()` steps.
        let mut sharded = ShardedModel::gcwc(&graph, m, model_cfg.clone(), cfg.seed, 2);
        sharded.fit_shards(&samples);
        let steps = samples.len() as u64;
        let a0 = allocs::alloc_count();
        let t0 = Instant::now();
        sharded.fit_shards(&samples);
        let m2_step_ns = (t0.elapsed().as_nanos() as u64) / steps;
        let m2_allocs = (allocs::alloc_count() - a0) / steps;
        let (p50, p99) = serve_percentiles(|s| sharded.predict_global(s), &samples, cfg.serve_reqs);
        rows.push(ScaleRow {
            scale,
            edges: n,
            variant: "GCWC-M2",
            shards: 2,
            train_step_ns: m2_step_ns,
            serve_p50_ns: p50,
            serve_p99_ns: p99,
            peak_rss_kb: peak_rss_kb(),
            allocs_per_step: m2_allocs,
        });
    }
    ScaleSweepReport { matmul_n, matmul_naive_ns, matmul_tiled_ns, matmul_speedup, rows }
}

/// Renders the report as an aligned text table.
pub fn render(r: &ScaleSweepReport) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Scale sweep (dense matmul n={}: naive {} ns, tiled {} ns, speedup {:.2}x)",
        r.matmul_n, r.matmul_naive_ns, r.matmul_tiled_ns, r.matmul_speedup
    );
    let _ = writeln!(
        s,
        "{:>6}{:>7}{:>10}{:>8}{:>15}{:>14}{:>14}{:>13}{:>13}",
        "scale",
        "edges",
        "variant",
        "shards",
        "train ns/step",
        "serve p50 ns",
        "serve p99 ns",
        "peak RSS kB",
        "allocs/step"
    );
    for row in &r.rows {
        let _ = writeln!(
            s,
            "{:>6}{:>7}{:>10}{:>8}{:>15}{:>14}{:>14}{:>13}{:>13}",
            row.scale,
            row.edges,
            row.variant,
            row.shards,
            row.train_step_ns,
            row.serve_p50_ns,
            row.serve_p99_ns,
            row.peak_rss_kb,
            row.allocs_per_step
        );
    }
    s
}

/// Serialises the report as a JSON object (hand-rolled — every field
/// is a number or a plain identifier string, so no escaping is
/// needed).
pub fn to_json(r: &ScaleSweepReport) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"matmul_n\": {},", r.matmul_n);
    let _ = writeln!(s, "  \"matmul_naive_ns\": {},", r.matmul_naive_ns);
    let _ = writeln!(s, "  \"matmul_tiled_ns\": {},", r.matmul_tiled_ns);
    let _ = writeln!(s, "  \"matmul_speedup\": {:.3},", r.matmul_speedup);
    s.push_str("  \"rows\": [\n");
    for (i, row) in r.rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"scale\": {}, \"edges\": {}, \"variant\": \"{}\", \"shards\": {}, \
             \"train_step_ns\": {}, \"serve_p50_ns\": {}, \"serve_p99_ns\": {}, \
             \"peak_rss_kb\": {}, \"allocs_per_step\": {}}}",
            row.scale,
            row.edges,
            row.variant,
            row.shards,
            row.train_step_ns,
            row.serve_p50_ns,
            row.serve_p99_ns,
            row.peak_rss_kb,
            row.allocs_per_step
        );
        s.push_str(if i + 1 < r.rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_report() -> ScaleSweepReport {
        ScaleSweepReport {
            matmul_n: 860,
            matmul_naive_ns: 200,
            matmul_tiled_ns: 100,
            matmul_speedup: 2.0,
            rows: vec![ScaleRow {
                scale: 10,
                edges: 1720,
                variant: "GCWC",
                shards: 1,
                train_step_ns: 5,
                serve_p50_ns: 3,
                serve_p99_ns: 4,
                peak_rss_kb: 1024,
                allocs_per_step: 0,
            }],
        }
    }

    #[test]
    fn json_shape_is_valid() {
        let j = to_json(&fake_report());
        assert!(j.starts_with("{\n") && j.ends_with("}\n"));
        for field in [
            "\"matmul_n\": 860",
            "\"matmul_speedup\": 2.000",
            "\"variant\": \"GCWC\"",
            "\"train_step_ns\": 5",
            "\"peak_rss_kb\": 1024",
            "\"allocs_per_step\": 0",
        ] {
            assert!(j.contains(field), "missing {field} in {j}");
        }
        assert!(!j.contains(",\n  ]"), "no trailing comma");
    }

    #[test]
    fn percentile_picks_nearest_rank() {
        let ns = [10, 20, 30, 40, 50];
        assert_eq!(percentile(&ns, 0.50), 30);
        assert_eq!(percentile(&ns, 0.99), 50);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn peak_rss_reads_a_plausible_value() {
        let kb = peak_rss_kb();
        // On Linux this is at least a few MB for any test binary.
        assert!(kb == 0 || kb > 1024, "implausible VmHWM: {kb}");
    }
}
