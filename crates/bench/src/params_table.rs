//! Table III reproduction: model constructions and `#Para` counts.

use gcwc::{AGcwcModel, CompletionModel, GcwcModel, OutputKind};
use gcwc_baselines::{CnnModel, DrConfig, DrModel};
use gcwc_traffic::generators;

use crate::profile::{DatasetKind, Profile};

/// One row of the Table III reproduction.
#[derive(Clone, Debug)]
pub struct ParamRow {
    /// HIST or AVG.
    pub kind: &'static str,
    /// HW or CI.
    pub dataset: &'static str,
    /// Model name.
    pub model: String,
    /// Architecture string in the paper's notation.
    pub configuration: String,
    /// Trainable scalar count.
    pub params: usize,
}

fn arch_string(cfg: &gcwc::ModelConfig, n: usize) -> String {
    let mut s = String::new();
    for (i, l) in cfg.conv_layers.iter().enumerate() {
        if i > 0 {
            s.push('-');
        }
        s.push_str(&format!("C{}x1_{}", l.cheb_order, l.filters));
        if l.pool > 1 {
            s.push_str(&format!("-P{}", l.pool));
        }
    }
    s.push_str(&format!("-FC{n}"));
    s
}

/// Builds every (type, dataset, model) row of Table III.
pub fn table3(profile: &Profile) -> Vec<ParamRow> {
    let hw = generators::highway_tollgate(profile.seed);
    let ci = generators::city_network(profile.seed);
    let mut rows = Vec::new();
    for (kind, output) in [("HIST", OutputKind::Histogram), ("AVG", OutputKind::Average)] {
        for (ds_name, instance, kind_enum) in
            [("HW", &hw, DatasetKind::Highway), ("CI", &ci, DatasetKind::City)]
        {
            let n = instance.num_edges();
            let m = 8;
            let cfg = crate::methods::model_config(kind_enum, output, profile);
            let arch = arch_string(&cfg, n);

            let cnn = CnnModel::new(n, m, cfg.clone(), 1);
            rows.push(ParamRow {
                kind,
                dataset: ds_name,
                model: "CNN".into(),
                configuration: arch.clone(),
                params: cnn.num_params(),
            });
            let dr = DrModel::new(&instance.graph, m, output, DrConfig::default(), 1);
            rows.push(ParamRow {
                kind,
                dataset: ds_name,
                model: "DR".into(),
                configuration: "DCGRU(h=8,K=3)-FC".into(),
                params: dr.num_params(),
            });
            let gcwc = GcwcModel::new(&instance.graph, m, cfg.clone(), 1);
            rows.push(ParamRow {
                kind,
                dataset: ds_name,
                model: "GCWC".into(),
                configuration: arch.clone(),
                params: gcwc.num_params(),
            });
            let agcwc = AGcwcModel::new(&instance.graph, m, profile.intervals_per_day, cfg, 1);
            rows.push(ParamRow {
                kind,
                dataset: ds_name,
                model: "A-GCWC".into(),
                configuration: format!("{arch} + C2x2_4-P2-C2x2_8-P2-FC"),
                params: agcwc.num_params(),
            });
        }
    }
    rows
}

/// Renders the rows in the paper's layout.
pub fn render(rows: &[ParamRow]) -> String {
    let mut out = String::from(
        "Table III: Model Construction and #Para\n\
         Type  Data  Model    #Para    Configuration\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<5} {:<5} {:<8} {:>7}  {}\n",
            r.kind, r.dataset, r.model, r.params, r.configuration
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_rows_all_positive() {
        let rows = table3(&Profile::smoke());
        assert_eq!(rows.len(), 16); // 2 types × 2 datasets × 4 models
        assert!(rows.iter().all(|r| r.params > 0));
    }

    #[test]
    fn agcwc_always_larger_than_gcwc() {
        let rows = table3(&Profile::smoke());
        for chunk in rows.chunks(4) {
            let gcwc = chunk.iter().find(|r| r.model == "GCWC").unwrap();
            let agcwc = chunk.iter().find(|r| r.model == "A-GCWC").unwrap();
            assert!(agcwc.params > gcwc.params);
        }
    }

    #[test]
    fn render_contains_headers() {
        let s = render(&table3(&Profile::smoke()));
        assert!(s.contains("Table III"));
        assert!(s.contains("GCWC"));
        assert!(s.contains("C8x1_16-P4"));
    }
}
