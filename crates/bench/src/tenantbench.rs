//! Multi-tenant serving benchmark (`exp_runner tenant-bench`).
//!
//! Drives one serving process hosting two tenants and measures the
//! isolation properties the multi-tenant refactor promises:
//!
//! * **Noisy neighbor**: a victim tenant's p50/p99 and response bits
//!   are measured solo, then again while a quota-capped neighbor
//!   hammers past its burst budget. The victim's responses must stay
//!   bit-identical and its quota/degraded counters must stay zero.
//! * **Delta repair vs full rebuild**: wall time to absorb a localized
//!   [`GraphDelta`] (incremental partition repair + retraining only
//!   the repaired shards) against training a fresh model on the
//!   post-delta graph — the repair must touch strictly fewer than K
//!   shards.
//! * **Cached-path allocations**: steady-state repeat requests against
//!   a tenant's engine must stay heap-allocation-free (live under
//!   `--features count-allocs`; reads 0 otherwise).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use gcwc::{
    build_samples, shard_seed, GcwcModel, ModelConfig, ShardedModel, TaskKind, TrainSample,
};
use gcwc_graph::{GraphDelta, PartitionSet};
use gcwc_serve::{
    AnyModel, BinClient, EngineConfig, ModelRegistry, QuotaConfig, ServeError, Server,
    ServerConfig, TenantId, TenantRegistry,
};
use gcwc_traffic::{generators, simulate, HistogramSpec, SimConfig};

use crate::allocs;

/// Latency summary of one tenant load phase.
#[derive(Clone, Copy, Debug)]
pub struct TenantPhase {
    /// Requests issued.
    pub requests: u64,
    /// Requests per second (wall clock).
    pub requests_per_sec: f64,
    /// Median latency in nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile latency in nanoseconds.
    pub p99_ns: u64,
}

/// Full tenant-bench result.
#[derive(Clone, Debug)]
pub struct TenantBenchReport {
    /// Victim tenant served alone.
    pub victim_solo: TenantPhase,
    /// Victim tenant served while the neighbor hammers at its quota.
    pub victim_noisy: TenantPhase,
    /// Requests the neighbor's quota rejected during the noisy phase.
    pub noisy_rejected: u64,
    /// Requests the neighbor actually completed (its burst budget).
    pub noisy_served: u64,
    /// Wall seconds to absorb the delta incrementally (partition
    /// repair + retraining only the repaired shards).
    pub delta_repair_secs: f64,
    /// Wall seconds to train a fresh model on the post-delta graph.
    pub full_rebuild_secs: f64,
    /// `full_rebuild_secs / delta_repair_secs`.
    pub repair_speedup: f64,
    /// Shards the delta repaired.
    pub repaired_shards: u64,
    /// Total shards K of the repaired model.
    pub total_shards: u64,
    /// Heap allocations per request on the cached in-process path
    /// (0 unless the counting allocator is installed).
    pub cached_allocs_per_request: u64,
}

fn percentile(sorted_ns: &[u64], p: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let idx = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[idx.min(sorted_ns.len() - 1)]
}

fn phase_from(ns: &mut [u64], total_ns: u64) -> TenantPhase {
    let requests = ns.len() as u64;
    ns.sort_unstable();
    TenantPhase {
        requests,
        requests_per_sec: if total_ns == 0 {
            0.0
        } else {
            requests as f64 * 1.0e9 / total_ns as f64
        },
        p50_ns: percentile(ns, 0.50),
        p99_ns: percentile(ns, 0.99),
    }
}

fn model_config() -> ModelConfig {
    ModelConfig::hw_hist().with_epochs(2)
}

fn samples_for(instance: &gcwc_traffic::NetworkInstance) -> Vec<TrainSample> {
    let sim = SimConfig {
        days: 2,
        intervals_per_day: 16,
        records_per_interval: 10.0,
        ..Default::default()
    };
    let data = simulate(instance, HistogramSpec::hist8(), &sim);
    let ds = data.to_dataset(0.5, 5, 11);
    let idx: Vec<usize> = (0..ds.len()).collect();
    build_samples(&ds, &idx, TaskKind::Estimation, 0)
}

fn bits(m: &gcwc_linalg::Matrix) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// A registry loaded with the trained shards of `sharded`.
fn registry_of(sharded: ShardedModel<GcwcModel>) -> Arc<ModelRegistry> {
    let (partition, shards) = sharded.into_shards();
    let factories = (0..partition.num_partitions())
        .map(|k| {
            let graph = partition.partition(k).graph().clone();
            let f: Box<dyn Fn() -> AnyModel + Send + Sync> =
                Box::new(move || AnyModel::Gcwc(GcwcModel::new(&graph, 8, model_config(), 0)));
            f
        })
        .collect();
    let registry = Arc::new(ModelRegistry::sharded(factories, &partition));
    for (k, shard) in shards.into_iter().enumerate() {
        registry.install_shard(k, AnyModel::Gcwc(shard));
    }
    registry
}

fn trained(
    graph: &gcwc_graph::EdgeGraph,
    samples: &[TrainSample],
    k: usize,
) -> ShardedModel<GcwcModel> {
    let mut sharded = ShardedModel::gcwc(graph, 8, model_config(), 42, k);
    sharded.fit_shards(&samples[..8]);
    sharded
}

/// A link interior to one partition's owned block — the most localized
/// delta possible — falling back to any existing link.
fn pick_link(ps: &PartitionSet, graph: &gcwc_graph::EdgeGraph) -> (usize, usize) {
    for u in 0..graph.num_nodes() {
        for &v in graph.neighbors(u) {
            if u < v && ps.owner_of(u) == ps.owner_of(v) && !ps.is_boundary(u) {
                return (u, v);
            }
        }
    }
    for u in 0..graph.num_nodes() {
        if let Some(&v) = graph.neighbors(u).iter().find(|&&v| v > u) {
            return (u, v);
        }
    }
    panic!("graph has no links");
}

/// Runs `reqs` tenant completions for `tenant`, returning per-request
/// latencies, total wall nanoseconds, and the response bits per pool
/// index.
fn drive(
    client: &mut BinClient,
    tenant: u64,
    pool: &[TrainSample],
    reqs: usize,
    mut before_each: impl FnMut(usize),
) -> (Vec<u64>, u64, Vec<Vec<u64>>) {
    let mut ns = Vec::with_capacity(reqs);
    let mut by_pool: Vec<Vec<u64>> = vec![Vec::new(); pool.len()];
    let t0 = Instant::now();
    for k in 0..reqs {
        before_each(k);
        let s = &pool[k % pool.len()];
        let t = Instant::now();
        let resp = client
            .tcomplete(tenant, &s.input, s.context.time_of_day, s.context.day_of_week)
            .expect("victim completion");
        ns.push(t.elapsed().as_nanos() as u64);
        assert!(!resp.body.degraded, "victim response degraded");
        if by_pool[k % pool.len()].is_empty() {
            by_pool[k % pool.len()] = bits(&resp.body.output);
        } else {
            assert_eq!(
                by_pool[k % pool.len()],
                bits(&resp.body.output),
                "repeat response changed bits"
            );
        }
    }
    (ns, t0.elapsed().as_nanos() as u64, by_pool)
}

/// Runs the multi-tenant benchmark end to end. Panics when an
/// isolation invariant is violated (the CI step relies on this).
pub fn run() -> TenantBenchReport {
    let hw = generators::highway_tollgate(1);
    let samples = samples_for(&hw);
    let pool = &samples[..8.min(samples.len())];

    // Two tenants, each with its own trained 2-shard model and engine.
    // The neighbor's quota is a hard burst budget (no refill), so its
    // rejection count is deterministic.
    let victim = TenantId(1);
    let noisy = TenantId(2);
    const NOISY_BURST: u64 = 8;
    let tenants = Arc::new(TenantRegistry::new());
    let engine_cfg = EngineConfig { workers: 1, ..Default::default() };
    let victim_tenant =
        tenants.register(victim, registry_of(trained(&hw.graph, &samples, 2)), engine_cfg, None);
    let noisy_tenant = tenants.register(
        noisy,
        registry_of(trained(&hw.graph, &samples, 2)),
        engine_cfg,
        Some(QuotaConfig { burst: NOISY_BURST, refill_per_sec: 0 }),
    );

    // Cached-path allocations, measured in-process before the server
    // binds (no reactor thread to muddy the counter): one warm-up
    // request populates every shard cache, then repeats must be free.
    let cached_allocs_per_request = {
        let engine = victim_tenant.engine();
        let mut client = engine.client();
        let s = &pool[0];
        for _ in 0..4 {
            let mut input = client.input_buffer();
            input.copy_from(&s.input);
            let c = client
                .complete(input, s.context.time_of_day, s.context.day_of_week)
                .expect("warm-up");
            client.recycle(c);
        }
        const ITERS: u64 = 64;
        let a0 = allocs::alloc_count();
        for _ in 0..ITERS {
            let mut input = client.input_buffer();
            input.copy_from(&s.input);
            let c = client
                .complete(input, s.context.time_of_day, s.context.day_of_week)
                .expect("cached request");
            assert!(c.cache_hit, "repeat request must hit the cache");
            client.recycle(c);
        }
        (allocs::alloc_count() - a0) / ITERS
    };

    let mut server =
        Server::start_tenants(&tenants, "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut victim_conn = BinClient::connect(server.addr()).expect("victim connect");
    let mut noisy_conn = BinClient::connect(server.addr()).expect("noisy connect");

    // Phase 1: the victim alone.
    const REQS: usize = 200;
    let (mut ns, total, baseline) = drive(&mut victim_conn, victim.0, pool, REQS, |_| {});
    let victim_solo = phase_from(&mut ns, total);

    // Phase 2: the victim under a noisy neighbor. Before every victim
    // request the neighbor fires a 4-request burst; after its budget
    // of NOISY_BURST served requests, every one is a quota rejection.
    let mut noisy_served = 0u64;
    let (mut ns, total, under_noise) = drive(&mut victim_conn, victim.0, pool, REQS, |k| {
        for j in 0..4 {
            let s = &pool[(k + j) % pool.len()];
            match noisy_conn.tcomplete(
                noisy.0,
                &s.input,
                s.context.time_of_day,
                s.context.day_of_week,
            ) {
                Ok(_) => noisy_served += 1,
                Err(ServeError::QuotaExceeded) => {}
                Err(other) => panic!("noisy neighbor hit a non-quota error: {other}"),
            }
        }
    });
    let victim_noisy = phase_from(&mut ns, total);

    // Isolation: the victim's bits are unchanged by the neighbor, and
    // its fault counters stayed at zero.
    assert_eq!(baseline, under_noise, "noisy neighbor changed the victim's response bits");
    let vstats = victim_tenant.stats();
    assert_eq!(vstats.quota_rejected, 0, "victim has no quota to reject on");
    assert_eq!(vstats.degraded_responses, 0, "victim must not degrade: {vstats:?}");
    let noisy_rejected = noisy_tenant.stats().quota_rejected;
    assert_eq!(noisy_served, NOISY_BURST, "hard burst budget admits exactly the burst");
    assert_eq!(
        noisy_rejected,
        (REQS as u64) * 4 - NOISY_BURST,
        "every post-burst neighbor request must be a quota rejection"
    );

    server.stop();
    tenants.shutdown();

    // Delta repair vs full rebuild, K = 4 on the synthetic city.
    let city = generators::city_network_sized(2, 64);
    let city_samples = samples_for(&city);
    const K: usize = 4;
    let pre = Arc::new(PartitionSet::build(&city.graph, K));
    let mut repaired_model = ShardedModel::gcwc_on(Arc::clone(&pre), 8, model_config(), 42);
    repaired_model.fit_shards(&city_samples[..8]);

    let link = pick_link(&pre, &city.graph);
    let delta = GraphDelta { added_edges: vec![], removed_edges: vec![link] };
    let t0 = Instant::now();
    let (new_graph, repaired) = repaired_model
        .apply_delta(&city.graph, &delta, |b, p| {
            GcwcModel::new(p.graph(), 8, model_config(), shard_seed(42, b))
        })
        .expect("apply delta");
    repaired_model.fit_shards_subset(&repaired, &city_samples[..8]).expect("repair retrain");
    let delta_repair_secs = t0.elapsed().as_secs_f64();
    assert!(
        repaired.len() < K,
        "a localized delta must repair strictly fewer than all {K} shards, repaired {}",
        repaired.len()
    );

    let owners = repaired_model.partition_set().owners().to_vec();
    let t0 = Instant::now();
    let post = Arc::new(PartitionSet::from_owner_of(&new_graph, owners, K));
    let mut fresh = ShardedModel::gcwc_on(post, 8, model_config(), 42);
    fresh.fit_shards(&city_samples[..8]);
    let full_rebuild_secs = t0.elapsed().as_secs_f64();

    TenantBenchReport {
        victim_solo,
        victim_noisy,
        noisy_rejected,
        noisy_served,
        delta_repair_secs,
        full_rebuild_secs,
        repair_speedup: if delta_repair_secs == 0.0 {
            0.0
        } else {
            full_rebuild_secs / delta_repair_secs
        },
        repaired_shards: repaired.len() as u64,
        total_shards: K as u64,
        cached_allocs_per_request,
    }
}

/// Renders the report as an aligned text table.
pub fn render(r: &TenantBenchReport) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<16}{:>10}{:>14}{:>14}{:>14}",
        "victim phase", "requests", "req/s", "p50 ns", "p99 ns"
    );
    for (name, p) in [("solo", &r.victim_solo), ("noisy_neighbor", &r.victim_noisy)] {
        let _ = writeln!(
            s,
            "{:<16}{:>10}{:>14.0}{:>14}{:>14}",
            name, p.requests, p.requests_per_sec, p.p50_ns, p.p99_ns
        );
    }
    let _ = writeln!(
        s,
        "noisy neighbor: {} served (burst budget), {} quota-rejected",
        r.noisy_served, r.noisy_rejected
    );
    let _ = writeln!(
        s,
        "delta repair: {:.3}s for {}/{} shards vs {:.3}s full rebuild ({:.1}x)",
        r.delta_repair_secs,
        r.repaired_shards,
        r.total_shards,
        r.full_rebuild_secs,
        r.repair_speedup
    );
    let _ = writeln!(s, "cached path: {} allocs/request", r.cached_allocs_per_request);
    s
}

/// Serialises the report as JSON (hand-rolled; all fields numeric).
pub fn to_json(r: &TenantBenchReport) -> String {
    fn phase(s: &mut String, name: &str, p: &TenantPhase) {
        let _ = write!(
            s,
            "  \"{}\": {{\"requests\": {}, \"requests_per_sec\": {:.1}, \"p50_ns\": {}, \
             \"p99_ns\": {}}}",
            name, p.requests, p.requests_per_sec, p.p50_ns, p.p99_ns
        );
    }
    let mut s = String::from("{\n");
    phase(&mut s, "victim_solo", &r.victim_solo);
    s.push_str(",\n");
    phase(&mut s, "victim_noisy_neighbor", &r.victim_noisy);
    s.push_str(",\n");
    let _ = writeln!(s, "  \"noisy_served\": {},", r.noisy_served);
    let _ = writeln!(s, "  \"noisy_rejected\": {},", r.noisy_rejected);
    let _ = writeln!(s, "  \"delta_repair_secs\": {:.6},", r.delta_repair_secs);
    let _ = writeln!(s, "  \"full_rebuild_secs\": {:.6},", r.full_rebuild_secs);
    let _ = writeln!(s, "  \"repair_speedup\": {:.2},", r.repair_speedup);
    let _ = writeln!(s, "  \"repaired_shards\": {},", r.repaired_shards);
    let _ = writeln!(s, "  \"total_shards\": {},", r.total_shards);
    let _ = writeln!(s, "  \"cached_allocs_per_request\": {}", r.cached_allocs_per_request);
    s.push_str("}\n");
    s
}
