//! Method registry: builds any of the paper's seven methods behind the
//! uniform [`CompletionModel`] interface.

use gcwc::{AGcwcModel, CompletionModel, GcwcModel, ModelConfig, OutputKind};
use gcwc_baselines::{
    CnnModel, DrConfig, DrModel, GpConfig, GpModel, HaModel, LsmConfig, LsmModel, RfConfig, RfModel,
};
use gcwc_traffic::NetworkInstance;

use crate::profile::{DatasetKind, Profile};

/// The methods compared in Tables IV–XIII.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// Historical average (the reference; not a table column).
    Ha,
    /// Gaussian-process regression.
    Gp,
    /// Random-forest regression.
    Rf,
    /// Latent space model (graph-regularised NMF).
    Lsm,
    /// Classical CNN.
    Cnn,
    /// Diffusion convolutional recurrent network.
    Dr,
    /// The paper's basic model.
    Gcwc,
    /// The paper's context-aware model.
    AGcwc,
}

impl Method {
    /// Column header.
    pub fn name(self) -> &'static str {
        match self {
            Method::Ha => "HA",
            Method::Gp => "GP",
            Method::Rf => "RF",
            Method::Lsm => "LSM",
            Method::Cnn => "CNN",
            Method::Dr => "DR",
            Method::Gcwc => "GCWC",
            Method::AGcwc => "A-GCWC",
        }
    }

    /// The columns of the histogram tables (IV–XI), in paper order.
    pub fn hist_columns() -> &'static [Method] {
        &[Method::Gp, Method::Rf, Method::Lsm, Method::Cnn, Method::Dr, Method::Gcwc, Method::AGcwc]
    }

    /// The columns of the MAPE tables (XII–XIII), in paper order.
    pub fn avg_columns() -> &'static [Method] {
        &[Method::Lsm, Method::Cnn, Method::Dr, Method::Gcwc, Method::AGcwc]
    }
}

/// The Table III model configuration for a dataset/output pair, with the
/// profile's epoch budget applied.
pub fn model_config(kind: DatasetKind, output: OutputKind, profile: &Profile) -> ModelConfig {
    let base = match (kind, output) {
        (DatasetKind::Highway, OutputKind::Histogram) => ModelConfig::hw_hist(),
        (DatasetKind::Highway, OutputKind::Average) => ModelConfig::hw_avg(),
        (DatasetKind::City, OutputKind::Histogram) => ModelConfig::ci_hist(),
        (DatasetKind::City, OutputKind::Average) => ModelConfig::ci_avg(),
    };
    base.with_epochs(profile.epochs_for(kind))
}

/// Builds an unfitted model.
pub fn make_model(
    method: Method,
    instance: &NetworkInstance,
    kind: DatasetKind,
    m: usize,
    output: OutputKind,
    profile: &Profile,
    seed: u64,
) -> Box<dyn CompletionModel> {
    let cfg = model_config(kind, output, profile);
    match method {
        Method::Ha => Box::new(HaModel::new()),
        Method::Gp => Box::new(GpModel::new(
            instance.graph.clone(),
            output,
            GpConfig { seed, ..GpConfig::default() },
        )),
        Method::Rf => Box::new(RfModel::new(
            instance.graph.clone(),
            output,
            RfConfig { seed, ..RfConfig::default() },
        )),
        Method::Lsm => Box::new(LsmModel::new(
            instance.graph.clone(),
            output,
            LsmConfig { seed, ..LsmConfig::default() },
        )),
        Method::Cnn => Box::new(CnnModel::new(instance.num_edges(), m, cfg, seed)),
        Method::Dr => Box::new(DrModel::new(
            &instance.graph,
            m,
            output,
            DrConfig { epochs: profile.epochs_for(kind), ..DrConfig::default() },
            seed,
        )),
        Method::Gcwc => Box::new(GcwcModel::new(&instance.graph, m, cfg, seed)),
        Method::AGcwc => {
            Box::new(AGcwcModel::new(&instance.graph, m, profile.intervals_per_day, cfg, seed))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcwc_traffic::generators;

    #[test]
    fn every_method_constructs() {
        let hw = generators::highway_tollgate(1);
        let profile = Profile::smoke();
        for &m in Method::hist_columns() {
            let model =
                make_model(m, &hw, DatasetKind::Highway, 8, OutputKind::Histogram, &profile, 1);
            assert_eq!(model.name(), m.name());
        }
    }

    #[test]
    fn avg_columns_match_paper() {
        let names: Vec<&str> = Method::avg_columns().iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["LSM", "CNN", "DR", "GCWC", "A-GCWC"]);
    }

    #[test]
    fn config_selection() {
        let p = Profile::smoke();
        let hw = model_config(DatasetKind::Highway, OutputKind::Histogram, &p);
        assert_eq!(hw.conv_layers[0].filters, 16);
        assert_eq!(hw.epochs, p.epochs);
        let ci = model_config(DatasetKind::City, OutputKind::Histogram, &p);
        assert_eq!(ci.conv_layers[0].filters, 8);
    }
}
