//! Regenerates the paper's result tables (IV–XIII) as formatted text.

use gcwc::TaskKind;

use crate::harness::{evaluate_average, evaluate_hist, make_bundle, Bundle};
use crate::methods::Method;
use crate::profile::{DatasetKind, Profile};

/// Which metric a histogram table reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HistMetric {
    /// Mean KL-divergence ratio (lower better).
    Mklr,
    /// Fraction of likelihood ratio (higher better).
    Flr,
}

/// A rendered table: header + one row per removal ratio.
#[derive(Clone, Debug)]
pub struct Table {
    /// Paper artefact name, e.g. "Table IV".
    pub title: String,
    /// Column names (first is "rm").
    pub columns: Vec<String>,
    /// `rows[i] = (rm, values per method)`.
    pub rows: Vec<(f64, Vec<f64>)>,
}

impl Table {
    /// Formats the table in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{}\n", self.title));
        out.push_str(&format!("{:>4}", "rm"));
        for c in &self.columns[1..] {
            out.push_str(&format!("{c:>9}"));
        }
        out.push('\n');
        for (rm, vals) in &self.rows {
            out.push_str(&format!("{rm:>4.1}"));
            for v in vals {
                out.push_str(&format!("{v:>9.2}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Runs the paired MKLR + FLR tables for one (dataset, task) setting —
/// both metrics come from the same fitted models, so Tables IV/VI,
/// V/VII, VIII/X and IX/XI are produced in one sweep.
pub fn hist_table_pair(
    mklr_title: &str,
    flr_title: &str,
    kind: DatasetKind,
    task: TaskKind,
    profile: &Profile,
    bundle: &Bundle,
) -> (Table, Table) {
    let methods = Method::hist_columns();
    let mut mklr_rows = Vec::new();
    let mut flr_rows = Vec::new();
    for &rm in &profile.removal_ratios {
        let mut mklr_vals = Vec::with_capacity(methods.len());
        let mut flr_vals = Vec::with_capacity(methods.len());
        for &m in methods {
            let scores = evaluate_hist(bundle, kind, task, m, rm, profile);
            mklr_vals.push(scores.mklr);
            flr_vals.push(scores.flr);
            eprintln!("  [{mklr_title}] rm={rm:.1} {} done", m.name());
        }
        mklr_rows.push((rm, mklr_vals));
        flr_rows.push((rm, flr_vals));
    }
    let mut columns = vec!["rm".to_owned()];
    columns.extend(methods.iter().map(|m| m.name().to_owned()));
    (
        Table { title: mklr_title.to_owned(), columns: columns.clone(), rows: mklr_rows },
        Table { title: flr_title.to_owned(), columns, rows: flr_rows },
    )
}

/// Runs one MKLR or FLR table (Tables IV–XI).
pub fn hist_table(
    title: &str,
    kind: DatasetKind,
    task: TaskKind,
    metric: HistMetric,
    profile: &Profile,
    bundle: &Bundle,
) -> Table {
    let methods = Method::hist_columns();
    let mut rows = Vec::new();
    for &rm in &profile.removal_ratios {
        let mut vals = Vec::with_capacity(methods.len());
        for &m in methods {
            let scores = evaluate_hist(bundle, kind, task, m, rm, profile);
            vals.push(match metric {
                HistMetric::Mklr => scores.mklr,
                HistMetric::Flr => scores.flr,
            });
            eprintln!("  [{title}] rm={rm:.1} {} done", m.name());
        }
        rows.push((rm, vals));
    }
    let mut columns = vec!["rm".to_owned()];
    columns.extend(methods.iter().map(|m| m.name().to_owned()));
    Table { title: title.to_owned(), columns, rows }
}

/// Runs all of Tables IV–XIII with shared evaluations (each
/// dataset/task pair is swept once, feeding its MKLR and FLR tables),
/// invoking `emit` as soon as each table is ready so long runs stream
/// their results.
pub fn for_each_table(profile: &Profile, mut emit: impl FnMut(&Table)) {
    let hw = make_bundle(DatasetKind::Highway, profile);
    let ci = make_bundle(DatasetKind::City, profile);
    let pairs: [(&str, &str, DatasetKind, TaskKind, &Bundle); 4] = [
        (
            "Table IV: MKLR, HW, Estimation",
            "Table VI: FLR, HW, Estimation",
            DatasetKind::Highway,
            TaskKind::Estimation,
            &hw,
        ),
        (
            "Table V: MKLR, CI, Estimation",
            "Table VII: FLR, CI, Estimation",
            DatasetKind::City,
            TaskKind::Estimation,
            &ci,
        ),
        (
            "Table VIII: MKLR, HW, Prediction",
            "Table X: FLR, HW, Prediction",
            DatasetKind::Highway,
            TaskKind::Prediction,
            &hw,
        ),
        (
            "Table IX: MKLR, CI, Prediction",
            "Table XI: FLR, CI, Prediction",
            DatasetKind::City,
            TaskKind::Prediction,
            &ci,
        ),
    ];
    for (mt, ft, kind, task, bundle) in pairs {
        let (m, f) = hist_table_pair(mt, ft, kind, task, profile, bundle);
        emit(&m);
        emit(&f);
    }
    emit(&mape_table("Table XII: MAPE %, HW, Average", DatasetKind::Highway, profile, &hw));
    emit(&mape_table("Table XIII: MAPE %, CI, Average", DatasetKind::City, profile, &ci));
}

/// Collects all of Tables IV–XIII (see [`for_each_table`]).
pub fn run_all_tables(profile: &Profile) -> Vec<Table> {
    let mut out = Vec::new();
    for_each_table(profile, |t| out.push(t.clone()));
    out
}

/// Runs one MAPE table (Tables XII–XIII).
pub fn mape_table(title: &str, kind: DatasetKind, profile: &Profile, bundle: &Bundle) -> Table {
    let methods = Method::avg_columns();
    let mut rows = Vec::new();
    for &rm in &profile.removal_ratios {
        let mut vals = Vec::with_capacity(methods.len());
        for &m in methods {
            vals.push(evaluate_average(bundle, kind, m, rm, profile));
            eprintln!("  [{title}] rm={rm:.1} {} done", m.name());
        }
        rows.push((rm, vals));
    }
    let mut columns = vec!["rm".to_owned()];
    columns.extend(methods.iter().map(|m| m.name().to_owned()));
    Table { title: title.to_owned(), columns, rows }
}

/// The full catalogue of tables, keyed by the exp_runner subcommand.
pub fn run_table(id: &str, profile: &Profile) -> Option<Table> {
    let spec: (&str, DatasetKind, Option<(TaskKind, HistMetric)>) = match id {
        "table4" => (
            "Table IV: MKLR, HW, Estimation",
            DatasetKind::Highway,
            Some((TaskKind::Estimation, HistMetric::Mklr)),
        ),
        "table5" => (
            "Table V: MKLR, CI, Estimation",
            DatasetKind::City,
            Some((TaskKind::Estimation, HistMetric::Mklr)),
        ),
        "table6" => (
            "Table VI: FLR, HW, Estimation",
            DatasetKind::Highway,
            Some((TaskKind::Estimation, HistMetric::Flr)),
        ),
        "table7" => (
            "Table VII: FLR, CI, Estimation",
            DatasetKind::City,
            Some((TaskKind::Estimation, HistMetric::Flr)),
        ),
        "table8" => (
            "Table VIII: MKLR, HW, Prediction",
            DatasetKind::Highway,
            Some((TaskKind::Prediction, HistMetric::Mklr)),
        ),
        "table9" => (
            "Table IX: MKLR, CI, Prediction",
            DatasetKind::City,
            Some((TaskKind::Prediction, HistMetric::Mklr)),
        ),
        "table10" => (
            "Table X: FLR, HW, Prediction",
            DatasetKind::Highway,
            Some((TaskKind::Prediction, HistMetric::Flr)),
        ),
        "table11" => (
            "Table XI: FLR, CI, Prediction",
            DatasetKind::City,
            Some((TaskKind::Prediction, HistMetric::Flr)),
        ),
        "table12" => ("Table XII: MAPE %, HW, Average", DatasetKind::Highway, None),
        "table13" => ("Table XIII: MAPE %, CI, Average", DatasetKind::City, None),
        _ => return None,
    };
    let (title, kind, hist) = spec;
    let bundle = make_bundle(kind, profile);
    Some(match hist {
        Some((task, metric)) => hist_table(title, kind, task, metric, profile, &bundle),
        None => mape_table(title, kind, profile, &bundle),
    })
}

/// All table ids in paper order.
pub const ALL_TABLES: [&str; 10] = [
    "table4", "table5", "table6", "table7", "table8", "table9", "table10", "table11", "table12",
    "table13",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_layout() {
        let t = Table {
            title: "Table T".into(),
            columns: vec!["rm".into(), "GP".into(), "GCWC".into()],
            rows: vec![(0.5, vec![1.0, 0.43]), (0.6, vec![1.01, 0.44])],
        };
        let s = t.render();
        assert!(s.contains("Table T"));
        assert!(s.contains("GCWC"));
        assert!(s.contains("0.43"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn unknown_table_id_is_none() {
        assert!(run_table("table99", &Profile::smoke()).is_none());
    }

    #[test]
    fn smoke_table4_runs_end_to_end() {
        let mut profile = Profile::smoke();
        profile.removal_ratios = vec![0.5];
        let t = run_table("table4", &profile).unwrap();
        assert_eq!(t.rows.len(), 1);
        assert_eq!(t.rows[0].1.len(), Method::hist_columns().len());
        assert!(t.rows[0].1.iter().all(|v| v.is_finite()));
    }
}
