//! Pins the zero-allocation steady state of the training hot path.
//!
//! Installs the counting global allocator and drives the exact
//! per-sample training step of `run_training` (tape reset → corrupted
//! input → encoder forward → KL loss → backward → merge → Adam) with
//! reused workspaces. The first two steps warm the buffer pool (the
//! cold step fills it; the first reset parks what the cold step grew);
//! every later step must perform **zero** heap allocations.

use gcwc::model::Encoder;
use gcwc::task::corrupt_input_pooled;
use gcwc::train::run_training;
use gcwc::{build_samples, ModelConfig, TaskKind, TrainSample};
use gcwc_bench::allocs::{count_allocs, CountingAlloc};
use gcwc_linalg::rng::seeded;
use gcwc_linalg::Threads;
use gcwc_nn::{Adam, GradBuffer, ParamStore, Tape};
use gcwc_traffic::{generators, simulate, HistogramSpec, SimConfig};
use rand::Rng;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn tiny_samples() -> (gcwc_traffic::NetworkInstance, Vec<TrainSample>) {
    let hw = generators::highway_tollgate(1);
    let sim = SimConfig {
        days: 2,
        intervals_per_day: 16,
        records_per_interval: 10.0,
        ..Default::default()
    };
    let data = simulate(&hw, HistogramSpec::hist8(), &sim);
    let ds = data.to_dataset(0.5, 5, 11);
    let idx: Vec<usize> = (0..ds.len()).collect();
    let samples = build_samples(&ds, &idx, TaskKind::Estimation, 0);
    (hw, samples)
}

/// One full GCWC training step into reused workspaces — the exact body
/// `run_training` executes per sample in its steady state.
#[allow(clippy::too_many_arguments)]
fn training_step(
    enc: &Encoder,
    store: &mut ParamStore,
    adam: &mut Adam,
    tape: &mut Tape,
    buffer: &mut GradBuffer,
    sample: &TrainSample,
    row_dropout: f64,
    seed: u64,
) {
    store.zero_grads();
    tape.reset();
    buffer.reset();
    let mut rng = seeded(seed);
    let (input, flags) = corrupt_input_pooled(
        &sample.input,
        &sample.context.row_flags,
        row_dropout,
        &mut rng,
        tape.pool_mut(),
    );
    let pred = enc.output(tape, store, &input, true, &mut rng);
    tape.pool_mut().give(input);
    tape.pool_mut().give_vec(flags);
    let loss = tape.kl_loss_masked_ref(pred, &sample.label, &sample.label_mask, 1e-6);
    tape.backward(loss, buffer);
    buffer.merge_into(store);
    store.scale_grads(1.0);
    adam.step(store);
}

#[test]
fn steady_state_training_step_performs_zero_allocations() {
    gcwc_linalg::parallel::set_global_threads(1);
    let (hw, samples) = tiny_samples();
    let cfg = ModelConfig::hw_hist();
    let mut store = ParamStore::new();
    let mut init_rng = seeded(3);
    let enc = Encoder::new(&hw.graph, 8, &cfg, &mut store, &mut init_rng);
    let mut adam = Adam::new(&store, cfg.optim);
    let mut tape = Tape::new();
    let mut buffer = GradBuffer::new();
    let mut master = seeded(7);

    let mut cold = 0u64;
    for step in 0..8usize {
        let sample = &samples[step % samples.len()];
        let seed: u64 = master.random();
        let (_, allocs) = count_allocs(|| {
            training_step(
                &enc,
                &mut store,
                &mut adam,
                &mut tape,
                &mut buffer,
                sample,
                cfg.row_dropout,
                seed,
            );
        });
        if step < 2 {
            cold += allocs;
        } else {
            assert_eq!(
                allocs, 0,
                "steady-state training step {step} performed {allocs} heap allocations"
            );
        }
    }
    // The cold step pays for the whole pool; reusing it must save at
    // least 5× per step (trivially true once the steady state is zero,
    // but the cold count documents what reuse actually avoids).
    assert!(cold >= 5, "cold step allocated only {cold} times — counter not active?");

    // A step through *fresh* workspaces re-pays the pool warm-up: this
    // is what every step cost before buffers were reused.
    let sample = &samples[0];
    let seed: u64 = master.random();
    let (_, fresh) = count_allocs(|| {
        let mut tape = Tape::new();
        let mut buffer = GradBuffer::new();
        training_step(
            &enc,
            &mut store,
            &mut adam,
            &mut tape,
            &mut buffer,
            sample,
            cfg.row_dropout,
            seed,
        );
    });
    assert!(fresh >= 5, "fresh-workspace step allocated {fresh} times; expected ≥ 5× steady (0)");
}

#[test]
fn longer_trainings_do_not_allocate_more_per_epoch() {
    // End-to-end pin through `run_training` itself: once the first
    // epochs have warmed every workspace, additional epochs must add
    // nothing but the per-epoch loss bookkeeping (a few `Vec` growth
    // reallocations at most).
    gcwc_linalg::parallel::set_global_threads(1);
    let (hw, samples) = tiny_samples();
    let samples = &samples[..6.min(samples.len())];
    let cfg = ModelConfig::hw_hist();

    let run = |epochs: usize| -> u64 {
        let mut store = ParamStore::new();
        let mut init_rng = seeded(3);
        let enc = Encoder::new(&hw.graph, 8, &cfg, &mut store, &mut init_rng);
        let mut rng = seeded(9);
        let (_, allocs) = count_allocs(|| {
            run_training(
                &mut store,
                cfg.optim,
                epochs,
                cfg.batch_size,
                Threads::fixed(1),
                samples,
                &mut rng,
                |tape, store, sample, rng| {
                    let (input, flags) = corrupt_input_pooled(
                        &sample.input,
                        &sample.context.row_flags,
                        cfg.row_dropout,
                        rng,
                        tape.pool_mut(),
                    );
                    let pred = enc.output(tape, store, &input, true, rng);
                    tape.pool_mut().give(input);
                    tape.pool_mut().give_vec(flags);
                    tape.kl_loss_masked_ref(pred, &sample.label, &sample.label_mask, 1e-6)
                },
            )
            .unwrap();
        });
        allocs
    };

    let short = run(2);
    let long = run(20);
    let extra = long.saturating_sub(short);
    assert!(
        extra <= 12,
        "18 extra epochs performed {extra} heap allocations (short={short}, long={long})"
    );
}

#[test]
fn dense_and_csr_kernels_are_allocation_free_in_both_tiers() {
    // Every `_into` fast path must stay heap-free regardless of which
    // kernel tier serves it — the tiled tier's blocking works entirely
    // in registers and the caller's buffers, and the CSR bucket order
    // is precomputed at construction.
    use gcwc_linalg::tile::{with_tier, KernelTier};
    use gcwc_linalg::{CsrMatrix, Matrix};
    gcwc_linalg::parallel::set_global_threads(1);
    let n = 301;
    let mut rng = seeded(5);
    let a = Matrix::from_fn(n, n, |_, _| rng.random::<f64>() - 0.5);
    let b = Matrix::from_fn(n, n, |_, _| rng.random::<f64>() - 0.5);
    let x = Matrix::from_fn(n, 8, |_, _| rng.random::<f64>() - 0.5);
    let prev = Matrix::from_fn(n, 8, |_, _| 0.25);
    let lap = CsrMatrix::from_triplets(
        n,
        n,
        (0..n).flat_map(|i| [(i, (i + 1) % n, 1.0), (i, (i + 5) % n, 0.5), (i, i, -1.5)]),
    );
    let mut out_nn = Matrix::zeros(n, n);
    let mut out_x = Matrix::zeros(n, 8);
    let mut acc = Matrix::zeros(n, 8);
    // One warm-up call caches the tier resolution: the first read of a
    // set `GCWC_KERNEL_TIER` allocates the env-var string, once.
    a.matmul_into(&b, &mut out_nn);
    for tier in [KernelTier::Naive, KernelTier::Tiled] {
        with_tier(tier, || {
            let (_, allocs) = count_allocs(|| {
                a.matmul_into(&b, &mut out_nn);
                a.matmul_nt_into(&b, &mut out_nn);
                a.matmul_tn_into(&b, &mut out_nn);
                lap.matmul_dense_into(&x, &mut out_x);
                lap.cheb_step_into(&x, &prev, &mut out_x);
                lap.axpby(2.0, &x, -1.0, &mut acc);
                lap.clenshaw_step(&prev, &x, 0.5, &mut acc);
            });
            assert_eq!(allocs, 0, "kernel allocations in tier {tier:?}");
        });
    }
}
