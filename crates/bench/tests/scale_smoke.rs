//! Smoke coverage for the scale sweep (`exp_runner scale-sweep`).
//!
//! Two pins:
//! 1. the downsampled ×10 sweep produces a `BENCH_scale.json` with
//!    every schema field present and sane, and the GCWC rows hold the
//!    steady-state training step at **zero** heap allocations (the
//!    counting allocator below makes that a real measurement);
//! 2. training under the tiled kernel tier reproduces the naive
//!    checkpoint byte-for-byte at n = 860 — the tier changes
//!    wall-clock time only, never a single bit of the weights.
//!
//! The full sweep test is `#[ignore]`d: it takes minutes in debug
//! builds, so the CI `scale` job runs it in release (under both
//! `GCWC_KERNEL_TIER` forcings) instead of the tier-1 test pass.

use gcwc::{CompletionModel, GcwcModel, ModelConfig};
use gcwc_bench::allocs::CountingAlloc;
use gcwc_bench::scalesweep::{run, to_json, ScaleSweepConfig};
use gcwc_linalg::tile::{with_tier, KernelTier};
use gcwc_traffic::generators;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
#[ignore = "minutes in a debug build; the CI scale job runs it in release"]
fn smoke_sweep_writes_valid_schema() {
    gcwc_linalg::parallel::set_global_threads(1);
    let cfg = ScaleSweepConfig { scales: vec![10], steps: 2, serve_reqs: 2, seed: 42 };
    let report = run(&cfg);

    assert_eq!(report.matmul_n, 860);
    assert!(report.matmul_naive_ns > 0 && report.matmul_tiled_ns > 0);
    assert!(report.matmul_speedup.is_finite() && report.matmul_speedup > 0.0);

    assert_eq!(report.rows.len(), 2, "one GCWC and one GCWC-M2 row per scale");
    for row in &report.rows {
        assert_eq!(row.scale, 10);
        assert_eq!(row.edges, 1720);
        assert!(row.train_step_ns > 0);
        assert!(row.serve_p50_ns > 0 && row.serve_p50_ns <= row.serve_p99_ns);
        assert!(row.peak_rss_kb > 0, "VmHWM must be readable on Linux CI");
    }
    let gcwc_row = &report.rows[0];
    assert_eq!((gcwc_row.variant, gcwc_row.shards), ("GCWC", 1));
    assert_eq!(
        gcwc_row.allocs_per_step, 0,
        "steady-state training step must stay allocation-free at scale"
    );
    let m2 = &report.rows[1];
    assert_eq!((m2.variant, m2.shards), ("GCWC-M2", 2));

    let json = to_json(&report);
    for field in [
        "\"matmul_n\"",
        "\"matmul_naive_ns\"",
        "\"matmul_tiled_ns\"",
        "\"matmul_speedup\"",
        "\"rows\"",
        "\"scale\"",
        "\"edges\"",
        "\"variant\"",
        "\"shards\"",
        "\"train_step_ns\"",
        "\"serve_p50_ns\"",
        "\"serve_p99_ns\"",
        "\"peak_rss_kb\"",
        "\"allocs_per_step\"",
    ] {
        assert!(json.contains(field), "schema field {field} missing from {json}");
    }
    assert!(json.starts_with("{\n") && json.ends_with("}\n"));
}

#[test]
fn tiled_training_checkpoint_matches_naive_bitwise() {
    gcwc_linalg::parallel::set_global_threads(1);
    let base = generators::city_network(42);
    let graph = generators::scaled_city(&base.graph, 5); // 860 edges
    let n = graph.num_nodes();
    assert_eq!(n, 860);
    let samples = gcwc_bench::scalesweep::smoke_samples(n, 8, 2, 42);
    let cfg = ModelConfig::ci_hist().with_epochs(1).with_threads(1);

    let checkpoint = |tier: KernelTier, name: &str| -> Vec<u8> {
        with_tier(tier, || {
            let mut model = GcwcModel::new(&graph, 8, cfg.clone(), 42);
            model.fit(&samples);
            let path = std::env::temp_dir().join(format!("gcwc-scale-smoke-{name}.ckpt"));
            model.save(&path).expect("checkpoint save");
            let bytes = std::fs::read(&path).expect("checkpoint read");
            let _ = std::fs::remove_file(&path);
            bytes
        })
    };

    let naive = checkpoint(KernelTier::Naive, "naive");
    let tiled = checkpoint(KernelTier::Tiled, "tiled");
    assert!(!naive.is_empty());
    assert_eq!(naive, tiled, "tiers must train to byte-identical checkpoints");
}
