//! Pins the zero-allocation steady state of the serving hot path.
//!
//! Installs the counting global allocator and drives a `workers: 0`
//! engine through its deterministic inline path (send → process_queued
//! → recv → recycle). After warm-up — which fills the worker's
//! inference workspace, the client's spare buffers, and the cache —
//! every request must perform **zero** heap allocations, both on the
//! cache-hit path and on the pure-inference path (cache disabled).

use gcwc::{
    build_samples, AGcwcModel, CompletionModel, GcwcModel, ModelConfig, ShardedModel, TaskKind,
    TrainSample,
};
use gcwc_bench::allocs::{count_allocs, CountingAlloc};
use gcwc_graph::PartitionSet;
use gcwc_serve::{AnyModel, Client, Engine, EngineConfig, ModelRegistry};
use gcwc_traffic::{generators, simulate, HistogramSpec, SimConfig};
use std::sync::Arc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn tiny_setup() -> (gcwc_traffic::NetworkInstance, Vec<TrainSample>, AGcwcModel) {
    let hw = generators::highway_tollgate(1);
    let sim = SimConfig {
        days: 2,
        intervals_per_day: 16,
        records_per_interval: 10.0,
        ..Default::default()
    };
    let data = simulate(&hw, HistogramSpec::hist8(), &sim);
    let ds = data.to_dataset(0.5, 5, 11);
    let idx: Vec<usize> = (0..ds.len()).collect();
    let samples = build_samples(&ds, &idx, TaskKind::Estimation, 0);
    let mut model = AGcwcModel::new(&hw.graph, 8, 16, ModelConfig::hw_hist().with_epochs(2), 42);
    model.fit(&samples[..8]);
    (hw, samples, model)
}

fn make_engine(cache_capacity: usize) -> (Arc<Engine>, Vec<TrainSample>) {
    gcwc_linalg::parallel::set_global_threads(1);
    let (hw, samples, model) = tiny_setup();
    let hw = Arc::new(hw);
    let factory_hw = Arc::clone(&hw);
    let registry = Arc::new(ModelRegistry::new(Box::new(move || {
        AnyModel::AGcwc(AGcwcModel::new(
            &factory_hw.graph,
            8,
            16,
            ModelConfig::hw_hist().with_epochs(2),
            0,
        ))
    })));
    registry.install(AnyModel::AGcwc(model));
    let engine = Arc::new(Engine::new(
        registry,
        EngineConfig { workers: 0, max_batch: 4, cache_capacity, ..Default::default() },
    ));
    (engine, samples)
}

/// A K=2 sharded engine with an N-replica group per shard, every slot
/// independently loaded from the trained shard checkpoints — the
/// replicated twin of [`make_engine`], for pinning that rendezvous
/// routing and per-replica health checks stay off the heap.
fn make_replicated_engine(
    cache_capacity: usize,
    replication: usize,
) -> (Arc<Engine>, Vec<TrainSample>) {
    gcwc_linalg::parallel::set_global_threads(1);
    let hw = generators::highway_tollgate(1);
    let sim = SimConfig {
        days: 2,
        intervals_per_day: 16,
        records_per_interval: 10.0,
        ..Default::default()
    };
    let data = simulate(&hw, HistogramSpec::hist8(), &sim);
    let ds = data.to_dataset(0.5, 5, 11);
    let idx: Vec<usize> = (0..ds.len()).collect();
    let samples = build_samples(&ds, &idx, TaskKind::Estimation, 0);
    let cfg = ModelConfig::hw_hist().with_epochs(2);
    let partition = Arc::new(PartitionSet::build(&hw.graph, 2));
    let mut sharded = ShardedModel::gcwc_on(Arc::clone(&partition), 8, cfg.clone(), 42);
    sharded.fit_shards(&samples[..8]);
    let dir = std::env::temp_dir().join("gcwc_serve_alloc_replica");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let (_, shards) = sharded.into_shards();
    let factories = (0..partition.num_partitions())
        .map(|k| {
            let graph = partition.partition(k).graph().clone();
            let cfg = cfg.clone();
            let f: Box<dyn Fn() -> AnyModel + Send + Sync> =
                Box::new(move || AnyModel::Gcwc(GcwcModel::new(&graph, 8, cfg.clone(), 0)));
            f
        })
        .collect();
    let registry = Arc::new(ModelRegistry::sharded_replicated(factories, &partition, replication));
    for (k, shard) in shards.iter().enumerate() {
        let path = dir.join(format!("alloc.shard{k}.ckpt"));
        shard.save(&path).expect("save checkpoint");
        registry.load_shard(k, &path).expect("load checkpoint");
    }
    let engine = Arc::new(Engine::new(
        registry,
        EngineConfig { workers: 0, max_batch: 4, cache_capacity, ..Default::default() },
    ));
    (engine, samples)
}

/// One inline round trip: the exact steady-state serving step.
fn request(engine: &Engine, client: &mut Client, sample: &TrainSample) {
    let mut input = client.input_buffer();
    input.copy_from(&sample.input);
    client.send(input, sample.context.time_of_day, sample.context.day_of_week).expect("send");
    engine.process_queued();
    let completion = client.recv().expect("recv");
    client.recycle(completion);
}

fn assert_steady_state_is_alloc_free(cache_capacity: usize, label: &str) {
    let (engine, samples) = make_engine(cache_capacity);
    assert_engine_steady_state_is_alloc_free(engine, samples, label);
}

fn assert_engine_steady_state_is_alloc_free(
    engine: Arc<Engine>,
    samples: Vec<TrainSample>,
    label: &str,
) {
    let mut client = engine.client();
    let pool = &samples[..4.min(samples.len())];

    // Warm-up: fill the inference workspace, the client's spare
    // buffers, and (when enabled) the cache entries for every context
    // this test replays.
    for _ in 0..3 {
        for s in pool {
            request(&engine, &mut client, s);
        }
    }

    for (step, s) in pool.iter().cycle().take(16).enumerate() {
        let (_, allocs) = count_allocs(|| request(&engine, &mut client, s));
        assert_eq!(
            allocs, 0,
            "steady-state {label} request {step} performed {allocs} heap allocations"
        );
    }
    engine.shutdown();
}

#[test]
fn steady_state_cache_hit_requests_perform_zero_allocations() {
    assert_steady_state_is_alloc_free(256, "cache-hit");
}

#[test]
fn steady_state_inference_requests_perform_zero_allocations() {
    // cache_capacity 0 disables the cache entirely: every request runs
    // the tape-free batched forward pass.
    assert_steady_state_is_alloc_free(0, "pure-inference");
}

#[test]
fn replicated_steady_state_cache_hit_requests_perform_zero_allocations() {
    // Rendezvous routing is pure integer math and the per-replica
    // breaker check is non-mutating, so an N=2 group must serve the
    // cached steady state without touching the heap.
    let (engine, samples) = make_replicated_engine(256, 2);
    assert_eq!(engine.stats().replicas, 2);
    assert_engine_steady_state_is_alloc_free(engine, samples, "replicated cache-hit");
}

#[test]
fn replicated_steady_state_inference_requests_perform_zero_allocations() {
    let (engine, samples) = make_replicated_engine(0, 2);
    assert_engine_steady_state_is_alloc_free(engine, samples, "replicated pure-inference");
}

#[test]
fn cold_requests_do_allocate() {
    // Sanity check that the counter is live: the first request through
    // a fresh engine pays for the workspace and buffers.
    let (engine, samples) = make_engine(0);
    let mut client = engine.client();
    let (_, allocs) = count_allocs(|| request(&engine, &mut client, &samples[0]));
    assert!(allocs >= 5, "cold request allocated only {allocs} times — counter not active?");
    engine.shutdown();
}
