//! Pins the zero-allocation steady state of the ingest intake path.
//!
//! Installs the counting global allocator and drives the pipeline's
//! exact per-record hot path (durable log append + window fold). After
//! a warm-up slot has sized the log's active buffer and the window's
//! per-edge accumulators — which are recycled across slots — every
//! mid-slot record must perform **zero** heap allocations. The only
//! allowed allocation points are the ones the design names: opening a
//! slot (one `BTreeMap` node) and publishing a full segment (one file
//! write through the reused scratch string).

use gcwc_bench::allocs::{count_allocs, CountingAlloc};
use gcwc_ingest::{Aggregator, Pipeline, RecordLog, SpeedRecord, WindowConfig};
use gcwc_traffic::HistogramSpec;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const EDGES: usize = 16;
const PER_EDGE: usize = 32;
const SLOT_SECS: u64 = 100;

fn cfg() -> WindowConfig {
    WindowConfig {
        num_edges: EDGES,
        spec: HistogramSpec::hist4(),
        slot_secs: SLOT_SECS,
        slots_per_day: 8,
        grace_secs: SLOT_SECS,
        min_records: 2,
        retain_slots: 16,
    }
}

/// One opener record on edge 0: pays the slot's `BTreeMap` node (the
/// one allocation the design budgets per slot, not per record).
fn open_slot(pipe: &mut Pipeline, slot: u64) {
    pipe.ingest(SpeedRecord { edge: 0, timestamp: slot * SLOT_SECS, speed: 10.0 }).unwrap();
}

fn feed_slot(pipe: &mut Pipeline, slot: u64) {
    for i in 0..PER_EDGE {
        for edge in 0..EDGES as u32 {
            pipe.ingest(SpeedRecord {
                edge,
                timestamp: slot * SLOT_SECS + (i as u64 % SLOT_SECS),
                speed: 10.0 + i as f64,
            })
            .unwrap();
        }
    }
}

#[test]
fn steady_state_intake_performs_zero_allocations_per_record() {
    let dir = std::env::temp_dir().join(format!("gcwc-ingest-alloc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // Segment capacity larger than the measured batch: publishing is a
    // separate (file-writing) path, outside the per-record budget.
    let mut pipe = Pipeline::new(RecordLog::open(&dir, 1 << 20).unwrap(), Aggregator::new(cfg()));

    // Warm-up: slot 0 (same shape as the measured slot) sizes every
    // per-edge accumulator, sealing recycles them into the free pool.
    open_slot(&mut pipe, 0);
    feed_slot(&mut pipe, 0);
    pipe.seal_all().unwrap();
    let _ = pipe.take_sealed();

    // Slot 1 re-uses the recycled accumulator. The opener stays outside
    // the measured window; every mid-slot record after it must be
    // allocation-free.
    open_slot(&mut pipe, 1);
    let (_, allocs) = count_allocs(|| feed_slot(&mut pipe, 1));
    assert_eq!(
        allocs,
        0,
        "steady-state intake performed {allocs} heap allocations over {} records",
        EDGES * PER_EDGE
    );

    let _ = std::fs::remove_dir_all(&dir);
}
