//! DR baseline (§VI-A.5, baseline 6): diffusion convolutional recurrent
//! neural network (Li et al., ICLR'18 \[19\]).
//!
//! A GRU whose matrix multiplications are replaced by diffusion
//! convolutions over random-walk powers of the edge graph, consuming the
//! sequence of preceding weight matrices and emitting the completed
//! matrix for the target interval. This is the state of the art for
//! deterministic traffic prediction with dense data; the paper shows it
//! propagates well on small graphs but weakens on large ones and under
//! sparseness.

use std::sync::Arc;

use gcwc::model::gcwc::LOSS_EPS;
use gcwc::train::{run_training, TrainReport};
use gcwc::{CompletionModel, OutputKind, TrainSample};
use gcwc_graph::{EdgeGraph, PolyBasis, RandomWalkBasis};
use gcwc_linalg::rng::seeded;
use gcwc_linalg::Matrix;
use gcwc_nn::{Dense, NodeId, OptimConfig, ParamId, ParamStore, Tape};
use rand::rngs::StdRng;
use rand::Rng;

/// Configuration of the DR baseline.
#[derive(Clone, Copy, Debug)]
pub struct DrConfig {
    /// GRU hidden units per node.
    pub hidden: usize,
    /// Diffusion order `K` (taps `I, P, …, P^{K−1}`).
    pub diffusion_order: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Optimiser settings.
    pub optim: OptimConfig,
}

impl Default for DrConfig {
    fn default() -> Self {
        Self {
            hidden: 16,
            diffusion_order: 3,
            epochs: 25,
            batch_size: 20,
            optim: OptimConfig {
                learning_rate: 6.4e-3,
                lr_decay: 0.97,
                weight_decay: 0.001,
                grad_clip: 5.0,
            },
        }
    }
}

/// One diffusion-convolutional gate: `σ/tanh(Σ_k P^k [X|H] Θ_k + b)`.
struct Gate {
    thetas: Vec<ParamId>,
    bias: ParamId,
}

impl Gate {
    fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        k: usize,
        input: usize,
        hidden: usize,
    ) -> Self {
        let thetas = (0..k)
            .map(|t| {
                store.add(
                    format!("{name}.theta{t}"),
                    gcwc_nn::init::glorot_uniform(rng, input, hidden),
                )
            })
            .collect();
        let bias = store.add(format!("{name}.bias"), Matrix::zeros(1, hidden));
        Self { thetas, bias }
    }

    fn apply(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        x: NodeId,
        basis: &Arc<dyn PolyBasis>,
    ) -> NodeId {
        let thetas: Vec<NodeId> = self.thetas.iter().map(|&t| tape.param(store, t)).collect();
        let conv = tape.poly_conv(x, &thetas, Arc::clone(basis));
        let bias = tape.param(store, self.bias);
        tape.add_row_broadcast(conv, bias)
    }
}

/// The diffusion convolutional recurrent model.
pub struct DrModel {
    store: ParamStore,
    basis: Arc<dyn PolyBasis>,
    gate_r: Gate,
    gate_u: Gate,
    gate_c: Gate,
    out_fc: Dense,
    cfg: DrConfig,
    output: OutputKind,
    n: usize,
    rng: StdRng,
    last_report: TrainReport,
}

impl DrModel {
    /// Creates an untrained DR model over `graph` with `m` buckets.
    pub fn new(graph: &EdgeGraph, m: usize, output: OutputKind, cfg: DrConfig, seed: u64) -> Self {
        let mut rng = seeded(seed);
        let mut store = ParamStore::new();
        let n = graph.num_nodes();
        let basis: Arc<dyn PolyBasis> =
            Arc::new(RandomWalkBasis::from_adjacency(graph.adjacency(), cfg.diffusion_order));
        let input = m + cfg.hidden;
        let gate_r =
            Gate::new(&mut store, &mut rng, "dr.r", cfg.diffusion_order, input, cfg.hidden);
        let gate_u =
            Gate::new(&mut store, &mut rng, "dr.u", cfg.diffusion_order, input, cfg.hidden);
        let gate_c =
            Gate::new(&mut store, &mut rng, "dr.c", cfg.diffusion_order, input, cfg.hidden);
        let out_dim = match output {
            OutputKind::Histogram => m,
            OutputKind::Average => 1,
        };
        let out_fc = Dense::new(&mut store, &mut rng, "dr.out", cfg.hidden, out_dim);
        Self {
            store,
            basis,
            gate_r,
            gate_u,
            gate_c,
            out_fc,
            cfg,
            output,
            n,
            rng,
            last_report: TrainReport::default(),
        }
    }

    /// Training report of the last fit.
    pub fn last_report(&self) -> &TrainReport {
        &self.last_report
    }

    /// Runs the DCGRU over the sample's history plus current input and
    /// decodes the final hidden state.
    fn output_node(&self, tape: &mut Tape, store: &ParamStore, sample: &TrainSample) -> NodeId {
        let mut h = tape.constant(Matrix::zeros(self.n, self.cfg.hidden));
        let ones = tape.constant(Matrix::filled(self.n, self.cfg.hidden, 1.0));
        let steps: Vec<&Matrix> =
            sample.history.iter().chain(std::iter::once(&sample.input)).collect();
        for x in steps {
            let xn = tape.constant(x.clone());
            let cat = tape.hstack(&[xn, h]);
            let r_pre = self.gate_r.apply(tape, store, cat, &self.basis);
            let r = tape.sigmoid(r_pre);
            let u_pre = self.gate_u.apply(tape, store, cat, &self.basis);
            let u = tape.sigmoid(u_pre);
            let rh = tape.mul(r, h);
            let cat2 = tape.hstack(&[xn, rh]);
            let c_pre = self.gate_c.apply(tape, store, cat2, &self.basis);
            let c = tape.tanh(c_pre);
            let uh = tape.mul(u, h);
            let one_minus_u = tape.sub(ones, u);
            let uc = tape.mul(one_minus_u, c);
            h = tape.add(uh, uc);
        }
        let z = self.out_fc.apply(tape, store, h); // (n, out_dim)
        match self.output {
            OutputKind::Histogram => tape.softmax_rows(z),
            OutputKind::Average => tape.sigmoid(z),
        }
    }

    fn sample_loss(&self, tape: &mut Tape, store: &ParamStore, sample: &TrainSample) -> NodeId {
        let pred = self.output_node(tape, store, sample);
        match self.output {
            OutputKind::Histogram => {
                tape.kl_loss_masked(pred, sample.label.clone(), sample.label_mask.clone(), LOSS_EPS)
            }
            OutputKind::Average => {
                let mask = Matrix::from_vec(sample.label_mask.len(), 1, sample.label_mask.clone());
                tape.mse_masked(pred, sample.label.clone(), mask)
            }
        }
    }
}

impl CompletionModel for DrModel {
    fn name(&self) -> String {
        "DR".to_owned()
    }

    fn fit(&mut self, samples: &[TrainSample]) {
        let mut rng = seeded(self.rng.random());
        let mut store = std::mem::take(&mut self.store);
        let this: &Self = self;
        let report = run_training(
            &mut store,
            this.cfg.optim,
            this.cfg.epochs,
            this.cfg.batch_size,
            gcwc_linalg::Threads::auto(),
            samples,
            &mut rng,
            |tape, store, sample, _| this.sample_loss(tape, store, sample),
        );
        self.store = store;
        self.last_report = report.unwrap_or_else(|e| panic!("DR training failed: {e}"));
    }

    fn predict(&self, sample: &TrainSample) -> Matrix {
        let mut tape = Tape::new();
        let out = self.output_node(&mut tape, &self.store, sample);
        tape.value(out).clone()
    }

    fn num_params(&self) -> usize {
        self.store.num_scalars()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcwc::{build_samples, TaskKind};
    use gcwc_traffic::{generators, simulate, HistogramSpec, SimConfig};

    fn setup() -> (gcwc_traffic::NetworkInstance, Vec<TrainSample>) {
        let hw = generators::highway_tollgate(1);
        let sim = SimConfig {
            days: 1,
            intervals_per_day: 24,
            records_per_interval: 10.0,
            ..Default::default()
        };
        let data = simulate(&hw, HistogramSpec::hist8(), &sim);
        let ds = data.to_dataset(0.5, 5, 3);
        let idx: Vec<usize> = (0..ds.len()).collect();
        (hw, build_samples(&ds, &idx, TaskKind::Estimation, 3))
    }

    #[test]
    fn fit_reduces_loss_and_outputs_histograms() {
        let (hw, samples) = setup();
        let cfg = DrConfig { epochs: 6, ..Default::default() };
        let mut dr = DrModel::new(&hw.graph, 8, OutputKind::Histogram, cfg, 42);
        dr.fit(&samples);
        let losses = &dr.last_report().epoch_losses;
        assert!(losses.last().unwrap() < &losses[0], "losses {losses:?}");
        let pred = dr.predict(&samples[0]);
        assert_eq!(pred.shape(), (24, 8));
        for i in 0..24 {
            assert!((pred.row(i).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn history_affects_prediction() {
        let (hw, samples) = setup();
        let cfg = DrConfig { epochs: 4, ..Default::default() };
        let mut dr = DrModel::new(&hw.graph, 8, OutputKind::Histogram, cfg, 7);
        dr.fit(&samples[..12]);
        let mut altered = samples[5].clone();
        altered.history = vec![Matrix::zeros(24, 8); 3];
        let a = dr.predict(&samples[5]);
        let b = dr.predict(&altered);
        assert_ne!(a, b, "the recurrent state must depend on history");
    }

    #[test]
    fn average_head_outputs_column() {
        let (hw, _) = setup();
        let cfg = DrConfig { epochs: 2, ..Default::default() };
        let hw2 = generators::highway_tollgate(1);
        let sim = SimConfig { days: 1, intervals_per_day: 12, ..Default::default() };
        let data = simulate(&hw2, HistogramSpec::hist8(), &sim);
        let ds = data.to_dataset(0.5, 5, 3);
        let idx: Vec<usize> = (0..ds.len()).collect();
        let samples = build_samples(&ds, &idx, TaskKind::Average, 3);
        let mut dr = DrModel::new(&hw.graph, 8, OutputKind::Average, cfg, 1);
        dr.fit(&samples);
        let pred = dr.predict(&samples[0]);
        assert_eq!(pred.shape(), (24, 1));
        assert!(pred.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }
}
