//! Gaussian-process regression baseline (§VI-A.5, baseline 2).
//!
//! Exact GP regression with an RBF kernel on the shared cell features,
//! one GP per histogram bucket, fitted on a random subsample of training
//! cells (exact GPs are cubic in the training size). Predictions are
//! clipped and row-normalised into histograms.

use gcwc::{CompletionModel, OutputKind, TrainSample};
use gcwc_graph::EdgeGraph;
use gcwc_linalg::rng::{sample_indices, seeded};
use gcwc_linalg::{Cholesky, Matrix};

use crate::features::{cell_features, normalize_rows_to_histograms, training_pairs, NUM_FEATURES};

/// Configuration of the GP baseline.
#[derive(Clone, Copy, Debug)]
pub struct GpConfig {
    /// RBF length scale.
    pub length_scale: f64,
    /// Signal variance.
    pub signal_var: f64,
    /// Observation noise variance (added to the kernel diagonal).
    pub noise_var: f64,
    /// Maximum training points per bucket GP.
    pub max_points: usize,
    /// Subsampling seed.
    pub seed: u64,
}

impl Default for GpConfig {
    fn default() -> Self {
        Self { length_scale: 0.7, signal_var: 1.0, noise_var: 0.05, max_points: 250, seed: 17 }
    }
}

struct BucketGp {
    points: Vec<[f64; NUM_FEATURES]>,
    alpha: Vec<f64>,
    mean: f64,
}

/// The Gaussian-process regression model.
pub struct GpModel {
    graph: EdgeGraph,
    cfg: GpConfig,
    output: OutputKind,
    gps: Vec<BucketGp>,
}

impl GpModel {
    /// Creates an unfitted GP baseline over `graph`.
    pub fn new(graph: EdgeGraph, output: OutputKind, cfg: GpConfig) -> Self {
        Self { graph, cfg, output, gps: Vec::new() }
    }

    fn kernel(&self, a: &[f64; NUM_FEATURES], b: &[f64; NUM_FEATURES]) -> f64 {
        let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
        self.cfg.signal_var * (-d2 / (2.0 * self.cfg.length_scale * self.cfg.length_scale)).exp()
    }

    fn fit_bucket(&self, samples: &[TrainSample], bucket: usize) -> BucketGp {
        let (mut xs, mut ys) = training_pairs(samples, &self.graph, bucket);
        if xs.is_empty() {
            return BucketGp { points: Vec::new(), alpha: Vec::new(), mean: 0.0 };
        }
        if xs.len() > self.cfg.max_points {
            let mut rng = seeded(self.cfg.seed ^ bucket as u64);
            let keep = sample_indices(&mut rng, xs.len(), self.cfg.max_points);
            xs = keep.iter().map(|&i| xs[i]).collect();
            ys = keep.iter().map(|&i| ys[i]).collect();
        }
        let mean = ys.iter().sum::<f64>() / ys.len() as f64;
        let centred: Vec<f64> = ys.iter().map(|y| y - mean).collect();
        let k = Matrix::from_fn(xs.len(), xs.len(), |i, j| {
            self.kernel(&xs[i], &xs[j]) + if i == j { self.cfg.noise_var } else { 0.0 }
        });
        let chol = Cholesky::new(&k).expect("kernel + noise must be positive definite");
        let alpha = chol.solve(&centred);
        BucketGp { points: xs, alpha, mean }
    }

    fn predict_cell(&self, gp: &BucketGp, x: &[f64; NUM_FEATURES]) -> f64 {
        if gp.points.is_empty() {
            return gp.mean;
        }
        gp.mean + gp.points.iter().zip(&gp.alpha).map(|(p, &a)| a * self.kernel(p, x)).sum::<f64>()
    }
}

impl CompletionModel for GpModel {
    fn name(&self) -> String {
        "GP".to_owned()
    }

    fn fit(&mut self, samples: &[TrainSample]) {
        let buckets = samples.first().map_or(0, |s| s.label.cols());
        self.gps = (0..buckets).map(|b| self.fit_bucket(samples, b)).collect();
    }

    fn predict(&self, sample: &TrainSample) -> Matrix {
        assert!(!self.gps.is_empty(), "GP model must be fitted before predict");
        let n = sample.input.rows();
        let m = self.gps.len();
        let mut pred = Matrix::zeros(n, m);
        for e in 0..n {
            for (b, gp) in self.gps.iter().enumerate() {
                let x = cell_features(sample, &self.graph, e, b.min(sample.input.cols() - 1));
                pred[(e, b)] = self.predict_cell(gp, &x);
            }
        }
        match self.output {
            OutputKind::Histogram => normalize_rows_to_histograms(&mut pred),
            OutputKind::Average => pred.map_inplace(|v| v.clamp(0.0, 1.0)),
        }
        pred
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcwc::{build_samples, TaskKind};
    use gcwc_traffic::{generators, simulate, HistogramSpec, SimConfig};

    fn setup() -> (gcwc_traffic::NetworkInstance, Vec<TrainSample>) {
        let hw = generators::highway_tollgate(1);
        let sim = SimConfig { days: 1, intervals_per_day: 24, ..Default::default() };
        let data = simulate(&hw, HistogramSpec::hist4(), &sim);
        let ds = data.to_dataset(0.5, 5, 3);
        let idx: Vec<usize> = (0..ds.len()).collect();
        (hw, build_samples(&ds, &idx, TaskKind::Estimation, 0))
    }

    #[test]
    fn fit_predict_produces_histograms() {
        let (hw, samples) = setup();
        let mut gp = GpModel::new(hw.graph.clone(), OutputKind::Histogram, GpConfig::default());
        gp.fit(&samples[..16]);
        let pred = gp.predict(&samples[20]);
        assert_eq!(pred.shape(), (24, 4));
        for i in 0..24 {
            let s: f64 = pred.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "row {i} sums to {s}");
        }
    }

    #[test]
    fn interpolates_training_data_roughly() {
        // A GP with small noise should fit its own training targets.
        let (hw, samples) = setup();
        let cfg = GpConfig { noise_var: 1e-3, max_points: 100, ..Default::default() };
        let mut gp = GpModel::new(hw.graph.clone(), OutputKind::Histogram, cfg);
        // Pick a slice of samples with actual coverage (night intervals
        // can be fully uncovered).
        let covered: Vec<TrainSample> =
            samples.iter().filter(|s| s.label_mask.iter().sum::<f64>() > 3.0).cloned().collect();
        assert!(covered.len() >= 2, "need covered samples");
        gp.fit(&covered[..covered.len().min(6)]);
        let s = &covered[0];
        let pred = gp.predict(s);
        // On covered rows the prediction must be closer to the label
        // than the uniform distribution is, on average.
        let mut err_gp = 0.0;
        let mut err_uniform = 0.0;
        let mut count = 0;
        for e in 0..24 {
            if s.label_mask[e] > 0.0 {
                for b in 0..4 {
                    err_gp += (pred[(e, b)] - s.label[(e, b)]).abs();
                    err_uniform += (0.25 - s.label[(e, b)]).abs();
                }
                count += 1;
            }
        }
        assert!(count > 0);
        assert!(err_gp < err_uniform, "GP {err_gp} vs uniform {err_uniform}");
    }

    #[test]
    fn average_output_is_clamped() {
        let (hw, _) = setup();
        let sim = SimConfig { days: 1, intervals_per_day: 24, ..Default::default() };
        let data = simulate(&hw, HistogramSpec::hist4(), &sim);
        let ds = data.to_dataset(0.5, 5, 3);
        let idx: Vec<usize> = (0..ds.len()).collect();
        let samples = build_samples(&ds, &idx, TaskKind::Average, 0);
        let mut gp = GpModel::new(hw.graph.clone(), OutputKind::Average, GpConfig::default());
        gp.fit(&samples[..16]);
        let pred = gp.predict(&samples[20]);
        assert_eq!(pred.cols(), 1);
        assert!(pred.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }
}
