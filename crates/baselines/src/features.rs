//! Shared feature extraction for the per-bucket regression baselines
//! (GP and RF).
//!
//! The paper turns weight completion into `m` independent regression
//! problems ("we consider 8 individual regression problems", §VI-A.5).
//! For a target (edge, bucket) cell we expose the regressors a
//! road-network practitioner would use: calendar position, how much of
//! the edge's neighbourhood is observed, and the observed neighbourhood /
//! network mean of the target bucket.

use gcwc::TrainSample;
use gcwc_graph::EdgeGraph;

/// Number of features produced by [`cell_features`].
pub const NUM_FEATURES: usize = 6;

/// Features for the (edge `e`, bucket `b`) cell of a sample.
pub fn cell_features(
    sample: &TrainSample,
    graph: &EdgeGraph,
    e: usize,
    b: usize,
) -> [f64; NUM_FEATURES] {
    let ipd = sample.context.intervals_per_day as f64;
    let phase = 2.0 * std::f64::consts::PI * sample.context.time_of_day as f64 / ipd;
    let weekend = if sample.context.is_weekend() { 1.0 } else { 0.0 };

    let covered = |i: usize| sample.context.row_flags[i] > 0.0;
    let nbrs = graph.neighbors(e);
    let covered_nbrs: Vec<usize> = nbrs.iter().copied().filter(|&i| covered(i)).collect();
    let nbr_frac =
        if nbrs.is_empty() { 0.0 } else { covered_nbrs.len() as f64 / nbrs.len() as f64 };
    let nbr_mean = if covered_nbrs.is_empty() {
        0.0
    } else {
        covered_nbrs.iter().map(|&i| sample.input[(i, b)]).sum::<f64>() / covered_nbrs.len() as f64
    };
    let n = sample.input.rows();
    let covered_all: Vec<usize> = (0..n).filter(|&i| covered(i)).collect();
    let global_mean = if covered_all.is_empty() {
        0.0
    } else {
        covered_all.iter().map(|&i| sample.input[(i, b)]).sum::<f64>() / covered_all.len() as f64
    };
    [phase.sin(), phase.cos(), weekend, nbr_frac, nbr_mean, global_mean]
}

/// Collects per-bucket regression training pairs `(features, target)`
/// over all samples and covered label rows.
pub fn training_pairs(
    samples: &[TrainSample],
    graph: &EdgeGraph,
    bucket: usize,
) -> (Vec<[f64; NUM_FEATURES]>, Vec<f64>) {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for s in samples {
        for e in 0..s.label.rows() {
            if s.label_mask[e] > 0.0 {
                xs.push(cell_features(s, graph, e, bucket));
                ys.push(s.label[(e, bucket)]);
            }
        }
    }
    (xs, ys)
}

/// Clips negatives and renormalises each row into a distribution
/// (uniform fallback for all-zero rows). Used by the regression
/// baselines to make their per-bucket outputs valid histograms.
pub fn normalize_rows_to_histograms(pred: &mut gcwc_linalg::Matrix) {
    let m = pred.cols();
    for i in 0..pred.rows() {
        let row = pred.row_mut(i);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = v.max(0.0);
            sum += *v;
        }
        if sum > 0.0 {
            for v in row.iter_mut() {
                *v /= sum;
            }
        } else {
            row.fill(1.0 / m as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcwc_linalg::Matrix;
    use gcwc_traffic::{generators, Context};

    fn setup() -> (TrainSample, EdgeGraph) {
        let hw = generators::highway_tollgate(1);
        let n = hw.num_edges();
        let mut input = Matrix::zeros(n, 4);
        let mut flags = vec![0.0; n];
        // Edge 0 covered with a distinctive bucket-1 value.
        input[(0, 1)] = 0.8;
        flags[0] = 1.0;
        let sample = TrainSample {
            snapshot_index: 0,
            input: input.clone(),
            label: input,
            label_mask: flags.clone(),
            context: Context {
                time_of_day: 24, // 6:00 of a 96-interval day
                day_of_week: 5,
                intervals_per_day: 96,
                row_flags: flags,
            },
            history: vec![],
        };
        (sample, hw.graph)
    }

    #[test]
    fn feature_vector_shape_and_calendar() {
        let (s, g) = setup();
        let f = cell_features(&s, &g, 1, 1);
        assert_eq!(f.len(), NUM_FEATURES);
        // 6:00 = quarter day: sin = 1, cos = 0.
        assert!((f[0] - 1.0).abs() < 1e-9);
        assert!(f[1].abs() < 1e-9);
        assert_eq!(f[2], 1.0, "Saturday is weekend");
    }

    #[test]
    fn neighbor_mean_sees_covered_neighbors() {
        let (s, g) = setup();
        // Any neighbour of edge 0 must see its bucket-1 value.
        let nb = g.neighbors(0)[0];
        let f = cell_features(&s, &g, nb, 1);
        assert!(f[3] > 0.0, "covered neighbour fraction");
        assert!((f[4] - 0.8).abs() < 1e-9, "neighbour mean");
        assert!((f[5] - 0.8).abs() < 1e-9, "global mean (single covered edge)");
    }

    #[test]
    fn training_pairs_only_cover_masked_rows() {
        let (s, g) = setup();
        let (xs, ys) = training_pairs(&[s], &g, 1);
        assert_eq!(xs.len(), 1);
        assert_eq!(ys, vec![0.8]);
    }

    #[test]
    fn normalization_produces_histograms() {
        let mut pred = Matrix::from_rows(&[&[2.0, 2.0], &[-1.0, -2.0], &[0.3, 0.1]]);
        normalize_rows_to_histograms(&mut pred);
        assert_eq!(pred.row(0), &[0.5, 0.5]);
        assert_eq!(pred.row(1), &[0.5, 0.5]); // negative row -> uniform
        assert!((pred.row(2)[0] - 0.75).abs() < 1e-12);
    }
}
