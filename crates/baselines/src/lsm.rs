//! Latent Space Model baseline (LSM, §VI-A.5 baseline 4; Deng et al.
//! KDD'16 \[9\]).
//!
//! Non-negative matrix factorisation of the historical edge–time matrix
//! with a graph-Laplacian smoothness regulariser on the edge factors
//! (graph-regularised NMF, multiplicative updates). Per histogram
//! bucket, the training stack `X ∈ R^{n×T}` (missing entries masked) is
//! factorised as `X ≈ U V`; at test time the latent code `v` of the new
//! interval is solved from the observed rows with `U` fixed, and the
//! missing rows are read off `U v`. The paper applies LSM per bucket to
//! support stochastic weights.

use gcwc::{CompletionModel, OutputKind, TrainSample};
use gcwc_graph::EdgeGraph;
use gcwc_linalg::rng::seeded;
use gcwc_linalg::Matrix;
use rand::rngs::StdRng;
use rand::Rng;

use crate::features::normalize_rows_to_histograms;

/// Configuration of the LSM baseline.
#[derive(Clone, Copy, Debug)]
pub struct LsmConfig {
    /// Latent dimensionality `k`.
    pub rank: usize,
    /// Graph regularisation strength γ.
    pub graph_reg: f64,
    /// Ridge regularisation λ.
    pub ridge: f64,
    /// Multiplicative-update iterations during training.
    pub train_iters: usize,
    /// Latent-code iterations at test time.
    pub infer_iters: usize,
    /// Initialisation seed.
    pub seed: u64,
    /// Whether missing entries are excluded from the factorisation.
    ///
    /// `false` (default) reproduces the paper's "straightforward
    /// extension" of LSM \[9\] to incomplete stochastic weights: missing
    /// rows simply stay zero in the data matrix, which is what makes LSM
    /// collapse as the removal ratio grows (Tables IV–XIII). `true`
    /// enables proper masking — a *stronger* variant used by the
    /// `ablation` benches to quantify how much of LSM's failure is this
    /// naive handling.
    pub mask_missing: bool,
}

impl Default for LsmConfig {
    fn default() -> Self {
        Self {
            rank: 8,
            graph_reg: 0.1,
            ridge: 1e-3,
            train_iters: 120,
            infer_iters: 60,
            seed: 31,
            mask_missing: false,
        }
    }
}

const NMF_EPS: f64 = 1e-9;

struct BucketFactor {
    /// `n × k`, non-negative edge factors.
    u: Matrix,
    /// Mean training latent code per time-of-day slot (the temporal
    /// pattern LSM extrapolates from, as in \[9\]); `None` for slots with
    /// no training data.
    tod_codes: Vec<Option<Vec<f64>>>,
    /// Global mean latent code (fallback slot).
    global_code: Vec<f64>,
}

/// The latent space model.
pub struct LsmModel {
    graph: EdgeGraph,
    cfg: LsmConfig,
    output: OutputKind,
    factors: Vec<BucketFactor>,
}

impl LsmModel {
    /// Creates an unfitted LSM baseline over `graph`.
    pub fn new(graph: EdgeGraph, output: OutputKind, cfg: LsmConfig) -> Self {
        Self { graph, cfg, output, factors: Vec::new() }
    }

    /// Masked graph-regularised NMF: returns `U`.
    fn fit_bucket(&self, samples: &[TrainSample], bucket: usize, rng: &mut StdRng) -> BucketFactor {
        let n = samples[0].label.rows();
        let t = samples.len();
        let k = self.cfg.rank;
        // Data and mask.
        let mut x = Matrix::zeros(n, t);
        let mut mask = Matrix::zeros(n, t);
        for (j, s) in samples.iter().enumerate() {
            for e in 0..n {
                if s.label_mask[e] > 0.0 {
                    x[(e, j)] = s.label[(e, bucket)];
                    mask[(e, j)] = 1.0;
                } else if !self.cfg.mask_missing {
                    // The paper's naive extension: a missing row is an
                    // all-zero observation, not an excluded cell.
                    mask[(e, j)] = 1.0;
                }
            }
        }
        let mut u = Matrix::from_fn(n, k, |_, _| rng.random::<f64>() * 0.5 + 0.1);
        let mut v = Matrix::from_fn(k, t, |_, _| rng.random::<f64>() * 0.5 + 0.1);
        let adj = self.graph.adjacency();
        let degrees = adj.row_sums();
        let gamma = self.cfg.graph_reg;
        let lambda = self.cfg.ridge;

        for _ in 0..self.cfg.train_iters {
            // U update: U ⊙ ((M⊙X)Vᵀ + γ A U) / ((M⊙UV)Vᵀ + γ D U + λU).
            let uv = u.matmul(&v);
            let mx_vt = x.hadamard(&mask).matmul(&v.transpose());
            let muv_vt = uv.hadamard(&mask).matmul(&v.transpose());
            let au = adj.matmul_dense(&u);
            for i in 0..n {
                for c in 0..k {
                    let num = mx_vt[(i, c)] + gamma * au[(i, c)];
                    let den = muv_vt[(i, c)]
                        + gamma * degrees[i] * u[(i, c)]
                        + lambda * u[(i, c)]
                        + NMF_EPS;
                    u[(i, c)] *= num / den;
                }
            }
            // V update: V ⊙ (Uᵀ(M⊙X)) / (Uᵀ(M⊙UV) + λV).
            let uv = u.matmul(&v);
            let ut_mx = u.transpose().matmul(&x.hadamard(&mask));
            let ut_muv = u.transpose().matmul(&uv.hadamard(&mask));
            for i in 0..k {
                for c in 0..t {
                    let num = ut_mx[(i, c)];
                    let den = ut_muv[(i, c)] + lambda * v[(i, c)] + NMF_EPS;
                    v[(i, c)] *= num / den;
                }
            }
        }
        // Temporal latent patterns: average the learned codes per
        // time-of-day slot (how [9] captures time-varying traffic).
        let ipd = samples[0].context.intervals_per_day;
        let mut sums = vec![vec![0.0; k]; ipd];
        let mut counts = vec![0usize; ipd];
        for (j, s) in samples.iter().enumerate() {
            let tod = s.context.time_of_day;
            for c in 0..k {
                sums[tod][c] += v[(c, j)];
            }
            counts[tod] += 1;
        }
        let mut global_code = vec![0.0; k];
        for j in 0..t {
            for c in 0..k {
                global_code[c] += v[(c, j)];
            }
        }
        for g in &mut global_code {
            *g /= t as f64;
        }
        let tod_codes = sums
            .into_iter()
            .zip(&counts)
            .map(|(sum, &cnt)| (cnt > 0).then(|| sum.iter().map(|s| s / cnt as f64).collect()))
            .collect();
        BucketFactor { u, tod_codes, global_code }
    }
}

impl CompletionModel for LsmModel {
    fn name(&self) -> String {
        "LSM".to_owned()
    }

    fn fit(&mut self, samples: &[TrainSample]) {
        assert!(!samples.is_empty(), "LSM needs training data");
        let buckets = samples[0].label.cols();
        let mut rng = seeded(self.cfg.seed);
        self.factors = (0..buckets).map(|b| self.fit_bucket(samples, b, &mut rng)).collect();
    }

    fn predict(&self, sample: &TrainSample) -> Matrix {
        assert!(!self.factors.is_empty(), "LSM model must be fitted before predict");
        let n = sample.input.rows();
        let m = self.factors.len();
        let mut pred = Matrix::zeros(n, m);
        for (b, factor) in self.factors.iter().enumerate() {
            // [9] extrapolates from the learned temporal latent pattern;
            // the test interval's partial observations are not re-fitted.
            let tod = sample.context.time_of_day.min(factor.tod_codes.len().saturating_sub(1));
            let code = factor.tod_codes[tod].as_ref().unwrap_or(&factor.global_code);
            for e in 0..n {
                pred[(e, b)] = factor.u.row(e).iter().zip(code).map(|(a, c)| a * c).sum();
            }
        }
        match self.output {
            OutputKind::Histogram => normalize_rows_to_histograms(&mut pred),
            OutputKind::Average => pred.map_inplace(|v| v.clamp(0.0, 1.0)),
        }
        pred
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcwc::{build_samples, TaskKind};
    use gcwc_traffic::{generators, simulate, HistogramSpec, SimConfig};

    fn setup() -> (gcwc_traffic::NetworkInstance, Vec<TrainSample>) {
        let hw = generators::highway_tollgate(1);
        let sim = SimConfig { days: 1, intervals_per_day: 24, ..Default::default() };
        let data = simulate(&hw, HistogramSpec::hist4(), &sim);
        let ds = data.to_dataset(0.5, 5, 3);
        let idx: Vec<usize> = (0..ds.len()).collect();
        (hw, build_samples(&ds, &idx, TaskKind::Estimation, 0))
    }

    #[test]
    fn factors_are_nonnegative() {
        let (hw, samples) = setup();
        let mut lsm = LsmModel::new(hw.graph.clone(), OutputKind::Histogram, LsmConfig::default());
        lsm.fit(&samples[..16]);
        for f in &lsm.factors {
            assert!(f.u.min() >= 0.0, "NMF factors must stay non-negative");
        }
    }

    #[test]
    fn predictions_are_histograms() {
        let (hw, samples) = setup();
        let mut lsm = LsmModel::new(hw.graph.clone(), OutputKind::Histogram, LsmConfig::default());
        lsm.fit(&samples[..16]);
        let pred = lsm.predict(&samples[20]);
        assert_eq!(pred.shape(), (24, 4));
        for i in 0..24 {
            let s: f64 = pred.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "row {i} sums to {s}");
        }
    }

    #[test]
    fn reconstructs_lowrank_data() {
        // Synthetic rank-1 data: every interval is the same histogram
        // pattern scaled; NMF must reconstruct observed entries well.
        let hw = generators::highway_tollgate(1);
        let n = 24;
        let base: Vec<f64> = (0..n).map(|e| 0.2 + 0.6 * ((e % 5) as f64 / 4.0)).collect();
        let samples: Vec<TrainSample> = (0..20)
            .map(|t| {
                let scale = 0.8 + 0.02 * t as f64;
                let label = Matrix::from_fn(n, 1, |e, _| base[e] * scale);
                let mask = vec![1.0; n];
                TrainSample {
                    snapshot_index: 0,
                    input: label.clone(),
                    label,
                    label_mask: mask.clone(),
                    context: gcwc_traffic::Context {
                        time_of_day: t % 24,
                        day_of_week: 0,
                        intervals_per_day: 24,
                        row_flags: mask,
                    },
                    history: vec![],
                }
            })
            .collect();
        let cfg = LsmConfig { rank: 3, graph_reg: 0.0, ..Default::default() };
        let mut lsm = LsmModel::new(hw.graph.clone(), OutputKind::Average, cfg);
        lsm.fit(&samples);
        let pred = lsm.predict(&samples[10]);
        let mut err = 0.0;
        for e in 0..n {
            err += (pred[(e, 0)] - samples[10].label[(e, 0)]).abs();
        }
        err /= n as f64;
        assert!(err < 0.05, "mean abs error {err}");
    }
}
