//! # gcwc-baselines
//!
//! The six comparison methods of the paper's §VI-A.5, implemented from
//! scratch: Historical Average (HA), Gaussian-process regression (GP),
//! random-forest regression (RF), the latent space model (LSM, graph-
//! regularised NMF), a classical CNN with the same layer schedule as
//! GCWC, and the diffusion convolutional recurrent network (DR).
//! All implement [`gcwc::CompletionModel`], so the experiment harness
//! treats them uniformly.

#![warn(missing_docs)]

pub mod cnn;
pub mod dr;
pub mod features;
pub mod gp;
pub mod ha;
pub mod lsm;
pub mod rf;

pub use cnn::CnnModel;
pub use dr::{DrConfig, DrModel};
pub use gp::{GpConfig, GpModel};
pub use ha::HaModel;
pub use lsm::{LsmConfig, LsmModel};
pub use rf::{RfConfig, RfModel};
