//! Classic CNN baseline (§VI-A.5, baseline 5).
//!
//! Identical layer schedule to GCWC (Table III) but with classical
//! convolutions *down the arbitrary row order* of the weight matrix
//! instead of graph convolutions — exactly the paper's point of
//! comparison: nearby rows of `W` need not be nearby in the road
//! network, so topology-blind filters should degrade as data thins out.

use gcwc::{CompletionModel, ModelConfig, OutputKind, TrainSample};
use gcwc_linalg::rng::seeded;
use gcwc_linalg::Matrix;
use gcwc_nn::{dropout_mask, ConvSpec, Dense, NodeId, ParamStore, PoolSpec, Tape};
use rand::rngs::StdRng;
use rand::Rng;

use gcwc::model::gcwc::LOSS_EPS;
use gcwc::train::{run_training, TrainReport};

struct CnnLayer {
    kernel: gcwc_nn::ParamId,
    bias: gcwc_nn::ParamId,
    in_ch: usize,
    out_ch: usize,
    kh: usize,
    pool: usize,
    in_h: usize,
    out_h: usize,
}

/// The classical-CNN completion model.
pub struct CnnModel {
    store: ParamStore,
    cfg: ModelConfig,
    layers: Vec<CnnLayer>,
    fc: Dense,
    n: usize,
    m: usize,
    rng: StdRng,
    last_report: TrainReport,
}

impl CnnModel {
    /// Creates an untrained CNN for `n` edges and `m` buckets using the
    /// same architecture notation as GCWC (`C{K}×1_{f}-P{p}-…-FC{n}`).
    pub fn new(n: usize, m: usize, cfg: ModelConfig, seed: u64) -> Self {
        let mut rng = seeded(seed);
        let mut store = ParamStore::new();
        let mut layers = Vec::with_capacity(cfg.conv_layers.len());
        let mut in_ch = 1usize;
        let mut h = n;
        for (li, lc) in cfg.conv_layers.iter().enumerate() {
            let kh = lc.cheb_order.min(h); // C{K}×1, clamped to the current height.
            let kernel = store.add(
                format!("cnn{li}.k"),
                gcwc_nn::init::glorot_uniform(&mut rng, lc.filters, in_ch * kh),
            );
            let bias = store.add(format!("cnn{li}.b"), Matrix::zeros(1, lc.filters));
            let out_h = if lc.pool > 1 { h / lc.pool } else { h };
            assert!(out_h >= 1, "network too small for pooling schedule");
            layers.push(CnnLayer {
                kernel,
                bias,
                in_ch,
                out_ch: lc.filters,
                kh,
                pool: lc.pool,
                in_h: h,
                out_h,
            });
            in_ch = lc.filters;
            h = out_h;
        }
        let f_last = layers.last().expect("non-empty").out_ch;
        let fc = Dense::new(&mut store, &mut rng, "cnn.fc", h * f_last, n);
        Self { store, cfg, layers, fc, n, m, rng, last_report: TrainReport::default() }
    }

    /// Training report of the last fit.
    pub fn last_report(&self) -> &TrainReport {
        &self.last_report
    }

    fn output(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        input: &Matrix,
        train: bool,
        rng: &mut StdRng,
    ) -> NodeId {
        // All m bucket columns run as one conv batch: row j of the conv
        // input is bucket j's column viewed as an n × 1 image.
        let batched = Matrix::from_fn(self.m, self.n, |j, e| input[(e, j)]);
        let mut x = tape.constant(batched);
        for layer in &self.layers {
            let k = tape.param(store, layer.kernel);
            let b = tape.param(store, layer.bias);
            let spec = ConvSpec {
                batch: self.m,
                in_ch: layer.in_ch,
                out_ch: layer.out_ch,
                h: layer.in_h,
                w: 1,
                kh: layer.kh,
                kw: 1,
            };
            x = tape.conv2d(x, k, b, spec);
            x = tape.tanh(x);
            if layer.pool > 1 {
                x = tape.max_pool2d(
                    x,
                    PoolSpec {
                        batch: self.m,
                        ch: layer.out_ch,
                        h: layer.in_h,
                        w: 1,
                        ph: layer.pool,
                        pw: 1,
                    },
                );
            }
        }
        let last = self.layers.last().expect("non-empty");
        let flat_len = last.out_h * last.out_ch;
        // (m·ch, h_f) row-major reinterpreted as (m, ch·h_f): one feature
        // row per bucket, decoded by the shared FC in a single matmul.
        let mut flat = tape.reshape(x, self.m, flat_len);
        if train && self.cfg.dropout > 0.0 {
            let mask = dropout_mask(rng, self.m, flat_len, self.cfg.dropout);
            flat = tape.dropout(flat, mask);
        }
        let rows = self.fc.apply(tape, store, flat); // (m, n)
        let z = tape.transpose(rows); // (n, m)
        match self.cfg.output {
            OutputKind::Histogram => tape.softmax_rows(z),
            OutputKind::Average => {
                let ones = tape.constant(Matrix::filled(self.m, 1, 1.0 / self.m as f64));
                let mean = tape.matmul(z, ones);
                tape.sigmoid(mean)
            }
        }
    }

    fn sample_loss(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        sample: &TrainSample,
        rng: &mut StdRng,
    ) -> NodeId {
        let (input, _) = gcwc::task::corrupt_input(
            &sample.input,
            &sample.context.row_flags,
            self.cfg.row_dropout,
            rng,
        );
        let pred = self.output(tape, store, &input, true, rng);
        match self.cfg.output {
            OutputKind::Histogram => {
                tape.kl_loss_masked(pred, sample.label.clone(), sample.label_mask.clone(), LOSS_EPS)
            }
            OutputKind::Average => {
                let mask = Matrix::from_vec(sample.label_mask.len(), 1, sample.label_mask.clone());
                tape.mse_masked(pred, sample.label.clone(), mask)
            }
        }
    }
}

impl CompletionModel for CnnModel {
    fn name(&self) -> String {
        "CNN".to_owned()
    }

    fn fit(&mut self, samples: &[TrainSample]) {
        let mut rng = seeded(self.rng.random());
        let mut store = std::mem::take(&mut self.store);
        let this: &Self = self;
        let report = run_training(
            &mut store,
            this.cfg.optim,
            this.cfg.epochs,
            this.cfg.batch_size,
            gcwc_linalg::Threads::auto(),
            samples,
            &mut rng,
            |tape, store, sample, rng| this.sample_loss(tape, store, sample, rng),
        );
        self.store = store;
        self.last_report = report.unwrap_or_else(|e| panic!("CNN training failed: {e}"));
    }

    fn predict(&self, sample: &TrainSample) -> Matrix {
        let mut tape = Tape::new();
        let mut rng = seeded(0);
        let out = self.output(&mut tape, &self.store, &sample.input, false, &mut rng);
        tape.value(out).clone()
    }

    fn num_params(&self) -> usize {
        self.store.num_scalars()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcwc::{build_samples, TaskKind};
    use gcwc_traffic::{generators, simulate, HistogramSpec, SimConfig};

    fn setup() -> Vec<TrainSample> {
        let hw = generators::highway_tollgate(1);
        let sim = SimConfig {
            days: 1,
            intervals_per_day: 24,
            records_per_interval: 10.0,
            ..Default::default()
        };
        let data = simulate(&hw, HistogramSpec::hist8(), &sim);
        let ds = data.to_dataset(0.5, 5, 3);
        let idx: Vec<usize> = (0..ds.len()).collect();
        build_samples(&ds, &idx, TaskKind::Estimation, 0)
    }

    #[test]
    fn fit_reduces_loss_and_outputs_histograms() {
        let samples = setup();
        let cfg = ModelConfig::hw_hist().with_epochs(6);
        let mut cnn = CnnModel::new(24, 8, cfg, 42);
        cnn.fit(&samples);
        let losses = &cnn.last_report().epoch_losses;
        assert!(losses.last().unwrap() < &losses[0], "losses {losses:?}");
        let pred = cnn.predict(&samples[0]);
        assert_eq!(pred.shape(), (24, 8));
        for i in 0..24 {
            assert!((pred.row(i).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn param_count_close_to_gcwc() {
        // The paper stresses CNN and GCWC have comparable #Para
        // (Table III); our shared-FC construction makes them equal up to
        // the conv parameterisation.
        let hw = generators::highway_tollgate(1);
        let cnn = CnnModel::new(24, 8, ModelConfig::hw_hist(), 1);
        let gcwc = gcwc::GcwcModel::new(&hw.graph, 8, ModelConfig::hw_hist(), 1);
        let (a, b) = (cnn.num_params() as f64, gcwc.num_params() as f64);
        assert!((a / b - 1.0).abs() < 0.3, "CNN {a} vs GCWC {b}");
    }
}
