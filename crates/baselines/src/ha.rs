//! Historical Average (HA) baseline (§VI-A.5, baseline 1).
//!
//! For each edge, all training-label histograms are averaged into one
//! reference distribution, used as the estimate for every test interval.
//! (The evaluation harness additionally computes a record-level HA from
//! the raw simulator output as the MKLR/FLR reference distribution; this
//! model is the same idea packaged behind [`CompletionModel`].)

use gcwc::{CompletionModel, TrainSample};
use gcwc_linalg::Matrix;

/// The Historical Average model.
#[derive(Clone, Debug, Default)]
pub struct HaModel {
    /// Per-edge mean histogram (uniform fallback when an edge never had
    /// data).
    estimate: Option<Matrix>,
}

impl HaModel {
    /// Creates an unfitted HA model.
    pub fn new() -> Self {
        Self::default()
    }
}

impl CompletionModel for HaModel {
    fn name(&self) -> String {
        "HA".to_owned()
    }

    fn fit(&mut self, samples: &[TrainSample]) {
        assert!(!samples.is_empty(), "HA needs training data");
        let n = samples[0].label.rows();
        let m = samples[0].label.cols();
        let mut sums = Matrix::zeros(n, m);
        let mut counts = vec![0usize; n];
        for s in samples {
            for e in 0..n {
                if s.label_mask[e] > 0.0 {
                    for (dst, src) in sums.row_mut(e).iter_mut().zip(s.label.row(e)) {
                        *dst += src;
                    }
                    counts[e] += 1;
                }
            }
        }
        let uniform = 1.0 / m as f64;
        for e in 0..n {
            if counts[e] > 0 {
                for v in sums.row_mut(e) {
                    *v /= counts[e] as f64;
                }
            } else {
                sums.row_mut(e).fill(uniform);
            }
        }
        self.estimate = Some(sums);
    }

    fn predict(&self, _sample: &TrainSample) -> Matrix {
        self.estimate.clone().expect("HA model must be fitted before predict")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcwc_traffic::Context;

    fn sample(label: Matrix, mask: Vec<f64>) -> TrainSample {
        let n = label.rows();
        TrainSample {
            snapshot_index: 0,
            input: label.clone(),
            label,
            label_mask: mask,
            context: Context {
                time_of_day: 0,
                day_of_week: 0,
                intervals_per_day: 96,
                row_flags: vec![1.0; n],
            },
            history: vec![],
        }
    }

    #[test]
    fn averages_covered_rows() {
        let a = sample(Matrix::from_rows(&[&[1.0, 0.0], &[0.6, 0.4]]), vec![1.0, 1.0]);
        let b = sample(Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]), vec![1.0, 0.0]);
        let mut ha = HaModel::new();
        ha.fit(&[a.clone(), b]);
        let p = ha.predict(&a);
        assert_eq!(p.row(0), &[0.5, 0.5]); // mean of (1,0) and (0,1)
        assert_eq!(p.row(1), &[0.6, 0.4]); // only the covered sample counts
    }

    #[test]
    fn uncovered_edges_get_uniform() {
        let a = sample(Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 0.0]]), vec![1.0, 0.0]);
        let mut ha = HaModel::new();
        ha.fit(std::slice::from_ref(&a));
        assert_eq!(ha.predict(&a).row(1), &[0.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "fitted before predict")]
    fn predict_before_fit_panics() {
        let a = sample(Matrix::zeros(1, 2), vec![0.0]);
        HaModel::new().predict(&a);
    }
}
