//! Random-forest regression baseline (§VI-A.5, baseline 3).
//!
//! Bagged CART regression trees (variance-reduction splits, random
//! feature subsets per split) on the shared cell features, one forest
//! per histogram bucket.

use gcwc::{CompletionModel, OutputKind, TrainSample};
use gcwc_graph::EdgeGraph;
use gcwc_linalg::rng::seeded;
use gcwc_linalg::Matrix;
use rand::rngs::StdRng;
use rand::Rng;

use crate::features::{cell_features, normalize_rows_to_histograms, training_pairs, NUM_FEATURES};

/// Configuration of the RF baseline.
#[derive(Clone, Copy, Debug)]
pub struct RfConfig {
    /// Trees per forest.
    pub trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to split a node.
    pub min_split: usize,
    /// Features tried per split.
    pub features_per_split: usize,
    /// Seed for bootstrap and feature sampling.
    pub seed: u64,
}

impl Default for RfConfig {
    fn default() -> Self {
        Self { trees: 20, max_depth: 8, min_split: 10, features_per_split: 3, seed: 23 }
    }
}

/// A regression tree node (flat arena).
#[derive(Clone, Debug)]
enum TreeNode {
    Leaf { value: f64 },
    Split { feature: usize, threshold: f64, left: usize, right: usize },
}

/// A single CART regression tree.
#[derive(Clone, Debug, Default)]
pub struct RegressionTree {
    nodes: Vec<TreeNode>,
}

impl RegressionTree {
    /// Fits a tree on `(xs, ys)` rows selected by `indices`.
    fn fit(
        xs: &[[f64; NUM_FEATURES]],
        ys: &[f64],
        indices: &[usize],
        cfg: &RfConfig,
        rng: &mut StdRng,
    ) -> Self {
        let mut tree = Self { nodes: Vec::new() };
        tree.grow(xs, ys, indices.to_vec(), 0, cfg, rng);
        tree
    }

    fn grow(
        &mut self,
        xs: &[[f64; NUM_FEATURES]],
        ys: &[f64],
        indices: Vec<usize>,
        depth: usize,
        cfg: &RfConfig,
        rng: &mut StdRng,
    ) -> usize {
        let mean = indices.iter().map(|&i| ys[i]).sum::<f64>() / indices.len() as f64;
        if depth >= cfg.max_depth || indices.len() < cfg.min_split {
            self.nodes.push(TreeNode::Leaf { value: mean });
            return self.nodes.len() - 1;
        }
        // Best split over a random feature subset.
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sse)
        let feats = gcwc_linalg::rng::sample_indices(
            rng,
            NUM_FEATURES,
            cfg.features_per_split.min(NUM_FEATURES),
        );
        for f in feats {
            let mut vals: Vec<f64> = indices.iter().map(|&i| xs[i][f]).collect();
            vals.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite features"));
            vals.dedup();
            if vals.len() < 2 {
                continue;
            }
            // Candidate thresholds: a few quantile midpoints.
            for q in [0.25, 0.5, 0.75] {
                let idx = ((vals.len() - 1) as f64 * q) as usize;
                let threshold = (vals[idx] + vals[(idx + 1).min(vals.len() - 1)]) / 2.0;
                let (mut ls, mut lc, mut rs, mut rc) = (0.0, 0usize, 0.0, 0usize);
                for &i in &indices {
                    if xs[i][f] <= threshold {
                        ls += ys[i];
                        lc += 1;
                    } else {
                        rs += ys[i];
                        rc += 1;
                    }
                }
                if lc == 0 || rc == 0 {
                    continue;
                }
                let (lm, rm) = (ls / lc as f64, rs / rc as f64);
                let sse: f64 = indices
                    .iter()
                    .map(|&i| {
                        let mu = if xs[i][f] <= threshold { lm } else { rm };
                        (ys[i] - mu) * (ys[i] - mu)
                    })
                    .sum();
                if best.is_none_or(|(_, _, b)| sse < b) {
                    best = Some((f, threshold, sse));
                }
            }
        }
        let Some((feature, threshold, _)) = best else {
            self.nodes.push(TreeNode::Leaf { value: mean });
            return self.nodes.len() - 1;
        };
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            indices.iter().partition(|&&i| xs[i][feature] <= threshold);
        if left_idx.is_empty() || right_idx.is_empty() {
            self.nodes.push(TreeNode::Leaf { value: mean });
            return self.nodes.len() - 1;
        }
        // Reserve this node's slot, then grow children.
        let slot = self.nodes.len();
        self.nodes.push(TreeNode::Leaf { value: mean }); // placeholder
        let left = self.grow(xs, ys, left_idx, depth + 1, cfg, rng);
        let right = self.grow(xs, ys, right_idx, depth + 1, cfg, rng);
        self.nodes[slot] = TreeNode::Split { feature, threshold, left, right };
        slot
    }

    /// Predicts one feature vector.
    pub fn predict(&self, x: &[f64; NUM_FEATURES]) -> f64 {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                TreeNode::Leaf { value } => return *value,
                TreeNode::Split { feature, threshold, left, right } => {
                    node = if x[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }
}

/// The random-forest regression model.
pub struct RfModel {
    graph: EdgeGraph,
    cfg: RfConfig,
    output: OutputKind,
    forests: Vec<Vec<RegressionTree>>,
}

impl RfModel {
    /// Creates an unfitted RF baseline over `graph`.
    pub fn new(graph: EdgeGraph, output: OutputKind, cfg: RfConfig) -> Self {
        Self { graph, cfg, output, forests: Vec::new() }
    }

    fn fit_bucket(&self, samples: &[TrainSample], bucket: usize) -> Vec<RegressionTree> {
        let (xs, ys) = training_pairs(samples, &self.graph, bucket);
        if xs.is_empty() {
            return Vec::new();
        }
        let mut rng = seeded(self.cfg.seed ^ (bucket as u64) << 8);
        (0..self.cfg.trees)
            .map(|_| {
                // Bootstrap resample.
                let indices: Vec<usize> =
                    (0..xs.len()).map(|_| rng.random_range(0..xs.len())).collect();
                RegressionTree::fit(&xs, &ys, &indices, &self.cfg, &mut rng)
            })
            .collect()
    }

    fn predict_cell(&self, forest: &[RegressionTree], x: &[f64; NUM_FEATURES]) -> f64 {
        if forest.is_empty() {
            return 0.0;
        }
        forest.iter().map(|t| t.predict(x)).sum::<f64>() / forest.len() as f64
    }
}

impl CompletionModel for RfModel {
    fn name(&self) -> String {
        "RF".to_owned()
    }

    fn fit(&mut self, samples: &[TrainSample]) {
        let buckets = samples.first().map_or(0, |s| s.label.cols());
        self.forests = (0..buckets).map(|b| self.fit_bucket(samples, b)).collect();
    }

    fn predict(&self, sample: &TrainSample) -> Matrix {
        assert!(!self.forests.is_empty(), "RF model must be fitted before predict");
        let n = sample.input.rows();
        let m = self.forests.len();
        let mut pred = Matrix::zeros(n, m);
        for e in 0..n {
            for (b, forest) in self.forests.iter().enumerate() {
                let x = cell_features(sample, &self.graph, e, b.min(sample.input.cols() - 1));
                pred[(e, b)] = self.predict_cell(forest, &x);
            }
        }
        match self.output {
            OutputKind::Histogram => normalize_rows_to_histograms(&mut pred),
            OutputKind::Average => pred.map_inplace(|v| v.clamp(0.0, 1.0)),
        }
        pred
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcwc::{build_samples, TaskKind};
    use gcwc_traffic::{generators, simulate, HistogramSpec, SimConfig};

    #[test]
    fn tree_fits_simple_step_function() {
        // y = 1 when feature 0 > 0, else 0.
        let xs: Vec<[f64; NUM_FEATURES]> = (0..40)
            .map(|i| {
                let v = (i as f64 - 20.0) / 10.0;
                [v, 0.0, 0.0, 0.0, 0.0, 0.0]
            })
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| if x[0] > 0.0 { 1.0 } else { 0.0 }).collect();
        let cfg = RfConfig { features_per_split: 6, ..Default::default() };
        let mut rng = seeded(1);
        let idx: Vec<usize> = (0..xs.len()).collect();
        let tree = RegressionTree::fit(&xs, &ys, &idx, &cfg, &mut rng);
        let lo = tree.predict(&[-1.5, 0.0, 0.0, 0.0, 0.0, 0.0]);
        let hi = tree.predict(&[1.5, 0.0, 0.0, 0.0, 0.0, 0.0]);
        assert!(lo < 0.3, "lo = {lo}");
        assert!(hi > 0.7, "hi = {hi}");
    }

    #[test]
    fn forest_outputs_histograms() {
        let hw = generators::highway_tollgate(1);
        let sim = SimConfig { days: 1, intervals_per_day: 24, ..Default::default() };
        let data = simulate(&hw, HistogramSpec::hist4(), &sim);
        let ds = data.to_dataset(0.5, 5, 3);
        let idx: Vec<usize> = (0..ds.len()).collect();
        let samples = build_samples(&ds, &idx, TaskKind::Estimation, 0);
        let mut rf = RfModel::new(hw.graph.clone(), OutputKind::Histogram, RfConfig::default());
        rf.fit(&samples[..16]);
        let pred = rf.predict(&samples[20]);
        assert_eq!(pred.shape(), (24, 4));
        for i in 0..24 {
            let s: f64 = pred.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "row {i} sums to {s}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let hw = generators::highway_tollgate(1);
        let sim = SimConfig { days: 1, intervals_per_day: 12, ..Default::default() };
        let data = simulate(&hw, HistogramSpec::hist4(), &sim);
        let ds = data.to_dataset(0.5, 5, 3);
        let idx: Vec<usize> = (0..ds.len()).collect();
        let samples = build_samples(&ds, &idx, TaskKind::Estimation, 0);
        let run = || {
            let mut rf = RfModel::new(hw.graph.clone(), OutputKind::Histogram, RfConfig::default());
            rf.fit(&samples[..8]);
            rf.predict(&samples[9])
        };
        assert_eq!(run(), run());
    }
}
