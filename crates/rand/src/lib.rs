//! Vendored stand-in for the subset of the `rand` crate API this
//! workspace uses.
//!
//! The build environment has no access to a crates.io mirror, so the
//! workspace vendors a minimal implementation under the same crate name
//! and routes the `rand` workspace dependency at it via a path
//! dependency. Only the surface actually exercised by the workspace is
//! provided: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::random`, and `Rng::random_range` over the float/integer range
//! types that appear at call sites.
//!
//! The generator is xoshiro256++ seeded through SplitMix64. Stream
//! compatibility with the real `rand` crate is *not* a goal — every
//! consumer in this workspace only relies on a seeded RNG being
//! deterministic and statistically reasonable, both of which hold here.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    pub use crate::StdRng;
}

/// Seeding interface: the workspace only ever seeds from a `u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling interface.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of `T` from its canonical distribution
    /// (`f64` uniform in `[0, 1)`, integers uniform over the full range).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a (half-open or inclusive) range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

/// The standard RNG: xoshiro256++ (Blackman & Vigna).
///
/// 256 bits of state, period 2^256 − 1, passes BigCrush; more than
/// adequate for simulation, initialisation, and shuffling workloads.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors,
        // so that similar seeds yield uncorrelated initial states.
        let mut sm = seed;
        let mut next = move || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng { s: [next(), next(), next(), next()] }
    }
}

impl StdRng {
    /// Exposes the raw xoshiro256++ state, e.g. for checkpointing a
    /// training run so it can resume with a bit-identical stream.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state captured by [`StdRng::state`].
    /// The resulting stream continues exactly where the original left
    /// off.
    pub fn from_state(s: [u64; 4]) -> Self {
        StdRng { s }
    }
}

impl Rng for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Types samplable by [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform on the dyadic grid in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

/// Uniform `u64` in `[0, span)` by rejection, so every value is
/// exactly equally likely (no modulo bias).
#[inline]
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Largest multiple of `span` that fits in u64; reject draws past it.
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let x = rng.next_u64();
        // `zone` is at least 2^63, so this rejects < 50% of draws.
        if x < zone || zone == 0 {
            return x % span;
        }
    }
}

/// Range types accepted by [`Rng::random_range`].
pub trait SampleRange {
    /// Element type produced by sampling.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        let u = f64::sample(rng);
        let v = self.start + u * (self.end - self.start);
        // Multiplication can round up to `end`; keep the half-open contract.
        if v >= self.end {
            f64::from_bits(self.end.to_bits() - 1)
        } else {
            v
        }
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }

        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain.
                    return (lo as i128 + rng.next_u64() as i128) as $t;
                }
                let off = uniform_below(rng, span as u64);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(usize, u64, u32, i64, i32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn f64_in_unit_interval_and_uniform_ish() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..5_000 {
            let a = rng.random_range(-2.5f64..1.5);
            assert!((-2.5..1.5).contains(&a));
            let b = rng.random_range(3usize..17);
            assert!((3..17).contains(&b));
            let c = rng.random_range(0usize..=4);
            assert!(c <= 4);
            let d = rng.random_range(-8i64..=-3);
            assert!((-8..=-3).contains(&d));
        }
    }

    #[test]
    fn inclusive_range_hits_both_endpoints() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.random_range(0usize..=2)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn state_roundtrip_resumes_the_stream() {
        let mut a = StdRng::seed_from_u64(21);
        for _ in 0..10 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn singleton_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(11);
        assert_eq!(rng.random_range(4usize..=4), 4);
    }
}
