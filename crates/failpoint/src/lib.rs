//! # gcwc-failpoint
//!
//! Named, deterministic fault-injection points (std-only).
//!
//! A *failpoint* is a named site in production code that can be armed
//! with a **schedule** describing when and how it should misbehave.
//! Schedules are deterministic: counted terms advance in evaluation
//! order, and probabilistic terms draw from a per-site PRNG seeded
//! from a global seed and the site name, so a run is reproducible
//! from `(configuration, seed)` alone.
//!
//! ## Schedule DSL
//!
//! ```text
//! spec    := term ("->" term)*
//! term    := [COUNT "*"] [PROB "%"] action
//! action  := "off" | "err" | "panic" | "delay(" MILLIS ")"
//! ```
//!
//! * `off` — never triggers (the default for unconfigured sites).
//! * `err` — the site should fail with its typed error.
//! * `panic` — the evaluation panics (callers contain it with
//!   `catch_unwind` or a supervisor).
//! * `delay(ms)` — the evaluation sleeps for `ms` milliseconds, then
//!   reports "not triggered" (latency injection).
//! * `COUNT *` — the term fires `COUNT` times, then the schedule
//!   advances to the next term (or `off` after the last one).
//! * `PROB %` — each evaluation fires with probability `PROB/100`,
//!   drawn from the site's seeded PRNG.
//!
//! Examples: `1*panic`, `3*err->off`, `delay(10)`, `25%err`,
//! `2*50%delay(5)->1*panic->off`.
//!
//! ## Configuration
//!
//! Programmatic: [`configure`] / [`remove`] / [`clear`]. Environment:
//! `GCWC_FAILPOINTS="site=spec;site2=spec"` is read once on first
//! evaluation (or via [`init_from_env`]); `GCWC_FAILPOINT_SEED=<u64>`
//! seeds the probabilistic terms.
//!
//! ## Cost
//!
//! Without the `failpoints` cargo feature the whole crate compiles to
//! constants — [`ENABLED`] is `false`, [`triggered`] is a `const
//! false` with no statics, counters, or locks behind it. With the
//! feature on but no site configured, an evaluation is one relaxed
//! atomic load. Armed or not, evaluation never allocates, which keeps
//! the zero-allocation serving and training hot paths intact.

#![warn(missing_docs)]

/// Whether the failpoint machinery is compiled in.
pub const ENABLED: bool = cfg!(feature = "failpoints");

/// What an armed failpoint did (or asks the caller to do).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// The site should fail with its typed error.
    Err,
}

#[cfg(feature = "failpoints")]
mod imp {
    use super::Action;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Mutex, Once, OnceLock};
    use std::time::Duration;

    /// Number of currently armed sites; the evaluation fast path.
    static ARMED: AtomicUsize = AtomicUsize::new(0);
    static ENV_INIT: Once = Once::new();
    static REGISTRY: OnceLock<Mutex<HashMap<String, SiteState>>> = OnceLock::new();

    fn registry() -> &'static Mutex<HashMap<String, SiteState>> {
        REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
    }

    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    enum Kind {
        Off,
        Err,
        Panic,
        Delay(u64),
    }

    #[derive(Clone, Copy, Debug)]
    struct Term {
        /// Remaining triggers before advancing (`None` = unlimited).
        remaining: Option<u64>,
        /// Per-evaluation trigger probability in [0, 1] (`None` = 1).
        prob: Option<f64>,
        kind: Kind,
    }

    struct SiteState {
        terms: Vec<Term>,
        cur: usize,
        /// SplitMix64 state for probabilistic terms.
        rng: u64,
    }

    /// SplitMix64 step (same generator the vendored `rand` seeds with).
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// FNV-1a over the site name, mixed with the global seed, so each
    /// site gets an independent deterministic stream.
    fn site_seed(site: &str, global: u64) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in site.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^ global
    }

    fn global_seed() -> u64 {
        std::env::var("GCWC_FAILPOINT_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0)
    }

    fn parse_term(term: &str) -> Result<Term, String> {
        let mut rest = term.trim();
        let mut remaining = None;
        let mut prob = None;
        if let Some((count, tail)) = rest.split_once('*') {
            let n: u64 = count.trim().parse().map_err(|_| format!("bad count in term {term:?}"))?;
            remaining = Some(n);
            rest = tail.trim();
        }
        if let Some((pct, tail)) = rest.split_once('%') {
            let p: f64 =
                pct.trim().parse().map_err(|_| format!("bad probability in term {term:?}"))?;
            if !(0.0..=100.0).contains(&p) {
                return Err(format!("probability outside 0..=100 in term {term:?}"));
            }
            prob = Some(p / 100.0);
            rest = tail.trim();
        }
        let kind = match rest {
            "off" => Kind::Off,
            "err" => Kind::Err,
            "panic" => Kind::Panic,
            _ => {
                let ms = rest
                    .strip_prefix("delay(")
                    .and_then(|r| r.strip_suffix(')'))
                    .and_then(|ms| ms.trim().parse().ok())
                    .ok_or_else(|| format!("unknown action in term {term:?}"))?;
                Kind::Delay(ms)
            }
        };
        Ok(Term { remaining, prob, kind })
    }

    fn parse_spec(spec: &str) -> Result<Vec<Term>, String> {
        spec.split("->").map(parse_term).collect()
    }

    pub fn configure(site: &str, spec: &str) -> Result<(), String> {
        let terms = parse_spec(spec)?;
        let mut reg = registry().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        // A spec that can never trigger is equivalent to removal.
        if terms.iter().all(|t| t.kind == Kind::Off) {
            if reg.remove(site).is_some() {
                ARMED.fetch_sub(1, Ordering::Release);
            }
            return Ok(());
        }
        let state = SiteState { terms, cur: 0, rng: site_seed(site, global_seed()) };
        if reg.insert(site.to_owned(), state).is_none() {
            ARMED.fetch_add(1, Ordering::Release);
        }
        Ok(())
    }

    pub fn remove(site: &str) {
        let mut reg = registry().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if reg.remove(site).is_some() {
            ARMED.fetch_sub(1, Ordering::Release);
        }
    }

    pub fn clear() {
        let mut reg = registry().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        ARMED.fetch_sub(reg.len(), Ordering::Release);
        reg.clear();
    }

    pub fn init_from_env() {
        ENV_INIT.call_once(|| {
            let Ok(cfg) = std::env::var("GCWC_FAILPOINTS") else { return };
            for pair in cfg.split(';').map(str::trim).filter(|p| !p.is_empty() && *p != "off") {
                match pair.split_once('=') {
                    Some((site, spec)) => {
                        if let Err(e) = configure(site.trim(), spec.trim()) {
                            eprintln!("GCWC_FAILPOINTS: ignoring {pair:?}: {e}");
                        }
                    }
                    None => eprintln!("GCWC_FAILPOINTS: ignoring {pair:?}: missing '='"),
                }
            }
        });
    }

    pub fn eval(site: &str) -> Option<Action> {
        init_from_env();
        if ARMED.load(Ordering::Acquire) == 0 {
            return None;
        }
        let kind = {
            let mut reg = registry().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            let state = reg.get_mut(site)?;
            let term = loop {
                let term = state.terms.get_mut(state.cur)?;
                if term.remaining == Some(0) {
                    state.cur += 1;
                    continue;
                }
                break term;
            };
            if let Some(p) = term.prob {
                let u = (splitmix(&mut state.rng) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                if u >= p {
                    return None;
                }
            }
            if let Some(n) = term.remaining.as_mut() {
                *n -= 1;
            }
            term.kind
        };
        match kind {
            Kind::Off => None,
            Kind::Err => Some(Action::Err),
            Kind::Panic => panic!("failpoint {site:?}: injected panic"),
            Kind::Delay(ms) => {
                std::thread::sleep(Duration::from_millis(ms));
                None
            }
        }
    }
}

/// Evaluates the failpoint `site` and returns `true` when the site
/// should fail with its typed error.
///
/// `panic` schedules panic *inside* this call (contain with
/// `catch_unwind` or a supervisor); `delay(ms)` schedules sleep here
/// and return `false`. Unconfigured sites cost one atomic load; with
/// the `failpoints` feature off this is a `const false`.
#[inline]
pub fn triggered(site: &str) -> bool {
    #[cfg(feature = "failpoints")]
    {
        imp::eval(site).is_some()
    }
    #[cfg(not(feature = "failpoints"))]
    {
        let _ = site;
        false
    }
}

/// Evaluates `site` and returns the triggered [`Action`], if any.
/// Identical to [`triggered`] but keeps the action for callers that
/// distinguish several failure modes.
#[inline]
pub fn eval(site: &str) -> Option<Action> {
    #[cfg(feature = "failpoints")]
    {
        imp::eval(site)
    }
    #[cfg(not(feature = "failpoints"))]
    {
        let _ = site;
        None
    }
}

/// Arms `site` with `spec` (see the module docs for the DSL).
///
/// With the `failpoints` feature off this is a no-op returning
/// `Err("failpoints feature disabled")`, so accidentally shipping a
/// configuration cannot change behavior.
pub fn configure(site: &str, spec: &str) -> Result<(), String> {
    #[cfg(feature = "failpoints")]
    {
        imp::configure(site, spec)
    }
    #[cfg(not(feature = "failpoints"))]
    {
        let _ = (site, spec);
        Err("failpoints feature disabled".into())
    }
}

/// Disarms `site`.
pub fn remove(site: &str) {
    #[cfg(feature = "failpoints")]
    imp::remove(site);
    #[cfg(not(feature = "failpoints"))]
    let _ = site;
}

/// Disarms every site.
pub fn clear() {
    #[cfg(feature = "failpoints")]
    imp::clear();
}

/// Reads `GCWC_FAILPOINTS` once and arms the sites it names. Called
/// lazily by the first evaluation; call it eagerly to surface parse
/// errors at startup.
pub fn init_from_env() {
    #[cfg(feature = "failpoints")]
    imp::init_from_env();
}

#[cfg(all(test, feature = "failpoints"))]
mod enabled_tests {
    use super::*;
    use std::sync::{Mutex, OnceLock};

    /// Serialises tests that mutate the global registry.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn unconfigured_site_never_triggers() {
        let _g = guard();
        clear();
        assert!(!triggered("nope"));
    }

    #[test]
    fn counted_err_advances_to_off() {
        let _g = guard();
        clear();
        configure("site.counted", "3*err->off").unwrap();
        let fires: Vec<bool> = (0..5).map(|_| triggered("site.counted")).collect();
        assert_eq!(fires, [true, true, true, false, false]);
        clear();
    }

    #[test]
    fn chained_terms_fire_in_order() {
        let _g = guard();
        clear();
        configure("site.chain", "1*err->2*err->off").unwrap();
        let fires: Vec<bool> = (0..4).map(|_| triggered("site.chain")).collect();
        assert_eq!(fires, [true, true, true, false]);
        clear();
    }

    #[test]
    fn panic_action_panics_inside_eval() {
        let _g = guard();
        clear();
        configure("site.boom", "1*panic->off").unwrap();
        let r = std::panic::catch_unwind(|| triggered("site.boom"));
        assert!(r.is_err(), "first evaluation must panic");
        assert!(!triggered("site.boom"), "schedule advanced past the panic");
        clear();
    }

    #[test]
    fn delay_sleeps_then_reports_untriggered() {
        let _g = guard();
        clear();
        configure("site.slow", "1*delay(20)->off").unwrap();
        let t0 = std::time::Instant::now();
        assert!(!triggered("site.slow"));
        assert!(t0.elapsed() >= std::time::Duration::from_millis(15));
        clear();
    }

    #[test]
    fn probability_is_deterministic_for_a_seed() {
        let _g = guard();
        clear();
        configure("site.prob", "50%err").unwrap();
        let a: Vec<bool> = (0..64).map(|_| triggered("site.prob")).collect();
        // Re-arm: same site name + same global seed => same stream.
        configure("site.prob", "50%err").unwrap();
        let b: Vec<bool> = (0..64).map(|_| triggered("site.prob")).collect();
        assert_eq!(a, b);
        let hits = a.iter().filter(|&&x| x).count();
        assert!((10..55).contains(&hits), "50% schedule fired {hits}/64 times");
        clear();
    }

    #[test]
    fn off_spec_disarms() {
        let _g = guard();
        clear();
        configure("site.toggle", "err").unwrap();
        assert!(triggered("site.toggle"));
        configure("site.toggle", "off").unwrap();
        assert!(!triggered("site.toggle"));
        clear();
    }

    #[test]
    fn bad_specs_are_rejected() {
        let _g = guard();
        for bad in ["nonsense", "x*err", "150%err", "delay(abc)", "delay(5"] {
            assert!(configure("site.bad", bad).is_err(), "{bad:?} must not parse");
        }
        clear();
    }
}

#[cfg(all(test, not(feature = "failpoints")))]
mod disabled_tests {
    use super::*;

    /// The contract the serving/training hot paths rely on: with the
    /// feature off there is no registry, no counters, no locks — a
    /// site evaluation is a constant `false` and configuration is
    /// refused, so no code path can diverge from the un-instrumented
    /// build.
    #[test]
    fn disabled_crate_is_a_no_op() {
        #[allow(clippy::assertions_on_constants)]
        {
            assert!(!ENABLED);
        }
        assert!(configure("any.site", "1*panic").is_err());
        assert!(!triggered("any.site"));
        assert!(eval("any.site").is_none());
        remove("any.site");
        clear();
        init_from_env();
        assert!(!triggered("any.site"));
    }
}
