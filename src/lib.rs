//! # gcwc-repro
//!
//! Root facade for the GCWC reproduction workspace. The implementation
//! lives in the member crates, re-exported here for convenience:
//!
//! * [`gcwc`] — the paper's models (GCWC, A-GCWC) and task definitions.
//! * [`gcwc_baselines`] — HA, GP, RF, LSM, CNN and DR comparators.
//! * [`gcwc_traffic`] — synthetic networks, traffic simulation, datasets.
//! * [`gcwc_graph`] — edge graphs, Laplacians, coarsening, filter bases.
//! * [`gcwc_nn`] — the autodiff tape, layers and optimisers.
//! * [`gcwc_metrics`] — MKLR, FLR, MAPE, KL divergence.
//! * [`gcwc_routing`] — stochastic routing on completed weights.
//!
//! See `README.md` for a tour and `DESIGN.md` / `EXPERIMENTS.md` for the
//! reproduction methodology and results.

pub use gcwc;
pub use gcwc_baselines;
pub use gcwc_graph;
pub use gcwc_linalg;
pub use gcwc_metrics;
pub use gcwc_nn;
pub use gcwc_routing;
pub use gcwc_traffic;
